"""repro: uniformity by construction for nondeterministic stochastic systems.

A reproduction of Hermanns & Johr, "Uniformity by Construction in the
Analysis of Nondeterministic Stochastic Systems" (DSN 2007): a
compositional construction kit for *uniform* interactive Markov chains
(IMCs), the transformation of closed uniform IMCs into uniform
continuous-time Markov decision processes (CTMDPs), and the timed
reachability algorithm of Baier et al. for the latter, evaluated on the
fault-tolerant workstation cluster case study.

Typical usage::

    from repro import imc, core
    from repro.models import ftwc_direct

    model = ftwc_direct.build_ctmdp(n=4)
    result = core.timed_reachability(model.ctmdp, model.goal_mask, t=100.0)
    print(result.value(model.ctmdp.initial))
"""

from repro import analysis, bisim, core, ctmc, engine, imc, io, logic, mdp, models, numerics, sim
from repro.errors import (
    CompositionError,
    ModelError,
    NonUniformError,
    NumericalError,
    ReproError,
    SchedulerError,
    TransformationError,
)

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "bisim",
    "core",
    "ctmc",
    "engine",
    "imc",
    "io",
    "logic",
    "mdp",
    "models",
    "numerics",
    "sim",
    "CompositionError",
    "ModelError",
    "NonUniformError",
    "NumericalError",
    "ReproError",
    "SchedulerError",
    "TransformationError",
]
