"""Abstract syntax for the supported CSL-style query fragment.

The paper's algorithm is the core of CSL model checking for CTMDPs; this
package wraps the library's engines behind the query syntax users of
ETMCC/MRMC/PRISM expect.  The supported fragment covers the paper's
property class (time-bounded reachability/until, plus the companion
steady-state and expected-time measures):

====================================  =======================================
query                                 meaning
====================================  =======================================
``Pmax=? [ F<=100 "goal" ]``          max probability to reach within bound
``Pmin>=0.99 [ "safe" U<=50 "ok" ]``  threshold check on min until-probability
``P=? [ F "goal" ]``                  probability on a CTMC / unbounded reach
``S=? [ "premium" ]``                 steady-state probability (CTMC)
``Tmin=? [ F "down" ]``               min expected hitting time
====================================  =======================================

Atoms are quoted labels resolved against a caller-supplied label map, or
``true`` (all states).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "Objective",
    "Comparison",
    "Atom",
    "Reach",
    "Until",
    "ProbabilityQuery",
    "SteadyStateQuery",
    "ExpectedTimeQuery",
    "Query",
]


class Objective(enum.Enum):
    """Scheduler quantification."""

    MAX = "max"
    MIN = "min"
    NONE = "none"  #: deterministic model (CTMC): no quantifier


class Comparison(enum.Enum):
    """How the computed value is used."""

    QUERY = "=?"  #: return the value
    AT_LEAST = ">="
    AT_MOST = "<="


@dataclass(frozen=True)
class Atom:
    """A state predicate: a quoted label, or ``true``."""

    label: str

    @property
    def is_true(self) -> bool:
        """Whether this is the trivial predicate."""
        return self.label == "true"

    def __str__(self) -> str:
        return "true" if self.is_true else f'"{self.label}"'


@dataclass(frozen=True)
class Reach:
    """``F goal``, ``F<=t goal`` or ``F[t1,t2] goal``."""

    goal: Atom
    bound: float | tuple[float, float] | None = None

    def __str__(self) -> str:
        if self.bound is None:
            bound = ""
        elif isinstance(self.bound, tuple):
            bound = f"[{self.bound[0]:g},{self.bound[1]:g}]"
        else:
            bound = f"<={self.bound:g}"
        return f"F{bound} {self.goal}"


@dataclass(frozen=True)
class Until:
    """``safe U goal`` or ``safe U<=t goal``."""

    safe: Atom
    goal: Atom
    bound: float | None = None

    def __str__(self) -> str:
        bound = f"<={self.bound:g}" if self.bound is not None else ""
        return f"{self.safe} U{bound} {self.goal}"


Path = Reach | Until


@dataclass(frozen=True)
class ProbabilityQuery:
    """``P{max,min,}{=?,>=p,<=p} [ path ]``."""

    objective: Objective
    comparison: Comparison
    threshold: float | None
    path: Path

    def __str__(self) -> str:
        quantifier = {"max": "Pmax", "min": "Pmin", "none": "P"}[self.objective.value]
        comparison = (
            "=?"
            if self.comparison is Comparison.QUERY
            else f"{self.comparison.value}{self.threshold:g}"
        )
        return f"{quantifier}{comparison} [ {self.path} ]"


@dataclass(frozen=True)
class SteadyStateQuery:
    """``S{=?,>=p,<=p} [ atom ]`` (CTMCs only)."""

    comparison: Comparison
    threshold: float | None
    atom: Atom

    def __str__(self) -> str:
        comparison = (
            "=?"
            if self.comparison is Comparison.QUERY
            else f"{self.comparison.value}{self.threshold:g}"
        )
        return f"S{comparison} [ {self.atom} ]"


@dataclass(frozen=True)
class ExpectedTimeQuery:
    """``T{max,min,}=? [ F atom ]``."""

    objective: Objective
    goal: Atom

    def __str__(self) -> str:
        quantifier = {"max": "Tmax", "min": "Tmin", "none": "T"}[self.objective.value]
        return f"{quantifier}=? [ F {self.goal} ]"


Query = ProbabilityQuery | SteadyStateQuery | ExpectedTimeQuery
