"""Query evaluation: dispatch parsed queries to the analysis engines."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.ctmdp import CTMDP
from repro.core.expected_time import expected_time_analysis
from repro.core.reachability import (
    ReachabilityResult,
    timed_reachability,
    unbounded_reachability,
)
from repro.core.until import timed_until as ctmdp_timed_until
from repro.ctmc.hitting import expected_hitting_time
from repro.ctmc.model import CTMC
from repro.ctmc.reachability import PreparedCTMCReachability
from repro.ctmc.until import timed_until_with_certificate as ctmc_timed_until
from repro.ctmc.uniformization import steady_state_analysis
from repro.errors import ModelError
from repro.logic.formulas import (
    Atom,
    Comparison,
    ExpectedTimeQuery,
    Objective,
    ProbabilityQuery,
    Query,
    Reach,
    SteadyStateQuery,
    Until,
)
from repro.logic.parser import parse_query
from repro.obs import NumericalCertificate

__all__ = ["CheckResult", "check"]


@dataclass(frozen=True)
class CheckResult:
    """Outcome of a query evaluation at one state.

    ``value`` is the computed quantity; ``satisfied`` is the verdict for
    threshold queries and ``None`` for ``=?`` queries; ``certificate``
    is the numerical-health certificate of the underlying solve
    (composite analyses such as interval reachability compose their
    stages' certificates); ``solver_result`` carries the full
    :class:`~repro.core.reachability.ReachabilityResult` when the query
    ran a time-bounded CTMDP solve -- with ``record_scheduler=True``
    this is where the extracted decisions live, ready to be wrapped
    into a :class:`~repro.policy.artifact.PolicyArtifact`.
    """

    query: Query
    value: float
    satisfied: bool | None
    certificate: NumericalCertificate | None = None
    solver_result: ReachabilityResult | None = None

    def __str__(self) -> str:
        verdict = "" if self.satisfied is None else f"  [{self.satisfied}]"
        return f"{self.query} = {self.value:.10g}{verdict}"


def _resolve(atom: Atom, labels: Mapping[str, np.ndarray], n: int) -> np.ndarray:
    if atom.is_true:
        return np.ones(n, dtype=bool)
    if atom.label not in labels:
        raise ModelError(
            f"unknown label {atom.label!r}; available: {sorted(labels) or 'none'}"
        )
    mask = np.asarray(labels[atom.label], dtype=bool)
    if mask.shape != (n,):
        raise ModelError(f"label {atom.label!r} must cover all {n} states")
    return mask


def _verdict(comparison: Comparison, threshold: float | None, value: float) -> bool | None:
    if comparison is Comparison.QUERY:
        return None
    assert threshold is not None
    return value >= threshold if comparison is Comparison.AT_LEAST else value <= threshold


def _probability(
    query: ProbabilityQuery,
    model: CTMDP | CTMC,
    labels: Mapping[str, np.ndarray],
    state: int,
    epsilon: float,
    record_scheduler: bool = False,
    precompute: bool = False,
) -> tuple[float, NumericalCertificate | None, ReachabilityResult | None]:
    """The queried probability, the solve's certificate, and -- for
    time-bounded CTMDP solves -- the full result object (carrying the
    recorded scheduler when ``record_scheduler`` is set)."""
    is_ctmdp = isinstance(model, CTMDP)
    if is_ctmdp and query.objective is Objective.NONE:
        raise ModelError("CTMDP queries need a scheduler quantifier (Pmax/Pmin)")
    if not is_ctmdp and query.objective is not Objective.NONE:
        raise ModelError("CTMC queries take plain P (no scheduler quantifier)")

    n = model.num_states
    path = query.path
    if isinstance(path, Reach):
        goal = _resolve(path.goal, labels, n)
        if isinstance(path.bound, tuple):
            if is_ctmdp:
                raise ModelError(
                    "interval-bounded reachability is supported for CTMCs only"
                )
            from repro.ctmc.reachability import interval_reachability_analysis

            # Composite of a transient analysis and a reachability solve;
            # the certificate composes the two stages' certificates.
            interval = interval_reachability_analysis(
                model, goal, path.bound[0], path.bound[1], epsilon=epsilon,
                initial=state,
            )
            return interval.value, interval.certificate, None
        if path.bound is None:
            if is_ctmdp:
                return float(
                    unbounded_reachability(
                        model, goal, objective=query.objective.value,
                        precompute=precompute,
                    )[state]
                ), None, None
            # Unbounded reachability on a CTMC: the embedded jump chain
            # decides it; reuse the CTMDP machinery on a wrapped model.
            return float(_ctmc_unbounded(model, goal)[state]), None, None
        if is_ctmdp:
            result = timed_reachability(
                model, goal, path.bound, epsilon=epsilon,
                objective=query.objective.value, record_scheduler=record_scheduler,
                precompute=precompute,
            )
            return result.value(state), result.certificate, result
        solver = PreparedCTMCReachability(model, goal)
        values = solver.solve(path.bound, epsilon=epsilon)
        return float(values[state]), solver.last_certificate, None

    assert isinstance(path, Until)
    safe = _resolve(path.safe, labels, n)
    goal = _resolve(path.goal, labels, n)
    if path.bound is None:
        raise ModelError("unbounded until is not supported; use F for plain reachability")
    if is_ctmdp:
        result = ctmdp_timed_until(
            model, safe, goal, path.bound, epsilon=epsilon,
            objective=query.objective.value, record_scheduler=record_scheduler,
            precompute=precompute,
        )
        return result.value(state), result.certificate, result
    values, certificate = ctmc_timed_until(
        model, safe, goal, path.bound, epsilon=epsilon
    )
    return float(values[state]), certificate, None


def _ctmc_unbounded(ctmc: CTMC, goal: np.ndarray) -> np.ndarray:
    transitions = []
    for s in range(ctmc.num_states):
        rates = {dst: rate for dst, rate in ctmc.successors(s)}
        if rates:
            transitions.append((s, "only", rates))
    wrapped = CTMDP.from_transitions(ctmc.num_states, transitions, initial=ctmc.initial)
    return unbounded_reachability(wrapped, goal, objective="max")


def check(
    query: Query | str,
    model: CTMDP | CTMC,
    labels: Mapping[str, np.ndarray] | None = None,
    state: int | None = None,
    epsilon: float = 1e-6,
    record_scheduler: bool = False,
    precompute: bool = False,
) -> CheckResult:
    """Evaluate ``query`` on ``model`` at ``state``.

    Parameters
    ----------
    query:
        A parsed :class:`~repro.logic.formulas.Query` or its textual
        form (parsed on the fly).
    model:
        A (uniform) CTMDP or a CTMC; the query's scheduler quantifier
        must match the model kind.
    labels:
        Maps label names to boolean state masks.
    state:
        The state to report (defaults to the model's initial state).
    epsilon:
        Numerical precision for the time-bounded engines.
    record_scheduler:
        Record the optimal scheduler during time-bounded CTMDP solves
        (streamed into a compressed store); it is returned on
        ``CheckResult.solver_result.decisions``.
    precompute:
        Clamp qualitatively-decided states (the Prob0 set of the
        objective; for unbounded reachability also the Prob1 set)
        before iterating in the CTMDP probability engines.  Values
        agree with the plain sweep within the solver epsilon.
    """
    if isinstance(query, str):
        query = parse_query(query)
    labels = labels or {}
    state = model.initial if state is None else state
    if not 0 <= state < model.num_states:
        raise ModelError(f"state {state} out of range")

    if isinstance(query, ProbabilityQuery):
        value, certificate, solver_result = _probability(
            query, model, labels, state, epsilon,
            record_scheduler=record_scheduler, precompute=precompute,
        )
        return CheckResult(
            query=query,
            value=value,
            satisfied=_verdict(query.comparison, query.threshold, value),
            certificate=certificate,
            solver_result=solver_result,
        )

    if isinstance(query, SteadyStateQuery):
        if not isinstance(model, CTMC):
            raise ModelError("steady-state queries apply to CTMCs only")
        mask = _resolve(query.atom, labels, model.num_states)
        steady = steady_state_analysis(model)
        value = float(steady.distribution @ mask.astype(float))
        return CheckResult(
            query=query,
            value=value,
            satisfied=_verdict(query.comparison, query.threshold, value),
            certificate=steady.certificate,
        )

    assert isinstance(query, ExpectedTimeQuery)
    certificate = None
    if isinstance(model, CTMDP):
        if query.objective is Objective.NONE:
            raise ModelError("CTMDP expected-time queries need Tmax/Tmin")
        goal = _resolve(query.goal, labels, model.num_states)
        analysis = expected_time_analysis(model, goal, objective=query.objective.value)
        value = float(analysis.values[state])
        certificate = analysis.certificate
    else:
        if query.objective is not Objective.NONE:
            raise ModelError("CTMC expected-time queries take plain T")
        goal = _resolve(query.goal, labels, model.num_states)
        value = float(expected_hitting_time(model, goal)[state])
    return CheckResult(query=query, value=value, satisfied=None, certificate=certificate)
