"""CSL-style query language over the library's analysis engines."""

from repro.logic.check import CheckResult, check
from repro.logic.formulas import (
    Atom,
    Comparison,
    ExpectedTimeQuery,
    Objective,
    ProbabilityQuery,
    Query,
    Reach,
    SteadyStateQuery,
    Until,
)
from repro.logic.parser import ParseError, parse_query

__all__ = [
    "CheckResult",
    "check",
    "Atom",
    "Comparison",
    "ExpectedTimeQuery",
    "Objective",
    "ProbabilityQuery",
    "Query",
    "Reach",
    "SteadyStateQuery",
    "Until",
    "ParseError",
    "parse_query",
]
