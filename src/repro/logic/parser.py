"""Parser for the CSL-style query fragment.

Hand-written tokenizer plus recursive descent; see
:mod:`repro.logic.formulas` for the grammar by example.  Errors carry
the offending position.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ModelError
from repro.logic.formulas import (
    Atom,
    Comparison,
    ExpectedTimeQuery,
    Objective,
    ProbabilityQuery,
    Query,
    Reach,
    SteadyStateQuery,
    Until,
)

__all__ = ["parse_query", "ParseError"]


class ParseError(ModelError):
    """The query text is malformed."""


_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<NUMBER>\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)
  | (?P<STRING>"[^"]*")
  | (?P<CMPQ>=\?)
  | (?P<LE><=)
  | (?P<GE>>=)
  | (?P<LBRACK>\[)
  | (?P<RBRACK>\])
  | (?P<COMMA>,)
  | (?P<NAME>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"unexpected character {text[position]!r} at {position}")
        kind = match.lastgroup or ""
        if kind != "WS":
            tokens.append(_Token(kind=kind, text=match.group(), position=position))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = _tokenize(text)
        self._index = 0

    # -- token plumbing -------------------------------------------------
    def _peek(self) -> _Token | None:
        return self._tokens[self._index] if self._index < len(self._tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError(f"unexpected end of query: {self._text!r}")
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind} at position {token.position}, got {token.text!r}"
            )
        return token

    # -- grammar ---------------------------------------------------------
    def parse(self) -> Query:
        head = self._expect("NAME").text
        if head in ("P", "Pmax", "Pmin"):
            return self._probability(head)
        if head == "S":
            return self._steady_state()
        if head in ("T", "Tmax", "Tmin"):
            return self._expected_time(head)
        raise ParseError(f"unknown query head {head!r}")

    def _objective(self, head: str) -> Objective:
        if head.endswith("max"):
            return Objective.MAX
        if head.endswith("min"):
            return Objective.MIN
        return Objective.NONE

    def _comparison(self) -> tuple[Comparison, float | None]:
        token = self._next()
        if token.kind == "CMPQ":
            return Comparison.QUERY, None
        if token.kind in ("GE", "LE"):
            threshold = float(self._expect("NUMBER").text)
            if not 0.0 <= threshold <= 1.0:
                raise ParseError("probability thresholds must lie in [0, 1]")
            comparison = Comparison.AT_LEAST if token.kind == "GE" else Comparison.AT_MOST
            return comparison, threshold
        raise ParseError(
            f"expected =?, >= or <= at position {token.position}, got {token.text!r}"
        )

    def _atom(self) -> Atom:
        token = self._next()
        if token.kind == "STRING":
            return Atom(label=token.text[1:-1])
        if token.kind == "NAME" and token.text == "true":
            return Atom(label="true")
        raise ParseError(
            f'expected a quoted label or true at position {token.position}, '
            f"got {token.text!r}"
        )

    def _bound(self) -> float | tuple[float, float] | None:
        token = self._peek()
        if token is not None and token.kind == "LE":
            self._next()
            return float(self._expect("NUMBER").text)
        if token is not None and token.kind == "LBRACK":
            self._next()
            start = float(self._expect("NUMBER").text)
            self._expect("COMMA")
            end = float(self._expect("NUMBER").text)
            self._expect("RBRACK")
            if end < start:
                raise ParseError("interval bounds must satisfy t1 <= t2")
            return (start, end)
        return None

    def _path(self) -> Reach | Until:
        token = self._peek()
        if token is not None and token.kind == "NAME" and token.text == "F":
            self._next()
            bound = self._bound()
            return Reach(goal=self._atom(), bound=bound)
        safe = self._atom()
        u = self._expect("NAME")
        if u.text != "U":
            raise ParseError(f"expected U at position {u.position}, got {u.text!r}")
        bound = self._bound()
        return Until(safe=safe, goal=self._atom(), bound=bound)

    def _probability(self, head: str) -> ProbabilityQuery:
        comparison, threshold = self._comparison()
        self._expect("LBRACK")
        path = self._path()
        self._expect("RBRACK")
        self._done()
        return ProbabilityQuery(
            objective=self._objective(head),
            comparison=comparison,
            threshold=threshold,
            path=path,
        )

    def _steady_state(self) -> SteadyStateQuery:
        comparison, threshold = self._comparison()
        self._expect("LBRACK")
        atom = self._atom()
        self._expect("RBRACK")
        self._done()
        return SteadyStateQuery(comparison=comparison, threshold=threshold, atom=atom)

    def _expected_time(self, head: str) -> ExpectedTimeQuery:
        token = self._next()
        if token.kind != "CMPQ":
            raise ParseError("expected-time queries only support =?")
        self._expect("LBRACK")
        f = self._expect("NAME")
        if f.text != "F":
            raise ParseError(f"expected F at position {f.position}, got {f.text!r}")
        atom = self._atom()
        self._expect("RBRACK")
        self._done()
        return ExpectedTimeQuery(objective=self._objective(head), goal=atom)

    def _done(self) -> None:
        token = self._peek()
        if token is not None:
            raise ParseError(
                f"trailing input at position {token.position}: {token.text!r}"
            )


def parse_query(text: str) -> Query:
    """Parse a query string into its AST.

    Raises
    ------
    ParseError
        With position information if the text is malformed.
    """
    return _Parser(text).parse()
