"""``repro.policy``: schedulers as first-class, storable artifacts.

Algorithm 1 extracts an ε-optimal *timed* scheduler as a by-product of
the backward value iteration; this package turns that by-product into
something an engineering pipeline can keep:

* :mod:`repro.policy.store` -- the compressed decision store
  (:class:`CompressedDecisions`) and its streaming producer
  (:class:`PolicyWriter`), used *during* value iteration so the dense
  ``iterations x states`` matrix is never materialised;
* :mod:`repro.policy.artifact` -- :class:`PolicyArtifact`: the store
  plus provenance metadata (model key, objective, horizon, ε, value,
  certificate) with a stable content hash, a single-file binary format
  readable through ``numpy.memmap``, and NDJSON export;
* :mod:`repro.policy.validate` -- induced-chain validation: replaying a
  stored scheduler against its model must reproduce the reported
  probability within the certified error budget, and says so with a
  :class:`~repro.obs.certificate.NumericalCertificate`;
* :mod:`repro.policy.options` -- the shared ``--save-policy`` option
  parser used by ``repro check`` and ``repro batch``;
* :mod:`repro.policy.cli` -- the ``repro policy`` tool
  (inspect/summary/diff/replay/export).

Only the store is imported eagerly: the core solvers import it on their
hot path, and everything else here depends on the core solvers -- the
lazy ``__getattr__`` below keeps that cycle open.
"""

from __future__ import annotations

from repro.policy.store import DEFAULT_CHUNK_SIZE, CompressedDecisions, PolicyWriter

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "CompressedDecisions",
    "PolicyArtifact",
    "PolicyWriter",
    "ValidationReport",
    "load_artifact",
    "policy_key",
    "save_artifact",
    "validate_artifact",
]

_LAZY = {
    "PolicyArtifact": "repro.policy.artifact",
    "load_artifact": "repro.policy.artifact",
    "policy_key": "repro.policy.artifact",
    "save_artifact": "repro.policy.artifact",
    "ValidationReport": "repro.policy.validate",
    "validate_artifact": "repro.policy.validate",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.policy' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
