"""``repro policy``: inspect, diff, replay and export stored schedulers.

Subcommands operate on ``.rpol`` artifact files or, with a registry
cache, on content addresses (the 64-digit key or any unambiguous
prefix):

* ``list`` -- the registry's policy store, one line per artifact;
* ``inspect`` -- one artifact's provenance, store statistics and
  extraction certificate as JSON;
* ``summary`` -- a compact table over several artifacts;
* ``diff`` -- where two artifacts disagree (metadata and decisions);
* ``replay`` -- induced-chain validation: rebuild the model from the
  artifact's spec (or load it from disk with ``--against model.tra``),
  replay the stored scheduler, check the reported probability and
  certify the deviation (exit 0 healthy, 1 not);
* ``export`` -- the change-point NDJSON stream of ``export_ndjson``.

Exit codes follow the repo convention: 0 success, 1 domain failure
(unhealthy replay, diff found differences), 2 usage/load errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import ReproError
from repro.policy.artifact import PolicyArtifact, load_artifact

__all__ = ["add_policy_parser", "cmd_policy"]


def add_policy_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``policy`` subcommand on the main CLI's subparsers."""
    policy = sub.add_parser(
        "policy",
        help="inspect, diff, replay and export stored scheduler artifacts "
        "(.rpol files or registry keys)",
    )
    actions = policy.add_subparsers(dest="policy_command", required=True)

    def _add_cache(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--cache-dir",
            default=None,
            help="registry cache directory for key lookups "
            "(default: ~/.cache/repro)",
        )

    listing = actions.add_parser("list", help="stored policies in the registry")
    listing.add_argument(
        "--format", choices=["text", "json"], default="text", dest="format_"
    )
    _add_cache(listing)

    inspect = actions.add_parser(
        "inspect", help="provenance, store statistics and certificate (JSON)"
    )
    inspect.add_argument("artifact", help=".rpol path or registry key (prefix)")
    _add_cache(inspect)

    summary = actions.add_parser("summary", help="compact table over artifacts")
    summary.add_argument("artifacts", nargs="+", help=".rpol paths or registry keys")
    _add_cache(summary)

    diff = actions.add_parser(
        "diff", help="metadata and decision differences of two artifacts"
    )
    diff.add_argument("left", help=".rpol path or registry key (prefix)")
    diff.add_argument("right", help=".rpol path or registry key (prefix)")
    _add_cache(diff)

    replay = actions.add_parser(
        "replay",
        help="induced-chain validation: replay the stored scheduler on its "
        "model and certify the reported probability",
    )
    replay.add_argument("artifact", help=".rpol path or registry key (prefix)")
    replay.add_argument(
        "--format", choices=["text", "json"], default="text", dest="format_"
    )
    replay.add_argument(
        "--against",
        default=None,
        metavar="MODEL_FILE",
        help="replay against this on-disk model (.tra or .json CTMDP) "
        "instead of rebuilding from the artifact's model spec",
    )
    replay.add_argument(
        "--labels",
        default=None,
        metavar="LAB_FILE",
        help="label file for --against goal resolution "
        "(default: the sibling .lab of the model file)",
    )
    replay.add_argument(
        "--goal",
        default=None,
        help="goal proposition in the label file (default: the "
        "artifact's goal label, then 'goal', then the first declared)",
    )
    replay.add_argument(
        "--safe",
        default=None,
        help="safe proposition for until-extracted schedulers "
        "(default: the artifact's safe label, if labelled)",
    )
    replay.add_argument(
        "--initial",
        type=int,
        default=None,
        help="1-based state whose value is compared "
        "(default: the artifact's recorded initial state)",
    )
    _add_cache(replay)

    export = actions.add_parser(
        "export", help="change-point NDJSON stream of the scheduler"
    )
    export.add_argument("artifact", help=".rpol path or registry key (prefix)")
    export.add_argument(
        "--out", default=None, help="write the stream here (default: stdout)"
    )
    _add_cache(export)


def _registry(args: argparse.Namespace):
    from repro.engine import ModelRegistry, default_cache_dir

    cache_dir = args.cache_dir if args.cache_dir is not None else str(default_cache_dir())
    return ModelRegistry(cache_dir=cache_dir)


def _load(args: argparse.Namespace, target: str) -> PolicyArtifact:
    """Resolve ``target`` as a file path first, then as a registry key.

    A key may be abbreviated to any prefix that matches exactly one
    stored policy.
    """
    path = Path(target)
    if path.is_file():
        return load_artifact(path)
    registry = _registry(args)
    matches = [
        record for record in registry.list_policies()
        if str(record.get("key", "")).startswith(target)
    ]
    if len(matches) == 1:
        return registry.load_policy(str(matches[0]["key"]))
    if len(matches) > 1:
        raise ReproError(
            f"key prefix {target!r} is ambiguous "
            f"({len(matches)} stored policies match)"
        )
    raise ReproError(f"no such artifact file or stored policy key: {target!r}")


def _cmd_list(args: argparse.Namespace) -> int:
    records = _registry(args).list_policies()
    if args.format_ == "json":
        print(json.dumps(records, indent=1, sort_keys=True))
        return 0
    if not records:
        print("no stored policies")
        return 0
    print(f"{'key':<16} {'objective':<9} {'t':>10} {'rows':>7} {'states':>7}  goal")
    for record in records:
        meta = record.get("meta", {})
        layout = record.get("layout", {})
        print(
            f"{str(record.get('key', ''))[:16]:<16} "
            f"{str(meta.get('objective', '?')):<9} "
            f"{float(meta.get('t', float('nan'))):>10g} "
            f"{int(layout.get('num_rows', 0)):>7d} "
            f"{int(layout.get('num_states', 0)):>7d}  "
            f"{meta.get('goal', '?')}"
        )
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    artifact = _load(args, args.artifact)
    print(json.dumps(artifact.summary(), indent=1, sort_keys=True))
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    print(
        f"{'key':<16} {'objective':<9} {'t':>10} {'value':>13} "
        f"{'rows':>7} {'ratio':>8} {'stationary':<10}"
    )
    for target in args.artifacts:
        artifact = _load(args, target)
        stats = artifact.decisions.stats()
        print(
            f"{artifact.key[:16]:<16} {artifact.objective:<9} "
            f"{artifact.t:>10g} {artifact.value:>13.6e} "
            f"{stats['rows']:>7d} {stats['compression_ratio']:>8.1f} "
            f"{str(bool(stats['stationary'])).lower():<10}"
        )
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    left = _load(args, args.left)
    right = _load(args, args.right)
    if left.key == right.key:
        print(f"identical: {left.key}")
        return 0
    different = False
    for name in sorted(set(left.meta) | set(right.meta)):
        a, b = left.meta.get(name), right.meta.get(name)
        if a != b:
            different = True
            print(f"meta {name}: {a!r} != {b!r}")
    if left.decisions.shape != right.decisions.shape:
        print(f"shape: {left.decisions.shape} != {right.decisions.shape}")
        return 1
    cells = 0
    first: int | None = None
    for index, (row_a, row_b) in enumerate(
        zip(left.decisions.iter_rows(), right.decisions.iter_rows())
    ):
        unequal = int(np.count_nonzero(row_a != row_b))
        if unequal:
            cells += unequal
            if first is None:
                first = index
    if cells:
        rows, states = left.decisions.shape
        print(
            f"decisions: {cells} differing cell(s) out of {rows * states}, "
            f"first at row {first}"
        )
        return 1
    print("decisions: identical")
    return 1 if different else 0


def _against_model(args: argparse.Namespace, artifact: PolicyArtifact):
    """Load the ``--against`` model file and resolve goal/safe masks.

    The model must be an on-disk CTMDP (``.tra`` or ``.json``); state
    masks come from ``--labels`` (default: the model's sibling ``.lab``
    file).  Raises :class:`ReproError` on every resolution failure, so
    :func:`cmd_policy` maps them to the usage exit code.
    """
    from repro.core.ctmdp import CTMDP
    from repro.io.tra import read_ctmdp_tra, read_labels, scan_tra

    path = Path(args.against)
    if path.suffix == ".tra":
        scan = scan_tra(path)
        if scan.kind != "ctmdp":
            raise ReproError(
                f"{path} holds a {scan.kind}; replay needs a CTMDP"
            )
        model = read_ctmdp_tra(path)
    elif path.suffix == ".json":
        from repro.io.json_io import load_model

        model = load_model(path)
        if not isinstance(model, CTMDP):
            raise ReproError(
                f"{path} holds a {type(model).__name__}; replay needs a CTMDP"
            )
    else:
        raise ReproError(
            f"cannot replay against {path}: unknown suffix {path.suffix!r} "
            "(expected .tra or .json)"
        )

    lab = Path(args.labels) if args.labels else path.with_suffix(".lab")
    if not lab.exists():
        raise ReproError(
            f"no label file {lab} for goal resolution; pass --labels"
        )
    masks = read_labels(lab, model.num_states)
    if not masks:
        raise ReproError(f"{lab} declares no propositions")

    def _pick(name: str | None, *fallbacks: str | None) -> str:
        # An explicitly requested proposition must exist; only the
        # implicit fallbacks may be skipped silently.
        if name is not None:
            if name in masks:
                return name
            raise ReproError(
                f"no proposition {name!r} in {lab}; declared: {sorted(masks)}"
            )
        for candidate in fallbacks:
            if candidate is not None and candidate in masks:
                return candidate
        return next(iter(masks))

    goal = masks[_pick(args.goal, artifact.meta.get("goal"), "goal")]
    safe = None
    safe_label = args.safe if args.safe is not None else artifact.meta.get("safe")
    if safe_label is not None:
        if safe_label not in masks:
            raise ReproError(
                f"no proposition {safe_label!r} in {lab}; "
                f"declared: {sorted(masks)}"
            )
        safe = masks[safe_label]
    return model, goal, safe


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.policy.validate import validate_artifact

    artifact = _load(args, args.artifact)
    if args.against is not None:
        model, goal, safe = _against_model(args, artifact)
        metrics = None
        initial = (
            args.initial - 1
            if args.initial is not None
            else artifact.meta.get("initial")
        )
    else:
        spec = artifact.meta.get("model")
        if not isinstance(spec, dict):
            print(
                "artifact metadata carries no 'model' spec; cannot rebuild the "
                "model for replay (pass --against with an on-disk model)",
                file=sys.stderr,
            )
            return 2
        registry = _registry(args)
        built = registry.get(spec)
        if built.kind != "ctmdp":
            print(f"model spec {spec!r} is not a CTMDP", file=sys.stderr)
            return 2
        model = built.model
        goal = built.goal(str(artifact.meta.get("goal", "no_premium")))
        safe_label = artifact.meta.get("safe")
        safe = built.goal(str(safe_label)) if safe_label else None
        metrics = registry.metrics
        initial = (
            args.initial - 1
            if args.initial is not None
            else artifact.meta.get("initial")
        )
    report = validate_artifact(
        artifact,
        model,
        goal,
        initial=int(initial) if initial is not None else None,
        safe=safe,
        metrics=metrics,
    )
    if args.format_ == "json":
        print(json.dumps(report.as_dict(), indent=1, sort_keys=True))
    else:
        print(report.describe())
    return 0 if report.ok else 1


def _cmd_export(args: argparse.Namespace) -> int:
    artifact = _load(args, args.artifact)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            count = 0
            for line in artifact.export_ndjson():
                handle.write(line + "\n")
                count += 1
        print(f"wrote {args.out} ({count} records)", file=sys.stderr)
    else:
        for line in artifact.export_ndjson():
            print(line)
    return 0


_HANDLERS = {
    "list": _cmd_list,
    "inspect": _cmd_inspect,
    "summary": _cmd_summary,
    "diff": _cmd_diff,
    "replay": _cmd_replay,
    "export": _cmd_export,
}


def cmd_policy(args: argparse.Namespace) -> int:
    """Dispatch a parsed ``repro policy`` invocation."""
    try:
        return _HANDLERS[args.policy_command](args)
    except (ReproError, OSError) as exc:
        print(f"policy {args.policy_command} failed: {exc}", file=sys.stderr)
        return 2


def main(argv: Any = None) -> int:  # pragma: no cover - thin wrapper
    from repro.cli import main as repro_main

    return repro_main(["policy", *(argv or [])])
