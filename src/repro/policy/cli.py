"""``repro policy``: inspect, diff, replay and export stored schedulers.

Subcommands operate on ``.rpol`` artifact files or, with a registry
cache, on content addresses (the 64-digit key or any unambiguous
prefix):

* ``list`` -- the registry's policy store, one line per artifact;
* ``inspect`` -- one artifact's provenance, store statistics and
  extraction certificate as JSON;
* ``summary`` -- a compact table over several artifacts;
* ``diff`` -- where two artifacts disagree (metadata and decisions);
* ``replay`` -- induced-chain validation: rebuild the model from the
  artifact's spec, replay the stored scheduler, check the reported
  probability and certify the deviation (exit 0 healthy, 1 not);
* ``export`` -- the change-point NDJSON stream of ``export_ndjson``.

Exit codes follow the repo convention: 0 success, 1 domain failure
(unhealthy replay, diff found differences), 2 usage/load errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import ReproError
from repro.policy.artifact import PolicyArtifact, load_artifact

__all__ = ["add_policy_parser", "cmd_policy"]


def add_policy_parser(sub: argparse._SubParsersAction) -> None:
    """Register the ``policy`` subcommand on the main CLI's subparsers."""
    policy = sub.add_parser(
        "policy",
        help="inspect, diff, replay and export stored scheduler artifacts "
        "(.rpol files or registry keys)",
    )
    actions = policy.add_subparsers(dest="policy_command", required=True)

    def _add_cache(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--cache-dir",
            default=None,
            help="registry cache directory for key lookups "
            "(default: ~/.cache/repro)",
        )

    listing = actions.add_parser("list", help="stored policies in the registry")
    listing.add_argument(
        "--format", choices=["text", "json"], default="text", dest="format_"
    )
    _add_cache(listing)

    inspect = actions.add_parser(
        "inspect", help="provenance, store statistics and certificate (JSON)"
    )
    inspect.add_argument("artifact", help=".rpol path or registry key (prefix)")
    _add_cache(inspect)

    summary = actions.add_parser("summary", help="compact table over artifacts")
    summary.add_argument("artifacts", nargs="+", help=".rpol paths or registry keys")
    _add_cache(summary)

    diff = actions.add_parser(
        "diff", help="metadata and decision differences of two artifacts"
    )
    diff.add_argument("left", help=".rpol path or registry key (prefix)")
    diff.add_argument("right", help=".rpol path or registry key (prefix)")
    _add_cache(diff)

    replay = actions.add_parser(
        "replay",
        help="induced-chain validation: replay the stored scheduler on its "
        "model and certify the reported probability",
    )
    replay.add_argument("artifact", help=".rpol path or registry key (prefix)")
    replay.add_argument(
        "--format", choices=["text", "json"], default="text", dest="format_"
    )
    _add_cache(replay)

    export = actions.add_parser(
        "export", help="change-point NDJSON stream of the scheduler"
    )
    export.add_argument("artifact", help=".rpol path or registry key (prefix)")
    export.add_argument(
        "--out", default=None, help="write the stream here (default: stdout)"
    )
    _add_cache(export)


def _registry(args: argparse.Namespace):
    from repro.engine import ModelRegistry, default_cache_dir

    cache_dir = args.cache_dir if args.cache_dir is not None else str(default_cache_dir())
    return ModelRegistry(cache_dir=cache_dir)


def _load(args: argparse.Namespace, target: str) -> PolicyArtifact:
    """Resolve ``target`` as a file path first, then as a registry key.

    A key may be abbreviated to any prefix that matches exactly one
    stored policy.
    """
    path = Path(target)
    if path.is_file():
        return load_artifact(path)
    registry = _registry(args)
    matches = [
        record for record in registry.list_policies()
        if str(record.get("key", "")).startswith(target)
    ]
    if len(matches) == 1:
        return registry.load_policy(str(matches[0]["key"]))
    if len(matches) > 1:
        raise ReproError(
            f"key prefix {target!r} is ambiguous "
            f"({len(matches)} stored policies match)"
        )
    raise ReproError(f"no such artifact file or stored policy key: {target!r}")


def _cmd_list(args: argparse.Namespace) -> int:
    records = _registry(args).list_policies()
    if args.format_ == "json":
        print(json.dumps(records, indent=1, sort_keys=True))
        return 0
    if not records:
        print("no stored policies")
        return 0
    print(f"{'key':<16} {'objective':<9} {'t':>10} {'rows':>7} {'states':>7}  goal")
    for record in records:
        meta = record.get("meta", {})
        layout = record.get("layout", {})
        print(
            f"{str(record.get('key', ''))[:16]:<16} "
            f"{str(meta.get('objective', '?')):<9} "
            f"{float(meta.get('t', float('nan'))):>10g} "
            f"{int(layout.get('num_rows', 0)):>7d} "
            f"{int(layout.get('num_states', 0)):>7d}  "
            f"{meta.get('goal', '?')}"
        )
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    artifact = _load(args, args.artifact)
    print(json.dumps(artifact.summary(), indent=1, sort_keys=True))
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    print(
        f"{'key':<16} {'objective':<9} {'t':>10} {'value':>13} "
        f"{'rows':>7} {'ratio':>8} {'stationary':<10}"
    )
    for target in args.artifacts:
        artifact = _load(args, target)
        stats = artifact.decisions.stats()
        print(
            f"{artifact.key[:16]:<16} {artifact.objective:<9} "
            f"{artifact.t:>10g} {artifact.value:>13.6e} "
            f"{stats['rows']:>7d} {stats['compression_ratio']:>8.1f} "
            f"{str(bool(stats['stationary'])).lower():<10}"
        )
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    left = _load(args, args.left)
    right = _load(args, args.right)
    if left.key == right.key:
        print(f"identical: {left.key}")
        return 0
    different = False
    for name in sorted(set(left.meta) | set(right.meta)):
        a, b = left.meta.get(name), right.meta.get(name)
        if a != b:
            different = True
            print(f"meta {name}: {a!r} != {b!r}")
    if left.decisions.shape != right.decisions.shape:
        print(f"shape: {left.decisions.shape} != {right.decisions.shape}")
        return 1
    cells = 0
    first: int | None = None
    for index, (row_a, row_b) in enumerate(
        zip(left.decisions.iter_rows(), right.decisions.iter_rows())
    ):
        unequal = int(np.count_nonzero(row_a != row_b))
        if unequal:
            cells += unequal
            if first is None:
                first = index
    if cells:
        rows, states = left.decisions.shape
        print(
            f"decisions: {cells} differing cell(s) out of {rows * states}, "
            f"first at row {first}"
        )
        return 1
    print("decisions: identical")
    return 1 if different else 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.policy.validate import validate_artifact

    artifact = _load(args, args.artifact)
    spec = artifact.meta.get("model")
    if not isinstance(spec, dict):
        print(
            "artifact metadata carries no 'model' spec; cannot rebuild the "
            "model for replay",
            file=sys.stderr,
        )
        return 2
    registry = _registry(args)
    built = registry.get(spec)
    if built.kind != "ctmdp":
        print(f"model spec {spec!r} is not a CTMDP", file=sys.stderr)
        return 2
    goal = built.goal(str(artifact.meta.get("goal", "no_premium")))
    safe_label = artifact.meta.get("safe")
    safe = built.goal(str(safe_label)) if safe_label else None
    initial = artifact.meta.get("initial")
    report = validate_artifact(
        artifact,
        built.model,
        goal,
        initial=int(initial) if initial is not None else None,
        safe=safe,
        metrics=registry.metrics,
    )
    if args.format_ == "json":
        print(json.dumps(report.as_dict(), indent=1, sort_keys=True))
    else:
        print(report.describe())
    return 0 if report.ok else 1


def _cmd_export(args: argparse.Namespace) -> int:
    artifact = _load(args, args.artifact)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            count = 0
            for line in artifact.export_ndjson():
                handle.write(line + "\n")
                count += 1
        print(f"wrote {args.out} ({count} records)", file=sys.stderr)
    else:
        for line in artifact.export_ndjson():
            print(line)
    return 0


_HANDLERS = {
    "list": _cmd_list,
    "inspect": _cmd_inspect,
    "summary": _cmd_summary,
    "diff": _cmd_diff,
    "replay": _cmd_replay,
    "export": _cmd_export,
}


def cmd_policy(args: argparse.Namespace) -> int:
    """Dispatch a parsed ``repro policy`` invocation."""
    try:
        return _HANDLERS[args.policy_command](args)
    except (ReproError, OSError) as exc:
        print(f"policy {args.policy_command} failed: {exc}", file=sys.stderr)
        return 2


def main(argv: Any = None) -> int:  # pragma: no cover - thin wrapper
    from repro.cli import main as repro_main

    return repro_main(["policy", *(argv or [])])
