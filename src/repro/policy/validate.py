"""Induced-chain validation of stored policy artifacts.

A stored scheduler is only trustworthy if fixing it on the model
reproduces the value it was extracted with: resolving the uCTMDP's
nondeterminism with the artifact's decisions induces a Markov chain
whose transient analysis must hit the reported sup/inf probability
within the certified error budget.  :func:`validate_artifact` performs
that check and answers with a :class:`ValidationReport` carrying a
:class:`~repro.obs.certificate.NumericalCertificate`.

Two replay routes are used:

* the *step route* (always): :func:`repro.core.reachability.replay_step_scheduler`
  re-runs the Poisson-weighted backward recursion with the stored
  choices -- the analytic transient analysis of the induced
  (time-inhomogeneous) chain, streamed straight off the compressed
  store;
* the *stationary route* (when every recorded row is identical): the
  scheduler is memoryless, so :meth:`repro.core.ctmdp.CTMDP.induced_ctmc`
  yields an honest CTMC and an independent
  :class:`~repro.ctmc.reachability.PreparedCTMCReachability` solve
  cross-checks the step route through entirely different code.

The induced-chain certificate reuses the standard slots so the standard
``healthy`` predicate applies unchanged: the observed deviation
``|replayed - reported|`` is stored in ``dropped_mass`` and the
admissible tolerance (query ε plus the extraction and replay error
bounds) in ``epsilon`` -- ``healthy`` therefore means exactly
"deviation within tolerance".  ``error_bound`` is the deviation plus
the replay's own certified bound.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable

import numpy as np

from repro.core.ctmdp import CTMDP
from repro.core.reachability import replay_step_scheduler
from repro.errors import ModelError
from repro.obs.certificate import NumericalCertificate, record_certificate
from repro.policy.artifact import PolicyArtifact

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricStore

__all__ = ["ValidationReport", "validate_artifact"]


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of one induced-chain validation.

    Attributes
    ----------
    artifact_key / model_key / objective / t / epsilon:
        Provenance echoed from the artifact.
    reported_value:
        The probability recorded at extraction time.
    replayed_value:
        The probability the induced chain's transient analysis produced
        (at the validated ``initial`` state).
    deviation:
        ``|replayed_value - reported_value|``.
    tolerance:
        The admissible deviation: the query ε plus the certified error
        bounds of the extraction and of the replay.
    certificate:
        Induced-chain certificate (algorithm ``"policy.induced_chain"``;
        slot reuse documented in the module docstring).
    stationary:
        Whether the stored scheduler is memoryless.
    cross_check:
        For stationary schedulers: the independent CTMC route's value,
        deviation and certificate dict; ``None`` otherwise.
    replay_seconds:
        Wall time of the step-route replay (throughput accounting).
    """

    artifact_key: str
    model_key: str
    objective: str
    t: float
    epsilon: float
    initial: int
    reported_value: float
    replayed_value: float
    deviation: float
    tolerance: float
    certificate: NumericalCertificate
    stationary: bool
    cross_check: dict[str, Any] | None
    replay_seconds: float

    @property
    def ok(self) -> bool:
        """True iff the replay reproduced the reported value in budget."""
        return self.certificate.healthy and (
            self.cross_check is None or bool(self.cross_check["ok"])
        )

    def as_dict(self) -> dict[str, Any]:
        record = {
            "artifact_key": self.artifact_key,
            "model_key": self.model_key,
            "objective": self.objective,
            "t": self.t,
            "epsilon": self.epsilon,
            "initial": self.initial,
            "reported_value": self.reported_value,
            "replayed_value": self.replayed_value,
            "deviation": self.deviation,
            "tolerance": self.tolerance,
            "stationary": self.stationary,
            "ok": self.ok,
            "certificate": self.certificate.as_dict(),
            "replay_seconds": self.replay_seconds,
        }
        if self.cross_check is not None:
            record["cross_check"] = self.cross_check
        return record

    def describe(self) -> str:
        verdict = "ok" if self.ok else "FAILED"
        return (
            f"induced-chain {verdict}: reported={self.reported_value:.12f} "
            f"replayed={self.replayed_value:.12f} deviation={self.deviation:.3e} "
            f"tolerance={self.tolerance:.3e}"
            + (" (stationary, CTMC cross-checked)" if self.cross_check else "")
        )


def _induced_chain_certificate(
    replay_certificate: NumericalCertificate,
    deviation: float,
    tolerance: float,
) -> NumericalCertificate:
    """Fold a replay certificate and the observed deviation into one.

    Slot reuse (see module docstring): ``dropped_mass`` carries the
    deviation and ``epsilon`` the tolerance, so the inherited
    ``healthy`` predicate reads "no overflow, deviation <= tolerance,
    finite bound".
    """
    return NumericalCertificate(
        algorithm="policy.induced_chain",
        lam=replay_certificate.lam,
        epsilon=float(tolerance),
        left=replay_certificate.left,
        right=replay_certificate.right,
        dropped_mass=float(deviation),
        weight_sum_deficit=replay_certificate.weight_sum_deficit,
        underflow_count=replay_certificate.underflow_count,
        overflow_count=replay_certificate.overflow_count,
        sweep_residual=replay_certificate.sweep_residual,
        fp_slack=replay_certificate.fp_slack,
        error_bound=float(deviation) + replay_certificate.error_bound,
    )


def _stationary_cross_check(
    ctmdp: CTMDP,
    goal: np.ndarray,
    artifact: PolicyArtifact,
    initial: int,
    tolerance: float,
) -> dict[str, Any]:
    """Independent CTMC route for a memoryless policy.

    Fixing the (identical) first decision row on the model yields an
    honest CTMC; its prepared reachability solve must agree with the
    reported value through entirely different code than the step replay.
    """
    from repro.ctmc.reachability import PreparedCTMCReachability

    choices = np.maximum(artifact.decisions.row(0), 0)
    chain = ctmdp.induced_ctmc(choices)
    prepared = PreparedCTMCReachability(chain, goal)
    values = prepared.solve(artifact.t, epsilon=min(artifact.epsilon, 1e-10))
    certificate = prepared.last_certificate
    value = float(values[initial])
    deviation = abs(value - artifact.value)
    bound = certificate.error_bound if certificate is not None else 0.0
    return {
        "value": value,
        "deviation": deviation,
        "tolerance": tolerance + bound,
        "ok": bool(deviation <= tolerance + bound),
        "certificate": certificate.as_dict() if certificate is not None else None,
    }


def validate_artifact(
    artifact: PolicyArtifact,
    ctmdp: CTMDP,
    goal: Iterable[int] | np.ndarray,
    initial: int | None = None,
    safe: Iterable[int] | np.ndarray | None = None,
    metrics: "MetricStore | None" = None,
) -> ValidationReport:
    """Validate ``artifact`` against the model it claims to solve.

    Parameters
    ----------
    artifact:
        The stored policy (typically ``registry.load_policy(key)``).
    ctmdp:
        The uniform CTMDP the artifact's ``model_key`` names.  The
        caller resolves the key through the registry; this function
        checks state-space compatibility but cannot re-derive the model
        from the hash.
    goal:
        Goal set the value was computed for.
    initial:
        State whose value is compared (default: the artifact's
        ``initial`` metadata, falling back to ``ctmdp.initial``).
    safe:
        Optional safe set for until-extracted policies.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricStore`; receives the
        validation counters, the deviation gauge, the replay-throughput
        gauge and the induced-chain certificate.
    """
    if artifact.decisions.num_states != ctmdp.num_states:
        raise ModelError(
            f"policy covers {artifact.decisions.num_states} states, "
            f"model has {ctmdp.num_states}"
        )
    if initial is None:
        initial = int(artifact.meta.get("initial", ctmdp.initial))
    if not 0 <= initial < ctmdp.num_states:
        raise ModelError(f"initial state {initial} out of range")

    started = time.perf_counter()
    replayed = replay_step_scheduler(
        ctmdp, goal, artifact.t, artifact.decisions,
        epsilon=artifact.epsilon, safe=safe,
    )
    replay_seconds = time.perf_counter() - started

    replay_certificate = replayed.certificate
    assert replay_certificate is not None
    replayed_value = float(replayed.values[initial])
    deviation = abs(replayed_value - artifact.value)
    stored_bound = (
        artifact.certificate.error_bound if artifact.certificate is not None else 0.0
    )
    if not math.isfinite(stored_bound):  # a degraded extraction buys no slack
        stored_bound = 0.0
    tolerance = artifact.epsilon + stored_bound + replay_certificate.error_bound

    certificate = _induced_chain_certificate(replay_certificate, deviation, tolerance)

    stationary = artifact.decisions.is_stationary and len(artifact.decisions) > 0
    cross_check = None
    if stationary and safe is None:
        cross_check = _stationary_cross_check(
            ctmdp, np.asarray(_as_mask(ctmdp, goal)), artifact, initial, tolerance
        )

    if metrics is not None:
        metrics.count("policy_validations")
        if not certificate.healthy:
            metrics.count("policy_validations_failed")
        metrics.gauge("policy_last_deviation", deviation)
        metrics.gauge("policy_deviation_max", deviation)
        if replay_seconds > 0.0:
            throughput = (replayed.iterations * ctmdp.num_states) / replay_seconds
            metrics.gauge("policy_replay_rows_per_second", throughput / ctmdp.num_states)
            metrics.gauge("policy_replay_cells_per_second", throughput)
        metrics.add_time("policy_replay_seconds", replay_seconds)
        record_certificate(metrics, certificate)

    return ValidationReport(
        artifact_key=artifact.key,
        model_key=artifact.model_key,
        objective=artifact.objective,
        t=artifact.t,
        epsilon=artifact.epsilon,
        initial=initial,
        reported_value=artifact.value,
        replayed_value=replayed_value,
        deviation=deviation,
        tolerance=tolerance,
        certificate=certificate,
        stationary=stationary,
        cross_check=cross_check,
        replay_seconds=replay_seconds,
    )


def _as_mask(ctmdp: CTMDP, goal: Iterable[int] | np.ndarray) -> np.ndarray:
    from repro.core.reachability import _goal_mask

    return _goal_mask(ctmdp, goal)
