"""Policy artifacts: compressed schedulers plus provenance, on disk.

A :class:`PolicyArtifact` bundles a :class:`~repro.policy.store.CompressedDecisions`
table with the provenance a consumer needs to trust it -- the content
address of the model it was extracted from, the objective, horizon and
ε of the query, the value the solver reported, and the solver's
:class:`~repro.obs.certificate.NumericalCertificate`.  Artifacts are
content-addressed themselves: :func:`policy_key` hashes the canonical
metadata together with the raw decision arrays, so two extractions
agree if and only if their keys agree.

On-disk format (``.rpol``)::

    bytes 0..8    magic  b"RPOLICY1"
    bytes 8..16   u64 little-endian: JSON header length H
    bytes 16..16+H  UTF-8 JSON header: {"meta", "certificate", "layout",
                    "arrays": [{"name", "dtype", "offset", "count"}, ...]}
    ...           each array's raw little-endian bytes, 64-byte aligned

The arrays are written contiguously and 64-byte aligned, so
:func:`load_artifact` can hand ``numpy.memmap`` views straight to the
store -- loading a 62k-step policy touches only the header until rows
are actually decoded.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

import numpy as np

from repro.errors import ModelError
from repro.obs.certificate import NumericalCertificate
from repro.policy.store import CompressedDecisions

__all__ = [
    "MAGIC",
    "PolicyArtifact",
    "load_artifact",
    "policy_key",
    "save_artifact",
]

MAGIC = b"RPOLICY1"
_ALIGN = 64

#: Metadata fields every artifact carries (extra fields are allowed and
#: participate in the hash, but these are validated on construction).
_REQUIRED_META = ("model_key", "objective", "t", "epsilon", "value")


def _canonical_meta_json(meta: Mapping[str, Any]) -> str:
    """Deterministic JSON for hashing (sorted keys, fixed separators)."""
    return json.dumps(dict(meta), sort_keys=True, separators=(",", ":"))


@dataclass
class PolicyArtifact:
    """A stored scheduler: compressed decisions plus provenance.

    ``meta`` must carry at least ``model_key`` (the registry content
    address of the model), ``objective`` (``"max"``/``"min"``), ``t``
    (the horizon), ``epsilon`` and ``value`` (the probability the solver
    reported).  ``certificate`` is the solver's numerical-health account
    from the extraction run; it travels with the artifact but does not
    enter the content hash (it is diagnostics, not policy content).
    """

    decisions: CompressedDecisions
    meta: dict[str, Any] = field(default_factory=dict)
    certificate: NumericalCertificate | None = None

    def __post_init__(self) -> None:
        missing = [name for name in _REQUIRED_META if name not in self.meta]
        if missing:
            raise ModelError(
                f"policy artifact metadata is missing {', '.join(missing)}"
            )
        objective = self.meta["objective"]
        if objective not in ("max", "min"):
            raise ModelError(f"policy objective must be 'max' or 'min', got {objective!r}")

    # Convenience accessors over the required metadata -----------------
    @property
    def model_key(self) -> str:
        return str(self.meta["model_key"])

    @property
    def objective(self) -> str:
        return str(self.meta["objective"])

    @property
    def t(self) -> float:
        return float(self.meta["t"])

    @property
    def epsilon(self) -> float:
        return float(self.meta["epsilon"])

    @property
    def value(self) -> float:
        return float(self.meta["value"])

    @property
    def key(self) -> str:
        """The artifact's content address (cached after first use)."""
        cached = self.__dict__.get("_key")
        if cached is None:
            cached = policy_key(self)
            self.__dict__["_key"] = cached
        return cached

    def summary(self) -> dict[str, Any]:
        """The ``repro policy inspect`` payload: provenance + store stats."""
        record: dict[str, Any] = {
            "key": self.key,
            "meta": dict(self.meta),
            "store": self.decisions.stats(),
        }
        if self.certificate is not None:
            record["certificate"] = self.certificate.as_dict()
        return record

    def export_ndjson(self) -> Iterator[str]:
        """Render the artifact as NDJSON lines.

        First a ``header`` record (metadata, store layout, certificate),
        then one ``row`` record per *decision change point* -- row 0 and
        every row that differs from its predecessor -- carrying the full
        decision vector.  Replaying the stream (each row holds until the
        next record) reconstructs the dense table exactly, and for timed
        schedulers that switch at few Poisson steps the stream stays
        small.
        """
        header: dict[str, Any] = {
            "kind": "header",
            "key": self.key,
            "meta": dict(self.meta),
            "layout": self.decisions.layout(),
        }
        if self.certificate is not None:
            header["certificate"] = self.certificate.as_dict()
        yield json.dumps(header, sort_keys=True)
        previous: np.ndarray | None = None
        for index, row in enumerate(self.decisions.iter_rows()):
            if previous is None or not np.array_equal(row, previous):
                yield json.dumps({"kind": "row", "row": index,
                                  "decisions": row.tolist()})
                previous = row

    def save(self, path: str | Path) -> Path:
        return save_artifact(self, path)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PolicyArtifact(key={self.key[:12]}..., objective={self.objective}, "
            f"t={self.t:g}, rows={self.decisions.num_rows})"
        )


def policy_key(artifact: PolicyArtifact) -> str:
    """SHA-256 content address: canonical metadata + layout + array bytes.

    The certificate is deliberately excluded -- it describes the
    extraction run, not the policy.  Two runs that extract the same
    scheduler for the same query therefore share a key even if their
    floating-point health differs in the last digit.
    """
    digest = hashlib.sha256()
    digest.update(_canonical_meta_json(artifact.meta).encode("utf-8"))
    digest.update(
        json.dumps(artifact.decisions.layout(), sort_keys=True,
                   separators=(",", ":")).encode("ascii")
    )
    for name, array in artifact.decisions.arrays().items():
        digest.update(name.encode("ascii"))
        digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


def _pad(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def save_artifact(artifact: PolicyArtifact, path: str | Path) -> Path:
    """Write ``artifact`` to ``path`` in the ``.rpol`` binary format."""
    path = Path(path)
    arrays = artifact.decisions.arrays()
    table: list[dict[str, Any]] = []
    # Lay the arrays out after a header whose own length depends on the
    # offsets; two passes converge because offsets only shrink the
    # second time if the header shrank, and we re-pad from the final
    # header length.
    header: dict[str, Any] = {
        "meta": dict(artifact.meta),
        "key": artifact.key,
        "layout": artifact.decisions.layout(),
        "certificate": (
            artifact.certificate.as_dict() if artifact.certificate is not None else None
        ),
        "arrays": table,
    }
    # First pass with zero offsets to learn the header's encoded size.
    for name, array in arrays.items():
        table.append({
            "name": name,
            "dtype": np.dtype(array.dtype).str,  # e.g. "<i4" -- endian-explicit
            "count": int(array.size),
            "offset": 0,
        })
    encoded = json.dumps(header, sort_keys=True).encode("utf-8")
    base = _pad(len(MAGIC) + 8 + len(encoded) + _ALIGN)  # slack for offset digits
    offset = base
    for entry, array in zip(table, arrays.values()):
        entry["offset"] = offset
        offset += np.ascontiguousarray(array).nbytes
        offset = _pad(offset)
    encoded = json.dumps(header, sort_keys=True).encode("utf-8")
    if len(MAGIC) + 8 + len(encoded) > base:  # pragma: no cover - slack suffices
        raise ModelError("policy header exceeded its alignment slack")

    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as handle:
        handle.write(MAGIC)
        handle.write(len(encoded).to_bytes(8, "little"))
        handle.write(encoded)
        for entry, array in zip(table, arrays.values()):
            handle.seek(entry["offset"])
            handle.write(np.ascontiguousarray(array).tobytes())
        # Ensure the file extends to the padded end of the last array.
        handle.seek(0, 2)
        if handle.tell() < offset:
            handle.truncate(offset)
    return path


def read_header(path: str | Path) -> dict[str, Any]:
    """Read and validate just the JSON header of a ``.rpol`` file."""
    path = Path(path)
    with open(path, "rb") as handle:
        magic = handle.read(len(MAGIC))
        if magic != MAGIC:
            raise ModelError(f"{path} is not a policy artifact (bad magic {magic!r})")
        (length,) = (int.from_bytes(handle.read(8), "little"),)
        encoded = handle.read(length)
        if len(encoded) != length:
            raise ModelError(f"{path}: truncated policy header")
    try:
        header = json.loads(encoded.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ModelError(f"{path}: corrupt policy header: {error}") from None
    for field_name in ("meta", "layout", "arrays"):
        if field_name not in header:
            raise ModelError(f"{path}: policy header is missing {field_name!r}")
    return header


def load_artifact(path: str | Path, mmap: bool = True) -> PolicyArtifact:
    """Load a ``.rpol`` file, memory-mapping the decision arrays.

    With ``mmap`` (the default) the arrays are read-only ``np.memmap``
    views -- nothing beyond the header is paged in until rows are
    decoded.  ``mmap=False`` copies the arrays into process memory
    (use before deleting the file).
    """
    path = Path(path)
    header = read_header(path)
    arrays: dict[str, np.ndarray] = {}
    for entry in header["arrays"]:
        dtype = np.dtype(str(entry["dtype"]))
        count = int(entry["count"])
        offset = int(entry["offset"])
        if mmap and count:
            view: np.ndarray = np.memmap(
                path, dtype=dtype, mode="r", offset=offset, shape=(count,)
            )
        else:
            with open(path, "rb") as handle:
                handle.seek(offset)
                raw = handle.read(count * dtype.itemsize)
            if len(raw) != count * dtype.itemsize:
                raise ModelError(f"{path}: truncated policy array {entry['name']!r}")
            view = np.frombuffer(raw, dtype=dtype).copy()
        arrays[str(entry["name"])] = view
    decisions = CompressedDecisions.from_arrays(header["layout"], arrays)
    certificate = None
    if header.get("certificate"):
        certificate = NumericalCertificate.from_dict(header["certificate"])
    artifact = PolicyArtifact(
        decisions=decisions, meta=dict(header["meta"]), certificate=certificate
    )
    stored_key = header.get("key")
    if stored_key is not None and stored_key != artifact.key:
        raise ModelError(
            f"{path}: policy content hash mismatch "
            f"(stored {str(stored_key)[:12]}..., computed {artifact.key[:12]}...)"
        )
    return artifact
