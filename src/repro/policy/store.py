"""Compressed, streamable storage for step-indexed scheduler decisions.

Algorithm 1's extracted optimal schedulers are step-dependent: row ``i``
of the decision table holds, per state, the transition index chosen
after ``i`` jumps.  Recorded densely this is an ``iterations x states``
int32 matrix -- for the 30000 h FTWC horizon (~62k Poisson steps) that
dense matrix, not the model, is the memory bottleneck (ROADMAP).  The
saving grace is structural: timed schedulers switch decisions at *few*
Poisson steps (most rows equal their neighbour), and within a row the
decisions are piecewise constant over the state enumeration.

:class:`CompressedDecisions` exploits both regularities with a chunked
columnar layout:

* rows are grouped into *chunks* of ``chunk_size`` consecutive rows;
* the first row of each chunk is stored run-length encoded over states
  (``base_values`` / ``base_runs``, indexed per chunk by ``base_ptr``);
* every other row is stored as a sparse *delta* against its predecessor
  -- the changed state indices and their new choices -- and rows without
  changes cost **nothing** (``changed_rows`` lists only the rows that
  actually differ, ``delta_ptr`` delimits their entries).

Random access to row ``i`` decodes the chunk base and replays at most
``chunk_size - 1`` deltas; sequential iteration replays each delta once.
All six arrays are plain contiguous numpy arrays, so the on-disk format
(:mod:`repro.policy.artifact`) can memory-map them directly.

:class:`PolicyWriter` is the streaming producer: the value-iteration
loop appends one decision row per backward step and the dense matrix is
*never* materialised -- peak memory is the compressed payload plus one
row.  Because Algorithm 1 sweeps backwards (it records row ``k - 1``
first), the writer supports a ``reverse_rows`` orientation: rows are
stored in arrival (physical) order and logical row ``i`` maps to
physical position ``num_rows - 1 - i``.

This module deliberately depends on numpy only, so the core solvers can
import it without cycling through the rest of :mod:`repro.policy`.
"""

from __future__ import annotations

from typing import Any, Iterator

import numpy as np

__all__ = ["DEFAULT_CHUNK_SIZE", "CompressedDecisions", "PolicyWriter", "rle_encode"]

#: Rows per chunk.  Larger chunks amortise the run-length-encoded base
#: rows better (fewer bases) at the cost of longer delta replays on
#: random access; 256 keeps both comfortably small for the FTWC models.
DEFAULT_CHUNK_SIZE = 256

_STORE_ARRAY_NAMES = (
    "base_values",
    "base_runs",
    "base_ptr",
    "changed_rows",
    "delta_ptr",
    "delta_states",
    "delta_choices",
)


def rle_encode(row: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Run-length encode ``row`` into ``(values, run_lengths)``."""
    n = len(row)
    if n == 0:
        return np.empty(0, dtype=np.int32), np.empty(0, dtype=np.int32)
    boundaries = np.flatnonzero(row[1:] != row[:-1]) + 1
    starts = np.concatenate(([0], boundaries))
    values = row[starts].astype(np.int32)
    runs = np.diff(np.concatenate((starts, [n]))).astype(np.int32)
    return values, runs


class CompressedDecisions:
    """A read-only compressed ``num_rows x num_states`` decision table.

    Supports enough of the ndarray protocol (``len``, ``shape``,
    ``decisions[i]`` for a row, ``decisions[i][s]``, ``decisions[:, s]``,
    elementwise ``==``) that existing :class:`~repro.core.scheduler.StepScheduler`
    consumers work unchanged; bulk consumers should prefer
    :meth:`iter_rows` / :meth:`iter_rows_reversed`, which decode each
    delta exactly once.
    """

    def __init__(
        self,
        num_rows: int,
        num_states: int,
        chunk_size: int,
        base_values: np.ndarray,
        base_runs: np.ndarray,
        base_ptr: np.ndarray,
        changed_rows: np.ndarray,
        delta_ptr: np.ndarray,
        delta_states: np.ndarray,
        delta_choices: np.ndarray,
        reverse_rows: bool = False,
    ) -> None:
        if num_rows < 0 or num_states <= 0:
            raise ValueError("need num_rows >= 0 and num_states > 0")
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.num_rows = int(num_rows)
        self.num_states = int(num_states)
        self.chunk_size = int(chunk_size)
        self.reverse_rows = bool(reverse_rows)
        self.base_values = np.asarray(base_values, dtype=np.int32)
        self.base_runs = np.asarray(base_runs, dtype=np.int32)
        self.base_ptr = np.asarray(base_ptr, dtype=np.int64)
        self.changed_rows = np.asarray(changed_rows, dtype=np.int64)
        self.delta_ptr = np.asarray(delta_ptr, dtype=np.int64)
        self.delta_states = np.asarray(delta_states, dtype=np.int32)
        self.delta_choices = np.asarray(delta_choices, dtype=np.int32)
        expected_chunks = -(-self.num_rows // self.chunk_size) if self.num_rows else 0
        if len(self.base_ptr) != expected_chunks + 1:
            raise ValueError(
                f"base_ptr must have {expected_chunks + 1} entries, "
                f"got {len(self.base_ptr)}"
            )
        if len(self.delta_ptr) != len(self.changed_rows) + 1:
            raise ValueError("delta_ptr must have len(changed_rows) + 1 entries")
        # Decode cache for sequential random access: the physical index
        # and decoded row of the most recent lookup.
        self._cache_pos: int = -1
        self._cache_row: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Shape protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return (self.num_rows, self.num_states)

    @property
    def num_chunks(self) -> int:
        return len(self.base_ptr) - 1

    def __len__(self) -> int:
        return self.num_rows

    def _physical(self, logical: int) -> int:
        if not 0 <= logical < self.num_rows:
            raise IndexError(f"row {logical} out of range 0..{self.num_rows - 1}")
        return self.num_rows - 1 - logical if self.reverse_rows else logical

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def _decode_base(self, chunk: int) -> np.ndarray:
        lo, hi = self.base_ptr[chunk], self.base_ptr[chunk + 1]
        return np.repeat(self.base_values[lo:hi], self.base_runs[lo:hi])

    def _apply_deltas(self, row: np.ndarray, first: int, last: int) -> None:
        """Apply the deltas of physical rows in ``(first, last]`` onto ``row``."""
        j0 = int(np.searchsorted(self.changed_rows, first, side="right"))
        j1 = int(np.searchsorted(self.changed_rows, last, side="right"))
        for j in range(j0, j1):
            lo, hi = self.delta_ptr[j], self.delta_ptr[j + 1]
            row[self.delta_states[lo:hi]] = self.delta_choices[lo:hi]

    def _decode_physical(self, pos: int) -> np.ndarray:
        """Decode physical row ``pos`` (cached; the cache row is shared)."""
        chunk = pos // self.chunk_size
        start = chunk * self.chunk_size
        if (
            self._cache_row is not None
            and start <= self._cache_pos <= pos
        ):
            row = self._cache_row
            self._apply_deltas(row, self._cache_pos, pos)
        else:
            row = self._decode_base(chunk)
            self._apply_deltas(row, start, pos)
        self._cache_pos = pos
        self._cache_row = row
        return row

    def row(self, logical: int) -> np.ndarray:
        """Decision row ``logical`` as a fresh int32 array."""
        return self._decode_physical(self._physical(logical)).copy()

    def _iter_physical(self) -> Iterator[np.ndarray]:
        """Yield rows in physical order; the yielded array is reused."""
        row: np.ndarray | None = None
        for pos in range(self.num_rows):
            if pos % self.chunk_size == 0:
                row = self._decode_base(pos // self.chunk_size)
            else:
                assert row is not None
                self._apply_deltas(row, pos - 1, pos)
            yield row  # type: ignore[misc]

    def _iter_physical_reversed(self) -> Iterator[np.ndarray]:
        """Yield rows in reverse physical order, one chunk at a time.

        Rows within a chunk are decoded forward with copy-on-write (a
        fresh array only where a delta applies), so peak extra memory is
        one row per *changed* row of the chunk, not one per row.
        """
        for chunk in range(self.num_chunks - 1, -1, -1):
            start = chunk * self.chunk_size
            stop = min(start + self.chunk_size, self.num_rows)
            rows: list[np.ndarray] = [self._decode_base(chunk)]
            j0 = int(np.searchsorted(self.changed_rows, start, side="right"))
            for pos in range(start + 1, stop):
                j = int(np.searchsorted(self.changed_rows, pos, side="left"))
                if j < len(self.changed_rows) and self.changed_rows[j] == pos:
                    row = rows[-1].copy()
                    lo, hi = self.delta_ptr[j], self.delta_ptr[j + 1]
                    row[self.delta_states[lo:hi]] = self.delta_choices[lo:hi]
                    rows.append(row)
                else:
                    rows.append(rows[-1])
            del j0
            yield from reversed(rows)

    def iter_rows(self) -> Iterator[np.ndarray]:
        """Yield rows in *logical* order (row 0 first), each a copy."""
        source = (
            self._iter_physical_reversed() if self.reverse_rows else self._iter_physical()
        )
        for row in source:
            yield row.copy()

    def iter_rows_reversed(self) -> Iterator[np.ndarray]:
        """Yield rows in reverse logical order (last row first).

        For stores written by the backward value-iteration sweep
        (``reverse_rows=True``) this is a pure sequential decode -- the
        orientation the streaming replay of
        :func:`repro.core.reachability.replay_step_scheduler` consumes.
        """
        source = (
            self._iter_physical() if self.reverse_rows else self._iter_physical_reversed()
        )
        for row in source:
            yield row.copy()

    def dense(self) -> np.ndarray:
        """Materialise the full dense int32 decision matrix."""
        out = np.empty((self.num_rows, self.num_states), dtype=np.int32)
        for logical, row in enumerate(self.iter_rows()):
            out[logical] = row
        return out

    def __getitem__(self, key: Any) -> np.ndarray:
        if isinstance(key, (int, np.integer)):
            index = int(key)
            if index < 0:
                index += self.num_rows
            return self.row(index)
        # Fancy keys (column slices etc.) fall back to the dense matrix;
        # convenient for small tables, not meant for the 62k-row stores.
        return self.dense()[key]

    def __array__(self, dtype: Any = None, copy: Any = None) -> np.ndarray:
        dense = self.dense()
        return dense if dtype is None else dense.astype(dtype)

    def __eq__(self, other: Any):  # type: ignore[override]
        if isinstance(other, CompressedDecisions):
            return self.shape == other.shape and bool(
                np.array_equal(self.dense(), other.dense())
            )
        return self.dense() == np.asarray(other)

    __hash__ = None  # type: ignore[assignment]

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Compressed payload size (the seven columnar arrays)."""
        return int(sum(self.arrays()[name].nbytes for name in _STORE_ARRAY_NAMES))

    @property
    def dense_nbytes(self) -> int:
        """Size of the equivalent dense int32 matrix."""
        return self.num_rows * self.num_states * 4

    @property
    def compression_ratio(self) -> float:
        """Dense bytes over compressed bytes (> 1 means smaller)."""
        return self.dense_nbytes / max(1, self.nbytes)

    @property
    def is_stationary(self) -> bool:
        """True iff every row equals row 0 (a memoryless scheduler)."""
        if self.num_rows <= 1:
            return True
        if len(self.changed_rows):
            return False
        first = self._decode_base(0)
        return all(
            np.array_equal(first, self._decode_base(chunk))
            for chunk in range(1, self.num_chunks)
        )

    def change_points(self) -> np.ndarray:
        """Logical row indices whose decisions differ from the previous row.

        Computed in one streaming pass (deltas answer within-chunk
        changes directly; chunk-boundary rows are compared explicitly).
        """
        changed: list[int] = []
        previous: np.ndarray | None = None
        for pos, row in enumerate(self._iter_physical()):
            if pos % self.chunk_size == 0:
                if previous is not None and not np.array_equal(previous, row):
                    changed.append(pos)
                previous = row.copy()
            else:
                j = int(np.searchsorted(self.changed_rows, pos, side="left"))
                if j < len(self.changed_rows) and self.changed_rows[j] == pos:
                    changed.append(pos)
                previous = None if previous is None else row.copy()
        physical = np.asarray(changed, dtype=np.int64)
        if self.reverse_rows:
            # Physical row p differing from p-1 means logical rows
            # (n-1-p) and (n-p) differ, i.e. logical change at n - p.
            physical = np.sort(self.num_rows - physical)
        return physical

    def stats(self) -> dict[str, Any]:
        """Size and structure statistics (the ``repro policy inspect`` body)."""
        return {
            "rows": self.num_rows,
            "states": self.num_states,
            "chunk_size": self.chunk_size,
            "chunks": self.num_chunks,
            "reverse_rows": self.reverse_rows,
            "changed_rows": int(len(self.changed_rows)),
            "delta_entries": int(len(self.delta_states)),
            "compressed_bytes": self.nbytes,
            "dense_bytes": self.dense_nbytes,
            "compression_ratio": self.compression_ratio,
            "stationary": self.is_stationary,
        }

    # ------------------------------------------------------------------
    # (De)construction
    # ------------------------------------------------------------------
    def arrays(self) -> dict[str, np.ndarray]:
        """The columnar arrays by canonical name (serialisation order)."""
        return {name: getattr(self, name) for name in _STORE_ARRAY_NAMES}

    def layout(self) -> dict[str, Any]:
        """The scalar layout parameters (serialised next to the arrays)."""
        return {
            "num_rows": self.num_rows,
            "num_states": self.num_states,
            "chunk_size": self.chunk_size,
            "reverse_rows": self.reverse_rows,
        }

    @classmethod
    def from_arrays(
        cls, layout: dict[str, Any], arrays: dict[str, np.ndarray]
    ) -> "CompressedDecisions":
        """Rebuild from :meth:`layout` and :meth:`arrays` (or memory maps)."""
        return cls(
            num_rows=int(layout["num_rows"]),
            num_states=int(layout["num_states"]),
            chunk_size=int(layout["chunk_size"]),
            reverse_rows=bool(layout["reverse_rows"]),
            **{name: arrays[name] for name in _STORE_ARRAY_NAMES},
        )

    @classmethod
    def from_dense(
        cls,
        matrix: np.ndarray,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        reverse_rows: bool = False,
    ) -> "CompressedDecisions":
        """Compress an existing dense decision matrix.

        With ``reverse_rows`` the *logical* matrix is unchanged but rows
        are stored back-to-front, matching what the streaming writer of
        a backward sweep would have produced.
        """
        matrix = np.asarray(matrix, dtype=np.int32)
        if matrix.ndim != 2:
            raise ValueError(f"decision matrix must be 2-D, got shape {matrix.shape}")
        writer = PolicyWriter(
            num_states=matrix.shape[1], chunk_size=chunk_size, reverse_rows=reverse_rows
        )
        rows = range(len(matrix) - 1, -1, -1) if reverse_rows else range(len(matrix))
        for index in rows:
            writer.append(matrix[index])
        return writer.finish()

    @classmethod
    def empty(cls, num_states: int, reverse_rows: bool = False) -> "CompressedDecisions":
        """A zero-row store (the trivial ``t = 0`` / empty-goal policy)."""
        return PolicyWriter(num_states=num_states, reverse_rows=reverse_rows).finish()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompressedDecisions(rows={self.num_rows}, states={self.num_states}, "
            f"bytes={self.nbytes}, ratio={self.compression_ratio:.1f})"
        )


class PolicyWriter:
    """Streaming encoder: append decision rows, never hold the matrix.

    The value-iteration loop calls :meth:`append` once per backward step
    with that step's full decision row (int32, ``-1`` where a state has
    no choice); :meth:`finish` seals the stream into a
    :class:`CompressedDecisions`.  Peak memory is the compressed payload
    plus one previous-row buffer.
    """

    def __init__(
        self,
        num_states: int,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        reverse_rows: bool = False,
    ) -> None:
        if num_states <= 0:
            raise ValueError("num_states must be positive")
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.num_states = int(num_states)
        self.chunk_size = int(chunk_size)
        self.reverse_rows = bool(reverse_rows)
        self._rows = 0
        self._previous: np.ndarray | None = None
        self._base_values: list[np.ndarray] = []
        self._base_runs: list[np.ndarray] = []
        self._base_counts: list[int] = []
        self._changed_rows: list[int] = []
        self._delta_counts: list[int] = []
        self._delta_states: list[np.ndarray] = []
        self._delta_choices: list[np.ndarray] = []
        self._finished = False

    @property
    def rows_written(self) -> int:
        return self._rows

    @property
    def bytes_written(self) -> int:
        """Approximate compressed bytes accumulated so far."""
        payload = sum(a.nbytes for a in self._base_values) + sum(
            a.nbytes for a in self._base_runs
        )
        payload += sum(a.nbytes for a in self._delta_states) + sum(
            a.nbytes for a in self._delta_choices
        )
        return int(
            payload + 8 * (len(self._base_counts) + 1) + 8 * len(self._changed_rows)
            + 8 * (len(self._changed_rows) + 1)
        )

    def append(self, row: np.ndarray) -> None:
        """Append the next decision row (physical order)."""
        if self._finished:
            raise RuntimeError("writer already finished")
        row = np.asarray(row, dtype=np.int32)
        if row.shape != (self.num_states,):
            raise ValueError(
                f"decision row must have shape ({self.num_states},), got {row.shape}"
            )
        if self._rows % self.chunk_size == 0:
            values, runs = rle_encode(row)
            self._base_values.append(values)
            self._base_runs.append(runs)
            self._base_counts.append(len(values))
        else:
            assert self._previous is not None
            changed = np.flatnonzero(row != self._previous)
            if len(changed):
                self._changed_rows.append(self._rows)
                self._delta_counts.append(len(changed))
                self._delta_states.append(changed.astype(np.int32))
                self._delta_choices.append(row[changed].copy())
        self._previous = row.copy()
        self._rows += 1

    def finish(self) -> CompressedDecisions:
        """Seal the stream and return the compressed store."""
        if self._finished:
            raise RuntimeError("writer already finished")
        self._finished = True

        def _concat(parts: list[np.ndarray], dtype: type) -> np.ndarray:
            if not parts:
                return np.empty(0, dtype=dtype)
            return np.concatenate(parts).astype(dtype, copy=False)

        base_ptr = np.concatenate(
            ([0], np.cumsum(np.asarray(self._base_counts, dtype=np.int64)))
        ).astype(np.int64)
        delta_ptr = np.concatenate(
            ([0], np.cumsum(np.asarray(self._delta_counts, dtype=np.int64)))
        ).astype(np.int64)
        return CompressedDecisions(
            num_rows=self._rows,
            num_states=self.num_states,
            chunk_size=self.chunk_size,
            base_values=_concat(self._base_values, np.int32),
            base_runs=_concat(self._base_runs, np.int32),
            base_ptr=base_ptr,
            changed_rows=np.asarray(self._changed_rows, dtype=np.int64),
            delta_ptr=delta_ptr,
            delta_states=_concat(self._delta_states, np.int32),
            delta_choices=_concat(self._delta_choices, np.int32),
            reverse_rows=self.reverse_rows,
        )
