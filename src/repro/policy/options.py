"""Shared ``--save-policy`` plumbing for the CLI front-ends.

``repro check`` and ``repro batch`` both accept ``--save-policy DEST``
with identical semantics (one option parser, one destination grammar):

* ``registry`` (the literal word) stores artifacts through the model
  registry's content-addressed policy store (``<cache>/policies/``);
* an existing directory (or a path ending in a separator) stores one
  ``<key>.rpol`` file per artifact inside it;
* any other path writes a single artifact to exactly that file (an
  error if the command produced more than one).
"""

from __future__ import annotations

import argparse
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.errors import ModelError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.engine.registry import ModelRegistry
    from repro.policy.artifact import PolicyArtifact

__all__ = ["add_save_policy_option", "save_policy_artifacts"]


def add_save_policy_option(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--save-policy`` option to ``parser``."""
    parser.add_argument(
        "--save-policy",
        metavar="DEST",
        default=None,
        dest="save_policy",
        help="persist the extracted scheduler(s): a .rpol file path, a "
        "directory (one <key>.rpol per query), or the literal "
        "'registry' for the model registry's policy store",
    )


def _is_directory_destination(dest: str, count: int) -> bool:
    if dest.endswith(os.sep) or (os.altsep and dest.endswith(os.altsep)):
        return True
    if Path(dest).is_dir():
        return True
    return count > 1


def save_policy_artifacts(
    dest: str,
    artifacts: "list[PolicyArtifact]",
    registry: "ModelRegistry | None" = None,
) -> list[dict[str, Any]]:
    """Persist ``artifacts`` to ``dest``; return one record per artifact.

    Each record carries the artifact's content ``key`` and the ``path``
    it was written to.  Raises :class:`~repro.errors.ModelError` on a
    destination that cannot hold the artifacts (``registry`` without a
    disk-backed registry, a single-file path for several artifacts).
    """
    if not artifacts:
        return []
    records: list[dict[str, Any]] = []
    if dest == "registry":
        if registry is None:
            raise ModelError("--save-policy registry needs a model registry")
        for artifact in artifacts:
            path = registry.store_policy(artifact)
            records.append({"key": artifact.key, "path": str(path)})
        return records
    if _is_directory_destination(dest, len(artifacts)):
        directory = Path(dest)
        directory.mkdir(parents=True, exist_ok=True)
        for artifact in artifacts:
            path = artifact.save(directory / f"{artifact.key}.rpol")
            records.append({"key": artifact.key, "path": str(path)})
        return records
    artifact = artifacts[0]
    path = artifact.save(dest)
    records.append({"key": artifact.key, "path": str(path)})
    return records
