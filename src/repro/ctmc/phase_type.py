"""Phase-type distributions.

A phase-type distribution is the distribution of the time until
absorption in a finite absorbing CTMC [Neuts 1981].  The paper uses them
as the timing ingredient of the *elapse* operator: any delay occurring in
the system under study is specified as a phase-type distribution, whose
carrier CTMC is uniformized (so the result is a uniform IMC) and then
composed with the behavioural LTS.

The class below keeps the paper's structural view: a CTMC together with a
distinguished initial state ``i`` and a distinguished absorbing state
``a``.  Classical sub-families (exponential, Erlang, hypoexponential,
Coxian) are provided as constructors; all admit a *single* entry state,
matching the paper's definition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
import scipy.linalg

from repro.ctmc.model import CTMC
from repro.ctmc.uniformization import uniformize
from repro.errors import ModelError

__all__ = ["PhaseType"]


@dataclass
class PhaseType:
    """A phase-type distribution as an absorbing CTMC with entry state.

    Attributes
    ----------
    chain:
        The carrier CTMC.  Before uniformization the distinguished
        absorbing state has no outgoing transitions; after uniformization
        it carries a self-loop ("reentered from itself according to a
        Poisson distribution", Section 2 of the paper).
    initial:
        Index of the entry state ``i``.
    absorbing:
        Index of the absorbing state ``a``.
    """

    chain: CTMC
    initial: int
    absorbing: int

    def __post_init__(self) -> None:
        n = self.chain.num_states
        if not 0 <= self.initial < n:
            raise ModelError("phase-type initial state out of range")
        if not 0 <= self.absorbing < n:
            raise ModelError("phase-type absorbing state out of range")
        if self.initial == self.absorbing:
            raise ModelError("initial and absorbing state must differ")
        # The absorbing state may only carry a self-loop (introduced by
        # uniformization); any other outgoing transition is an error.
        for target, _rate in self.chain.successors(self.absorbing):
            if target != self.absorbing:
                raise ModelError("absorbing state of a phase-type must not leave itself")

    # ------------------------------------------------------------------
    # Constructors for the classical sub-families
    # ------------------------------------------------------------------
    @classmethod
    def exponential(cls, rate: float) -> "PhaseType":
        """Exponential distribution with the given rate (one phase)."""
        if rate <= 0.0:
            raise ModelError("exponential rate must be positive")
        chain = CTMC.from_transitions(2, [(0, 1, rate)], initial=0)
        return cls(chain=chain, initial=0, absorbing=1)

    @classmethod
    def erlang(cls, phases: int, rate: float) -> "PhaseType":
        """Erlang distribution: ``phases`` sequential exponential stages."""
        if phases < 1:
            raise ModelError("Erlang needs at least one phase")
        if rate <= 0.0:
            raise ModelError("Erlang rate must be positive")
        transitions = [(k, k + 1, rate) for k in range(phases)]
        chain = CTMC.from_transitions(phases + 1, transitions, initial=0)
        return cls(chain=chain, initial=0, absorbing=phases)

    @classmethod
    def hypoexponential(cls, rates: Sequence[float]) -> "PhaseType":
        """Generalised Erlang: sequential stages with individual rates."""
        if not rates:
            raise ModelError("hypoexponential needs at least one stage")
        if any(r <= 0.0 for r in rates):
            raise ModelError("hypoexponential rates must be positive")
        transitions = [(k, k + 1, r) for k, r in enumerate(rates)]
        chain = CTMC.from_transitions(len(rates) + 1, transitions, initial=0)
        return cls(chain=chain, initial=0, absorbing=len(rates))

    @classmethod
    def coxian(cls, rates: Sequence[float], completion_probabilities: Sequence[float]) -> "PhaseType":
        """Coxian distribution.

        Stage ``k`` finishes with rate ``rates[k]``; upon finishing, the
        process absorbs with probability ``completion_probabilities[k]``
        and continues to the next stage otherwise.  The last stage must
        absorb with probability one.
        """
        if len(rates) != len(completion_probabilities):
            raise ModelError("Coxian needs one completion probability per stage")
        if not rates:
            raise ModelError("Coxian needs at least one stage")
        if any(r <= 0.0 for r in rates):
            raise ModelError("Coxian rates must be positive")
        if any(not 0.0 <= p <= 1.0 for p in completion_probabilities):
            raise ModelError("Coxian completion probabilities must lie in [0, 1]")
        if abs(completion_probabilities[-1] - 1.0) > 1e-12:
            raise ModelError("the final Coxian stage must complete with probability one")
        k = len(rates)
        absorbing = k
        transitions: list[tuple[int, int, float]] = []
        for stage, (rate, p_done) in enumerate(zip(rates, completion_probabilities)):
            if p_done > 0.0:
                transitions.append((stage, absorbing, rate * p_done))
            if stage + 1 < k and p_done < 1.0:
                transitions.append((stage, stage + 1, rate * (1.0 - p_done)))
        chain = CTMC.from_transitions(k + 1, transitions, initial=0)
        return cls(chain=chain, initial=0, absorbing=absorbing)

    # ------------------------------------------------------------------
    # Structural operations
    # ------------------------------------------------------------------
    def uniformized(self, rate: float | None = None) -> "PhaseType":
        """Uniformize the carrier CTMC (Jensen), keeping ``i`` and ``a``.

        After uniformization the absorbing state carries a self-loop with
        the uniform rate; this is a prerequisite for uniformity of the
        elapse IMC built on top.
        """
        return PhaseType(
            chain=uniformize(self.chain, rate),
            initial=self.initial,
            absorbing=self.absorbing,
        )

    def uniform_rate(self) -> float:
        """Uniform rate of the (uniformized) carrier chain."""
        return self.chain.uniform_rate()

    @property
    def num_phases(self) -> int:
        """Number of transient phases (states excluding the absorbing one)."""
        return self.chain.num_states - 1

    def _subgenerator(self) -> tuple[np.ndarray, np.ndarray, list[int]]:
        """Return ``(T, t, transient_order)``.

        ``T`` is the transient-to-transient sub-generator (self-loops
        cancel out), ``t = -T 1`` the absorption-rate column vector and
        ``transient_order`` maps matrix rows back to chain states.
        """
        transient = [s for s in range(self.chain.num_states) if s != self.absorbing]
        dense = self.chain.rates.toarray()
        sub = dense[np.ix_(transient, transient)]
        absorb = dense[transient, self.absorbing]
        off = sub - np.diag(np.diag(sub))  # self-loops cancel in the generator
        exits = off.sum(axis=1) + absorb
        t_matrix = off - np.diag(exits)
        return t_matrix, absorb, transient

    # ------------------------------------------------------------------
    # Distribution-theoretic interface
    # ------------------------------------------------------------------
    def cdf(self, x: float) -> float:
        """``Pr(X <= x)``, via the matrix exponential of the sub-generator."""
        if x < 0.0:
            return 0.0
        t_matrix, _t_vec, transient = self._subgenerator()
        alpha = np.zeros(len(transient))
        alpha[transient.index(self.initial)] = 1.0
        survival = alpha @ scipy.linalg.expm(t_matrix * x) @ np.ones(len(transient))
        return float(1.0 - survival)

    def pdf(self, x: float) -> float:
        """Density at ``x >= 0``."""
        if x < 0.0:
            return 0.0
        t_matrix, t_vec, transient = self._subgenerator()
        alpha = np.zeros(len(transient))
        alpha[transient.index(self.initial)] = 1.0
        return float(alpha @ scipy.linalg.expm(t_matrix * x) @ t_vec)

    def moment(self, order: int) -> float:
        """Raw moment ``E[X^order]`` via ``(-1)^k k! alpha T^{-k} 1``."""
        if order < 1:
            raise ModelError("moment order must be >= 1")
        t_matrix, _t_vec, transient = self._subgenerator()
        alpha = np.zeros(len(transient))
        alpha[transient.index(self.initial)] = 1.0
        inv = np.linalg.inv(t_matrix)
        vec = alpha.copy()
        for _ in range(order):
            vec = vec @ inv
        return float((-1.0) ** order * math.factorial(order) * vec.sum())

    def mean(self) -> float:
        """Expected value of the distribution."""
        return self.moment(1)

    def variance(self) -> float:
        """Variance of the distribution."""
        first = self.moment(1)
        return self.moment(2) - first * first

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` independent samples by simulating the chain."""
        t_matrix, t_vec, transient = self._subgenerator()
        exit_rates = -np.diag(t_matrix)
        # Jump probabilities among transient states plus absorption.
        samples = np.empty(size)
        start = transient.index(self.initial)
        for n in range(size):
            state = start
            elapsed = 0.0
            while True:
                rate = exit_rates[state]
                elapsed += rng.exponential(1.0 / rate)
                row = t_matrix[state].copy()
                row[state] = 0.0
                weights = np.append(row, t_vec[state])
                weights = weights / weights.sum()
                nxt = rng.choice(len(weights), p=weights)
                if nxt == len(transient):
                    break
                state = nxt
            samples[n] = elapsed
        return samples

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PhaseType(phases={self.num_phases}, initial={self.initial}, "
            f"absorbing={self.absorbing})"
        )
