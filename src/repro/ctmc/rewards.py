"""State-reward analysis for CTMCs.

The paper's implementation lived inside ETMCC and was being ported to
MRMC -- the Markov *Reward* Model Checker [20] -- whose bread-and-butter
queries decorate states with reward rates.  This module provides the
three classical state-reward measures:

* :func:`instantaneous_reward` -- expected reward rate at time ``t``
  (``pi(t) . r``), e.g. "expected number of operational workstations
  after 100 h";
* :func:`long_run_average_reward` -- steady-state reward rate
  (``pi . r``), e.g. long-run premium availability when ``r`` is the
  premium indicator;
* :func:`accumulated_reward_until` -- expected reward accumulated until
  a goal set is first hit (the reward-weighted generalisation of the
  expected hitting time: with ``r = 1`` everywhere the two coincide).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg

from repro.ctmc.hitting import _can_reach
from repro.ctmc.model import CTMC
from repro.ctmc.reachability import goal_mask as _goal_mask
from repro.ctmc.uniformization import steady_state_distribution, transient_distribution
from repro.errors import ModelError

__all__ = [
    "instantaneous_reward",
    "long_run_average_reward",
    "accumulated_reward_until",
]


def _check_rewards(rewards: np.ndarray, n: int) -> np.ndarray:
    arr = np.asarray(rewards, dtype=np.float64)
    if arr.shape != (n,):
        raise ModelError(f"one reward rate per state required, got shape {arr.shape}")
    return arr


def instantaneous_reward(
    ctmc: CTMC, rewards: np.ndarray, t: float, epsilon: float = 1e-10
) -> float:
    """Expected reward rate at time ``t``: ``pi(t) . r``."""
    arr = _check_rewards(rewards, ctmc.num_states)
    distribution = transient_distribution(ctmc, t, epsilon=epsilon)
    return float(distribution @ arr)


def long_run_average_reward(ctmc: CTMC, rewards: np.ndarray) -> float:
    """Long-run average reward rate ``pi . r`` (irreducible chains)."""
    arr = _check_rewards(rewards, ctmc.num_states)
    return float(steady_state_distribution(ctmc) @ arr)


def accumulated_reward_until(
    ctmc: CTMC, rewards: np.ndarray, goal: Iterable[int] | np.ndarray
) -> np.ndarray:
    """Expected reward accumulated until ``goal`` is first entered.

    Solves ``(diag(E) - R_restricted) v = r`` on the non-goal states
    (self-loops cancel).  States that do not reach the goal almost
    surely carry ``inf`` (if their reward is ever positive on the
    non-goal part they accumulate forever) -- consistent with
    :func:`repro.ctmc.hitting.expected_hitting_time`, which is the
    ``r = 1`` special case.
    """
    n = ctmc.num_states
    arr = _check_rewards(rewards, n)
    if (arr < 0.0).any():
        raise ModelError("reward rates must be non-negative")
    if isinstance(goal, np.ndarray) and goal.dtype == bool:
        mask = goal
        if mask.shape != (n,):
            raise ModelError(f"goal mask must have shape ({n},)")
    else:
        mask = _goal_mask(n, goal)
    result = np.full(n, np.inf)
    result[mask] = 0.0
    if not mask.any():
        return result

    can = _can_reach(ctmc, mask)
    finite = can.copy()
    matrix = ctmc.rates
    changed = True
    while changed:
        changed = False
        for state in np.flatnonzero(finite & ~mask):
            lo, hi = matrix.indptr[state], matrix.indptr[state + 1]
            targets = matrix.indices[lo:hi]
            if len(targets) == 0 or any(not finite[int(t)] for t in targets):
                finite[state] = False
                changed = True

    solve_states = np.flatnonzero(finite & ~mask)
    if len(solve_states) == 0:
        return result

    exits = ctmc.exit_rates()
    diag_loops = np.array([ctmc.rate(s, s) for s in solve_states])
    sub = ctmc.rates[np.ix_(solve_states, solve_states)].tolil()
    for k in range(len(solve_states)):
        sub[k, k] = 0.0
    a = sp.diags(exits[solve_states] - diag_loops) - sp.csr_matrix(sub)
    v = scipy.sparse.linalg.spsolve(sp.csr_matrix(a), arr[solve_states])
    result[solve_states] = np.atleast_1d(v)
    return result
