"""Expected hitting times in CTMCs.

The deterministic counterpart of
:func:`repro.core.expected_time.expected_reachability_time`: the
expected time until a goal set is first hit, solved exactly through one
sparse linear system

    (diag(E_s) - R_restricted) h = 1      on non-goal states,

where ``E_s`` are the exit rates (self-loops cancel) and
``R_restricted`` is the rate matrix among non-goal states.  States that
cannot reach the goal have infinite expected hitting time and are
classified by graph reachability first.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg

from repro.ctmc.model import CTMC
from repro.ctmc.reachability import goal_mask as _goal_mask
from repro.errors import ModelError

__all__ = ["expected_hitting_time"]


def _can_reach(ctmc: CTMC, mask: np.ndarray) -> np.ndarray:
    """States with a path into the goal set (ignoring rates)."""
    n = ctmc.num_states
    predecessors: list[list[int]] = [[] for _ in range(n)]
    matrix = ctmc.rates
    for state in range(n):
        lo, hi = matrix.indptr[state], matrix.indptr[state + 1]
        for target in matrix.indices[lo:hi]:
            predecessors[int(target)].append(state)
    reached = mask.copy()
    stack = list(np.flatnonzero(mask))
    while stack:
        state = stack.pop()
        for pred in predecessors[state]:
            if not reached[pred]:
                reached[pred] = True
                stack.append(pred)
    return reached


def expected_hitting_time(
    ctmc: CTMC, goal: Iterable[int] | np.ndarray
) -> np.ndarray:
    """Expected time, per state, until ``goal`` is first entered.

    Returns ``0`` on goal states and ``inf`` where the goal is not
    almost surely reached (either unreachable, or the chain can be
    absorbed elsewhere first).

    Raises
    ------
    ModelError
        If the goal specification is invalid.
    """
    n = ctmc.num_states
    if isinstance(goal, np.ndarray) and goal.dtype == bool:
        mask = goal
        if mask.shape != (n,):
            raise ModelError(f"goal mask must have shape ({n},)")
    else:
        mask = _goal_mask(n, goal)
    if not mask.any():
        return np.full(n, np.inf)

    # Reaching the goal almost surely requires (i) a path existing and
    # (ii) no possibility of getting trapped in a goal-free recurrent
    # set.  For a CTMC both reduce to: every state reachable from s
    # without passing the goal can still reach the goal.
    can = _can_reach(ctmc, mask)
    finite = can.copy()
    changed = True
    matrix = ctmc.rates
    while changed:
        changed = False
        for state in np.flatnonzero(finite & ~mask):
            lo, hi = matrix.indptr[state], matrix.indptr[state + 1]
            targets = matrix.indices[lo:hi]
            if len(targets) == 0 or any(not finite[int(t)] for t in targets):
                finite[state] = False
                changed = True

    solve_states = np.flatnonzero(finite & ~mask)
    result = np.full(n, np.inf)
    result[mask] = 0.0
    if len(solve_states) == 0:
        return result

    dense_rates = ctmc.rates
    exits = ctmc.exit_rates()
    # Self-loops cancel in the generator: subtract them from both sides.
    diag_loops = np.array([ctmc.rate(s, s) for s in solve_states])
    sub = dense_rates[np.ix_(solve_states, solve_states)].tolil()
    for k in range(len(solve_states)):
        sub[k, k] = 0.0
    a = sp.diags(exits[solve_states] - diag_loops) - sp.csr_matrix(sub)
    h = scipy.sparse.linalg.spsolve(sp.csr_matrix(a), np.ones(len(solve_states)))
    result[solve_states] = np.atleast_1d(h)
    return result
