"""Continuous-time Markov chains (CTMCs).

CTMCs appear in the paper in three roles:

* as the *special case* of an IMC whose interactive transition relation is
  empty (Section 2),
* as the structural carrier of *phase-type distributions* used by the
  elapse operator (Section 3), and
* as the less faithful modelling style against which the CTMDP analysis
  of the fault-tolerant workstation cluster is compared (Figure 4).

The rate matrix is stored sparsely; self-loop rates are permitted and
meaningful -- they are exactly what Jensen's uniformization introduces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np
import scipy.sparse as sp

from repro.errors import ModelError

__all__ = ["CTMC"]


def _as_csr(matrix: sp.spmatrix | np.ndarray, n: int) -> sp.csr_matrix:
    """Coerce ``matrix`` to an ``n x n`` CSR matrix of non-negative rates."""
    csr = sp.csr_matrix(matrix, dtype=np.float64)
    if csr.shape != (n, n):
        raise ModelError(f"rate matrix must be {n}x{n}, got {csr.shape}")
    if csr.nnz and not np.isfinite(csr.data).all():
        raise ModelError("rates must be finite")
    if csr.nnz and csr.data.min() < 0.0:
        raise ModelError("rates must be non-negative")
    csr.eliminate_zeros()
    return csr


@dataclass
class CTMC:
    """A finite continuous-time Markov chain.

    Attributes
    ----------
    rates:
        Sparse ``n x n`` matrix of transition rates; ``rates[s, s']`` is
        the cumulative rate from ``s`` to ``s'``.  Diagonal entries are
        genuine self-loop rates (as produced by uniformization), *not*
        generator diagonals.
    initial:
        Index of the initial state.
    state_names:
        Optional human-readable names, one per state.
    """

    rates: sp.csr_matrix
    initial: int = 0
    state_names: list[str] | None = None

    def __post_init__(self) -> None:
        n = self.num_states
        if n == 0:
            raise ModelError("a CTMC needs at least one state")
        self.rates = _as_csr(self.rates, n)
        if not 0 <= self.initial < n:
            raise ModelError(f"initial state {self.initial} out of range 0..{n - 1}")
        if self.state_names is not None and len(self.state_names) != n:
            raise ModelError("state_names length must match the number of states")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_transitions(
        cls,
        num_states: int,
        transitions: Iterable[tuple[int, int, float]],
        initial: int = 0,
        state_names: Sequence[str] | None = None,
    ) -> "CTMC":
        """Build a CTMC from ``(source, target, rate)`` triples.

        Multiple triples for the same state pair accumulate, mirroring the
        cumulative-rate reading ``Rate(s, s')`` used in the paper.
        """
        rows, cols, data = [], [], []
        for src, dst, rate in transitions:
            if not math.isfinite(rate) or rate < 0.0:
                raise ModelError(
                    f"rate {rate} on transition {src} -> {dst} is not a "
                    "non-negative finite number"
                )
            if not (0 <= src < num_states and 0 <= dst < num_states):
                raise ModelError(f"transition {src} -> {dst} out of range")
            if rate > 0.0:
                rows.append(src)
                cols.append(dst)
                data.append(rate)
        matrix = sp.csr_matrix(
            (data, (rows, cols)), shape=(num_states, num_states), dtype=np.float64
        )
        matrix.sum_duplicates()
        names = list(state_names) if state_names is not None else None
        return cls(rates=matrix, initial=initial, state_names=names)

    @classmethod
    def from_generator(cls, generator: np.ndarray, initial: int = 0) -> "CTMC":
        """Build a CTMC from an infinitesimal generator matrix ``Q``.

        Off-diagonal entries become rates; the diagonal is discarded (it
        is implied by the row sums).  Chains built this way carry no
        self-loops.
        """
        q = np.asarray(generator, dtype=np.float64)
        if q.ndim != 2 or q.shape[0] != q.shape[1]:
            raise ModelError("generator must be a square matrix")
        off = q.copy()
        np.fill_diagonal(off, 0.0)
        if (off < 0.0).any():
            raise ModelError("off-diagonal generator entries must be non-negative")
        row_sums = off.sum(axis=1)
        if not np.allclose(-np.diag(q), row_sums, rtol=1e-9, atol=1e-9):
            raise ModelError("generator diagonal must equal minus the row sums")
        return cls(rates=sp.csr_matrix(off), initial=initial)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        """Number of states."""
        return self.rates.shape[0]

    @property
    def num_transitions(self) -> int:
        """Number of stored (non-zero cumulative rate) transitions."""
        return self.rates.nnz

    def exit_rates(self) -> np.ndarray:
        """Vector of exit rates ``E_s`` (row sums, self-loops included)."""
        return np.asarray(self.rates.sum(axis=1)).ravel()

    def rate(self, src: int, dst: int) -> float:
        """Cumulative rate ``Rate(src, dst)``."""
        return float(self.rates[src, dst])

    def successors(self, state: int) -> list[tuple[int, float]]:
        """List of ``(target, rate)`` pairs leaving ``state``."""
        row = self.rates.getrow(state)
        return list(zip(row.indices.tolist(), row.data.tolist()))

    def is_absorbing(self, state: int) -> bool:
        """True iff ``state`` has no outgoing rate mass."""
        return self.rates.indptr[state] == self.rates.indptr[state + 1]

    def absorbing_states(self) -> list[int]:
        """All states with no outgoing transitions."""
        return [s for s in range(self.num_states) if self.is_absorbing(s)]

    # ------------------------------------------------------------------
    # Uniformity
    # ------------------------------------------------------------------
    def is_uniform(self, tol: float = 1e-9) -> bool:
        """Check whether all exit rates agree (within ``tol``).

        This is the CTMC instance of the paper's uniformity notion: the
        sojourn-time distribution is the same in every state.
        """
        exits = self.exit_rates()
        return bool(np.all(np.abs(exits - exits[0]) <= tol * max(1.0, abs(exits[0]))))

    def uniform_rate(self, tol: float = 1e-9) -> float:
        """Return the common exit rate of a uniform CTMC.

        Raises
        ------
        ModelError
            If the chain is not uniform.
        """
        if not self.is_uniform(tol):
            raise ModelError("CTMC is not uniform")
        return float(self.exit_rates()[0])

    # ------------------------------------------------------------------
    # Derived chains
    # ------------------------------------------------------------------
    def embedded_dtmc_matrix(self) -> sp.csr_matrix:
        """Probability matrix of the embedded jump chain.

        Absorbing states receive a probability-one self-loop so the
        result is stochastic, the convention used throughout the library.
        """
        exits = self.exit_rates()
        n = self.num_states
        inv = np.zeros(n)
        positive = exits > 0.0
        inv[positive] = 1.0 / exits[positive]
        scaling = sp.diags(inv)
        p = sp.csr_matrix(scaling @ self.rates)
        if not positive.all():
            absorbing = np.where(~positive)[0]
            loops = sp.csr_matrix(
                (np.ones(len(absorbing)), (absorbing, absorbing)), shape=(n, n)
            )
            p = sp.csr_matrix(p + loops)
        return p

    def restricted_to(self, states: Sequence[int]) -> "CTMC":
        """Sub-chain induced by ``states`` (transitions leaving the set are dropped).

        The first state of ``states`` becomes the initial state unless the
        original initial state is in the set.
        """
        index = {s: i for i, s in enumerate(states)}
        if self.initial in index:
            new_initial = index[self.initial]
        else:
            new_initial = 0
        sub = self.rates[np.ix_(list(states), list(states))]
        names = None
        if self.state_names is not None:
            names = [self.state_names[s] for s in states]
        return CTMC(rates=sp.csr_matrix(sub), initial=new_initial, state_names=names)

    def memory_bytes(self) -> int:
        """Approximate size of the sparse representation in bytes."""
        return int(
            self.rates.data.nbytes + self.rates.indices.nbytes + self.rates.indptr.nbytes
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CTMC(states={self.num_states}, transitions={self.num_transitions}, "
            f"initial={self.initial})"
        )
