"""Time-bounded until for CTMCs.

The standard CSL reduction: for ``A U^{<=t} B``, states outside
``A + B`` are made absorbing (a path entering one has already violated
the formula and must not accumulate goal probability later), goal states
are made absorbing as usual, and a transient analysis of the modified
chain evaluated on ``B`` gives the answer.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np
import scipy.sparse as sp

from repro.ctmc.model import CTMC
from repro.ctmc.reachability import PreparedCTMCReachability, goal_mask as _mask
from repro.errors import ModelError
from repro.obs import NumericalCertificate

__all__ = ["timed_until", "timed_until_with_certificate"]


def timed_until_with_certificate(
    ctmc: CTMC,
    safe: Iterable[int] | np.ndarray,
    goal: Iterable[int] | np.ndarray,
    t: float,
    epsilon: float = 1e-10,
) -> tuple[np.ndarray, NumericalCertificate | None]:
    """Like :func:`timed_until`, also returning the solve's certificate."""
    n = ctmc.num_states
    goal_arr = goal if isinstance(goal, np.ndarray) and goal.dtype == bool else _mask(n, goal)
    safe_arr = safe if isinstance(safe, np.ndarray) and safe.dtype == bool else _mask(n, safe)
    if goal_arr.shape != (n,) or safe_arr.shape != (n,):
        raise ModelError("safe/goal masks must cover the state space")
    blocked = ~(safe_arr | goal_arr)

    # Make blocked states absorbing, then run plain timed reachability.
    rates = ctmc.rates.tolil(copy=True)
    for state in np.flatnonzero(blocked):
        rates.rows[state] = []
        rates.data[state] = []
    pruned = CTMC(rates=sp.csr_matrix(rates), initial=ctmc.initial)
    solver = PreparedCTMCReachability(pruned, goal_arr)
    values = solver.solve(t, epsilon=epsilon)
    values[blocked] = 0.0
    return values, solver.last_certificate


def timed_until(
    ctmc: CTMC,
    safe: Iterable[int] | np.ndarray,
    goal: Iterable[int] | np.ndarray,
    t: float,
    epsilon: float = 1e-10,
) -> np.ndarray:
    """Probability of ``safe U^{<=t} goal`` per state of a CTMC."""
    return timed_until_with_certificate(ctmc, safe, goal, t, epsilon=epsilon)[0]
