"""Time-bounded reachability in CTMCs.

This is the analysis previous studies of the fault-tolerant workstation
cluster performed (Haverkort et al. [13], PRISM [18]): the probability to
reach a set of goal states ``B`` within ``t`` time units.  Figure 4 of
the paper compares these CTMC probabilities against the worst-case CTMDP
probabilities; the present module regenerates the CTMC side.

The standard reduction applies: transitions leaving ``B`` are irrelevant
for the event "``B`` was visited by time ``t``", so ``B`` is made
absorbing and a transient analysis of the modified chain yields the
reachability probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np
import scipy.sparse as sp

from repro.ctmc.model import CTMC
from repro.ctmc.uniformization import uniformized_jump_matrix
from repro.errors import ModelError
from repro.numerics.foxglynn import fox_glynn
from repro.obs import NumericalCertificate, certificate_from_foxglynn

__all__ = [
    "PreparedCTMCReachability",
    "IntervalReachabilityResult",
    "timed_reachability",
    "timed_reachability_curve",
    "interval_reachability",
    "interval_reachability_analysis",
    "goal_mask",
]


def goal_mask(num_states: int, goal: Iterable[int]) -> np.ndarray:
    """Boolean mask over states from an iterable of goal-state indices."""
    mask = np.zeros(num_states, dtype=bool)
    for state in goal:
        if not 0 <= state < num_states:
            raise ModelError(f"goal state {state} out of range 0..{num_states - 1}")
        mask[state] = True
    return mask


def timed_reachability(
    ctmc: CTMC,
    goal: Iterable[int] | np.ndarray,
    t: float,
    epsilon: float = 1e-10,
    rate: float | None = None,
) -> np.ndarray:
    """Probability, per state, to reach ``goal`` within ``t`` time units.

    Implementation: make ``goal`` absorbing, uniformize, and accumulate
    the Poisson-weighted powers of the jump matrix applied backwards to
    the goal indicator.  This mirrors the structure of Algorithm 1 with
    the nondeterministic maximisation removed, which is convenient both
    for code reuse and for the CTMC-as-one-action-CTMDP cross checks in
    the test suite.

    Parameters
    ----------
    ctmc:
        Chain to analyse (need not be uniform).
    goal:
        Goal states, as indices or a boolean mask.
    t:
        Time bound.
    epsilon:
        Poisson truncation error.
    rate:
        Optional uniformization rate override (useful to force the same
        rate as a related CTMDP for comparison plots).

    Returns
    -------
    numpy.ndarray
        Vector ``v`` with ``v[s] = Pr(s |= diamond^{<=t} goal)``; goal
        states have probability one.
    """
    return PreparedCTMCReachability(ctmc, goal, rate=rate).solve(t, epsilon=epsilon)


class PreparedCTMCReachability:
    """Reusable setup for repeated CTMC timed-reachability solves.

    Making the goal absorbing and uniformizing the modified chain do not
    depend on the time bound; this class performs them once so a whole
    time sweep shares the setup.  :func:`timed_reachability` delegates
    here, keeping prepared and one-shot solves bitwise-identical.

    Each :meth:`solve` additionally issues a numerical-health
    certificate, readable as :attr:`last_certificate` (the return type
    stays a bare probability vector for backwards compatibility; the
    query engine picks the certificate up from here).
    """

    def __init__(
        self,
        ctmc: CTMC,
        goal: Iterable[int] | np.ndarray,
        rate: float | None = None,
    ) -> None:
        n = ctmc.num_states
        if isinstance(goal, np.ndarray) and goal.dtype == bool:
            mask = goal
        else:
            mask = goal_mask(n, goal)
        if mask.shape != (n,):
            raise ModelError(f"goal mask must have shape ({n},)")
        self.ctmc = ctmc
        self.mask = mask
        self.num_states = n
        self._ready = False
        self.last_certificate: NumericalCertificate | None = None
        if not mask.any():
            return

        # Make goal states absorbing: zero their rows before uniformizing.
        rates = ctmc.rates.tolil(copy=True)
        for state in np.where(mask)[0]:
            rates.rows[state] = []
            rates.data[state] = []
        absorbed = CTMC(rates=sp.csr_matrix(rates), initial=ctmc.initial)

        self.p, self.e = uniformized_jump_matrix(absorbed, rate)
        goal_vec = mask.astype(np.float64)
        self.p_goal = self.p @ goal_vec
        self._ready = True

    def solve(self, t: float, epsilon: float = 1e-10) -> np.ndarray:
        """Reachability probabilities for one time bound, per state."""
        if t < 0.0:
            raise ModelError("time bound must be non-negative")
        if t == 0.0 or not self._ready:
            self.last_certificate = NumericalCertificate.trivial(
                "ctmc.reachability", epsilon
            )
            return self.mask.astype(np.float64)

        mask = self.mask
        p = self.p
        fg = fox_glynn(self.e * t, epsilon)
        psi = fg.probabilities()

        # q accumulates, backwards over i = right..1, the probability to be
        # absorbed in B within the remaining jumps (cf. Algorithm 1 without
        # the max over transitions).
        q = np.zeros(self.num_states)
        p_goal = self.p_goal
        for i in range(fg.right, 0, -1):
            psi_i = psi[i - fg.left] if i >= fg.left else 0.0
            q_next = q
            q = psi_i * p_goal + p @ q_next
            # Goal states accumulate the remaining Poisson mass and are never
            # left (their rows in p are pure self-loops, but the explicit
            # update keeps the recursion exact also at i = right).
            q[mask] = psi_i + q_next[mask]
        q[mask] = 1.0
        residual = max(0.0, float(q.max()) - 1.0, -float(q.min()))
        self.last_certificate = certificate_from_foxglynn(
            fg, epsilon, "ctmc.reachability", sweep_residual=residual
        )
        return np.clip(q, 0.0, 1.0)


def timed_reachability_curve(
    ctmc: CTMC,
    goal: Iterable[int] | np.ndarray,
    time_points: Iterable[float],
    epsilon: float = 1e-10,
    rate: float | None = None,
    initial: int | None = None,
) -> np.ndarray:
    """Reachability probabilities from one state for many time bounds.

    Evaluating a whole curve (as needed for Figure 4) with one backward
    run per ``t`` repeats the expensive matrix-vector products; instead
    this routine makes ``goal`` absorbing, computes the *forward* jump
    mass series ``m_k = (pi0 P^k) 1_goal`` once up to the largest
    truncation point, and then evaluates every time bound as the
    Poisson-weighted sum ``sum_k psi(k; E t) m_k``.

    Returns one probability per entry of ``time_points``.
    """
    ts = [float(t) for t in time_points]
    if any(t < 0.0 for t in ts):
        raise ModelError("time bounds must be non-negative")
    n = ctmc.num_states
    if isinstance(goal, np.ndarray) and goal.dtype == bool:
        mask = goal
    else:
        mask = goal_mask(n, goal)
    start = ctmc.initial if initial is None else initial
    if mask[start]:
        return np.ones(len(ts))
    if not mask.any() or not ts:
        return np.zeros(len(ts))

    rates = ctmc.rates.tolil(copy=True)
    for state in np.where(mask)[0]:
        rates.rows[state] = []
        rates.data[state] = []
    absorbed = CTMC(rates=sp.csr_matrix(rates), initial=start)
    p, e = uniformized_jump_matrix(absorbed, rate)

    horizon = fox_glynn(e * max(ts), epsilon).right
    masses = np.empty(horizon + 1)
    vec = np.zeros(n)
    vec[start] = 1.0
    goal_vec = mask.astype(np.float64)
    for k in range(horizon + 1):
        masses[k] = float(vec @ goal_vec)
        if k < horizon:
            vec = vec @ p

    results = np.empty(len(ts))
    for j, t in enumerate(ts):
        if t == 0.0:
            results[j] = 0.0
            continue
        fg = fox_glynn(e * t, epsilon)
        psi = fg.probabilities()
        upper = min(fg.right, horizon)
        window = masses[fg.left : upper + 1]
        results[j] = float(np.dot(psi[: len(window)], window))
    return np.clip(results, 0.0, 1.0)


@dataclass(frozen=True)
class IntervalReachabilityResult:
    """Interval-bounded reachability value plus a composed certificate."""

    value: float
    certificate: NumericalCertificate


def interval_reachability(
    ctmc: CTMC,
    goal: Iterable[int] | np.ndarray,
    t_start: float,
    t_end: float,
    epsilon: float = 1e-10,
    initial: int | None = None,
) -> float:
    """Probability to visit ``goal`` within the window ``[t_start, t_end]``.

    Kept for callers that only want the bare probability; delegates to
    :func:`interval_reachability_analysis` so both paths are
    bitwise-identical.
    """
    return interval_reachability_analysis(
        ctmc, goal, t_start, t_end, epsilon=epsilon, initial=initial
    ).value


def interval_reachability_analysis(
    ctmc: CTMC,
    goal: Iterable[int] | np.ndarray,
    t_start: float,
    t_end: float,
    epsilon: float = 1e-10,
    initial: int | None = None,
) -> IntervalReachabilityResult:
    """Certified probability to visit ``goal`` within ``[t_start, t_end]``.

    The CSL path formula ``F[t1,t2] goal``: visits before ``t_start`` do
    not count (the chain may pass through the goal early and leave
    again).  Standard decomposition: evolve the *unmodified* chain to
    ``t_start``, then ask for reachability within the remaining
    ``t_end - t_start`` from wherever the chain is.

    The answer composes two Poisson-truncated analyses, so its
    certificate composes theirs (algorithm
    ``"ctmc.interval_reachability"``): with transient error ``a`` in
    total variation and reachability sup error ``b``,

        |pi~ . v~  -  pi . v|  <=  a + b + a * b

    since ``pi~ . v~ = (pi + da)(v + db)`` with ``|da|_1 <= a``,
    ``|db|_inf <= b`` and ``|v|_inf <= 1``.  The window/iteration and
    round-off accounting fields are the sums of the components', and
    the admissible budget doubles (each stage was granted ``epsilon``).

    Returns the probability from ``initial`` (default: the chain's
    initial state).
    """
    if t_start < 0.0 or t_end < t_start:
        raise ModelError("need 0 <= t_start <= t_end")
    from repro.ctmc.uniformization import transient_analysis

    n = ctmc.num_states
    if isinstance(goal, np.ndarray) and goal.dtype == bool:
        mask = goal
    else:
        mask = goal_mask(n, goal)
    start = ctmc.initial if initial is None else initial
    pi0 = np.zeros(n)
    pi0[start] = 1.0
    transient = transient_analysis(
        ctmc, t_start, initial_distribution=pi0, epsilon=epsilon
    )
    solver = PreparedCTMCReachability(ctmc, mask)
    from_each_state = solver.solve(t_end - t_start, epsilon=epsilon)
    reach_certificate = solver.last_certificate
    assert reach_certificate is not None
    value = float(np.clip(transient.distribution @ from_each_state, 0.0, 1.0))
    a = transient.certificate
    b = reach_certificate
    certificate = NumericalCertificate(
        algorithm="ctmc.interval_reachability",
        lam=a.lam + b.lam,
        epsilon=2.0 * float(epsilon),
        left=min(a.left, b.left),
        right=a.right + b.right,
        dropped_mass=a.dropped_mass + b.dropped_mass,
        weight_sum_deficit=a.weight_sum_deficit + b.weight_sum_deficit,
        underflow_count=a.underflow_count + b.underflow_count,
        overflow_count=a.overflow_count + b.overflow_count,
        sweep_residual=a.sweep_residual + b.sweep_residual,
        fp_slack=a.fp_slack + b.fp_slack,
        error_bound=a.error_bound + b.error_bound + a.error_bound * b.error_bound,
    )
    return IntervalReachabilityResult(value=value, certificate=certificate)
