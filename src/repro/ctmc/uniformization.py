"""Jensen's uniformization and transient analysis of CTMCs.

Uniformization [Jensen 1953] is the workhorse the whole paper revolves
around: a non-uniform CTMC is turned into a uniform one by choosing a
rate ``E`` at least as large as every exit rate and topping states up
with self-loops, without affecting state probabilities.  The number of
state changes within ``t`` time units in the uniformized chain is Poisson
distributed with parameter ``E * t``, which reduces transient analysis to
a Poisson-weighted sum of powers of the (discrete) jump matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.ctmc.model import CTMC
from repro.errors import ModelError
from repro.numerics.foxglynn import fox_glynn
from repro.obs import (
    NumericalCertificate,
    certificate_from_foxglynn,
    iterative_certificate,
)

__all__ = [
    "uniformize",
    "uniformized_jump_matrix",
    "TransientResult",
    "transient_analysis",
    "transient_distribution",
    "SteadyStateResult",
    "steady_state_analysis",
    "steady_state_distribution",
]


def uniformize(ctmc: CTMC, rate: float | None = None) -> CTMC:
    """Return a uniform version of ``ctmc`` with uniform rate ``rate``.

    Every state whose exit rate falls short of ``rate`` receives an
    additional self-loop making up the difference, exactly as described
    in Section 2 of the paper ("a twist on the CTMC level").  The
    probabilistic behaviour in terms of state probabilities is unchanged.

    Parameters
    ----------
    ctmc:
        The chain to uniformize.
    rate:
        The uniformization rate ``E``.  Defaults to the maximal exit rate
        of the chain.  Must be at least the maximal exit rate and
        strictly positive.
    """
    exits = ctmc.exit_rates()
    max_exit = float(exits.max()) if len(exits) else 0.0
    if rate is None:
        rate = max_exit
    if rate <= 0.0:
        raise ModelError("uniformization rate must be strictly positive")
    if rate < max_exit - 1e-12 * max(1.0, max_exit):
        raise ModelError(
            f"uniformization rate {rate} is below the maximal exit rate {max_exit}"
        )
    deficit = rate - exits
    deficit[np.abs(deficit) < 1e-15 * max(1.0, rate)] = 0.0
    n = ctmc.num_states
    loops = sp.csr_matrix((deficit, (np.arange(n), np.arange(n))), shape=(n, n))
    return CTMC(
        rates=sp.csr_matrix(ctmc.rates + loops),
        initial=ctmc.initial,
        state_names=list(ctmc.state_names) if ctmc.state_names else None,
    )


def uniformized_jump_matrix(ctmc: CTMC, rate: float | None = None) -> tuple[sp.csr_matrix, float]:
    """Return ``(P, E)`` with ``P = R / E`` row-stochastic.

    ``P`` is the jump matrix of the uniformized chain: ``P[s, s']`` is the
    probability that the next Poisson event moves the chain from ``s`` to
    ``s'`` (self-loops included).
    """
    uniform = uniformize(ctmc, rate)
    e = uniform.uniform_rate(tol=1e-7)
    p = sp.csr_matrix(uniform.rates / e)
    return p, e


@dataclass(frozen=True)
class TransientResult:
    """Transient distribution plus its numerical-health certificate."""

    distribution: np.ndarray
    certificate: NumericalCertificate


def transient_analysis(
    ctmc: CTMC,
    t: float,
    initial_distribution: np.ndarray | None = None,
    epsilon: float = 1e-10,
    rate: float | None = None,
) -> TransientResult:
    """Transient state distribution ``pi(t)`` via uniformization.

    Computes ``pi(t) = sum_n psi(n; E t) pi(0) P^n`` with Fox-Glynn
    truncation of the Poisson series, and certifies the truncation and
    floating-point error of the run (the sweep residual is the mass
    deficit ``|1 - sum pi(t)|`` plus any negative excursion).

    Parameters
    ----------
    ctmc:
        The chain to analyse (need not be uniform).
    t:
        Time horizon, ``t >= 0``.
    initial_distribution:
        Row vector ``pi(0)``; defaults to the point mass on
        ``ctmc.initial``.
    epsilon:
        Truncation error bound for the Poisson series.
    rate:
        Optional uniformization rate override.
    """
    if t < 0.0:
        raise ModelError("time horizon must be non-negative")
    n = ctmc.num_states
    if initial_distribution is None:
        pi0 = np.zeros(n)
        pi0[ctmc.initial] = 1.0
    else:
        pi0 = np.asarray(initial_distribution, dtype=np.float64)
        if pi0.shape != (n,):
            raise ModelError(f"initial distribution must have shape ({n},)")
        if abs(pi0.sum() - 1.0) > 1e-9 or (pi0 < -1e-12).any():
            raise ModelError("initial distribution must be a probability vector")
    if t == 0.0:
        return TransientResult(
            distribution=pi0.copy(),
            certificate=NumericalCertificate.trivial("ctmc.transient", epsilon),
        )

    p, e = uniformized_jump_matrix(ctmc, rate)
    fg = fox_glynn(e * t, epsilon)
    probs = fg.probabilities()

    result = np.zeros(n)
    vec = pi0
    for step in range(fg.right + 1):
        if step >= fg.left:
            result += probs[step - fg.left] * vec
        if step < fg.right:
            vec = vec @ p
    residual = max(abs(1.0 - float(result.sum())), -float(result.min()), 0.0)
    certificate = certificate_from_foxglynn(
        fg, epsilon, "ctmc.transient", sweep_residual=residual
    )
    return TransientResult(distribution=result, certificate=certificate)


def transient_distribution(
    ctmc: CTMC,
    t: float,
    initial_distribution: np.ndarray | None = None,
    epsilon: float = 1e-10,
    rate: float | None = None,
) -> np.ndarray:
    """Transient state distribution ``pi(t)``; see :func:`transient_analysis`.

    Kept for callers that only want the bare vector; delegates to
    :func:`transient_analysis` so both paths are bitwise-identical.
    """
    return transient_analysis(
        ctmc, t, initial_distribution=initial_distribution, epsilon=epsilon, rate=rate
    ).distribution


@dataclass(frozen=True)
class SteadyStateResult:
    """Steady-state distribution plus its numerical-health certificate."""

    distribution: np.ndarray
    certificate: NumericalCertificate


def steady_state_analysis(ctmc: CTMC, tolerance: float = 1e-9) -> SteadyStateResult:
    """Long-run distribution of an irreducible CTMC, certified.

    Solves ``pi Q = 0`` with ``sum(pi) = 1`` where ``Q`` is the generator
    implied by the rate matrix (self-loops cancel in ``Q`` and therefore
    do not affect the result).  The certificate (algorithm
    ``"ctmc.steady_state"``, via :func:`repro.obs.iterative_certificate`)
    measures the *a-posteriori* defect of the returned vector: the
    balance residual ``||pi Q||_inf`` plus the negativity clipped away,
    with the pre-normalisation mass defect as the deficit term; it is
    healthy iff that residual stays within ``tolerance``.

    Raises
    ------
    ModelError
        If the chain is reducible (the linear system is singular beyond
        the expected rank deficiency of one).
    """
    n = ctmc.num_states
    dense = ctmc.rates.toarray()
    np.fill_diagonal(dense, 0.0)
    q = dense - np.diag(dense.sum(axis=1))
    # Replace one balance equation by the normalisation constraint.
    a = np.vstack([q.T[:-1], np.ones(n)])
    b = np.zeros(n)
    b[-1] = 1.0
    solution, _lstsq_residual, rank, _ = np.linalg.lstsq(a, b, rcond=None)
    if rank < n:
        raise ModelError("steady-state distribution requires an irreducible chain")
    clipped_negativity = max(0.0, -float(solution.min()))
    mass_defect = abs(1.0 - float(solution.sum()))
    pi = np.clip(solution, 0.0, None)
    total = pi.sum()
    if total <= 0.0:
        raise ModelError("steady-state solve produced a degenerate distribution")
    pi = pi / total
    balance = float(np.max(np.abs(pi @ q))) if n else 0.0
    certificate = iterative_certificate(
        "ctmc.steady_state",
        epsilon=tolerance,
        residual=balance + clipped_negativity,
        iterations=n,
        deficit=mass_defect,
    )
    return SteadyStateResult(distribution=pi, certificate=certificate)


def steady_state_distribution(ctmc: CTMC) -> np.ndarray:
    """Long-run distribution of an irreducible CTMC.

    Kept for callers that only want the bare vector; delegates to
    :func:`steady_state_analysis` so both paths are bitwise-identical.
    """
    return steady_state_analysis(ctmc).distribution
