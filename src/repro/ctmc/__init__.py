"""Continuous-time Markov chains: model, uniformization, analysis, phase-types."""

from repro.ctmc.hitting import expected_hitting_time
from repro.ctmc.model import CTMC
from repro.ctmc.phase_type import PhaseType
from repro.ctmc.reachability import (
    IntervalReachabilityResult,
    goal_mask,
    interval_reachability,
    interval_reachability_analysis,
    timed_reachability,
    timed_reachability_curve,
)
from repro.ctmc.until import timed_until
from repro.ctmc.uniformization import (
    steady_state_distribution,
    transient_distribution,
    uniformize,
    uniformized_jump_matrix,
)

__all__ = [
    "CTMC",
    "expected_hitting_time",
    "PhaseType",
    "goal_mask",
    "IntervalReachabilityResult",
    "interval_reachability",
    "interval_reachability_analysis",
    "timed_reachability",
    "timed_reachability_curve",
    "timed_until",
    "steady_state_distribution",
    "transient_distribution",
    "uniformize",
    "uniformized_jump_matrix",
]
