"""Span-based tracing with near-zero overhead when disabled.

A :class:`Tracer` records a tree of *spans*: named, attributed sections
of work with wall-clock time, CPU time and (optionally) allocation
deltas.  The pipeline is instrumented at its phase boundaries --
registry resolution, solver preparation, Fox-Glynn, the backward
iteration of Algorithm 1, bisimulation minimisation, the uIMC-to-uCTMDP
transformation -- via the module-level :func:`span` helper::

    with span("registry.build", family="ftwc") as sp:
        ...
        if sp is not None:
            sp.annotate(states=model.num_states)

When no tracer is active (the default), :func:`span` returns a shared
null context manager: the cost of an instrumented boundary is one
global read and one ``None`` check, which keeps the hot path within the
overhead budget enforced by ``benchmarks/test_bench_obs.py``.  A tracer
is activated for a lexical scope with :func:`tracing`::

    with tracing() as tracer:
        timed_reachability(model, goal, 100.0)
    tracer.render_tree()      # indented phase breakdown
    tracer.write_jsonl(path)  # one span per line, for external tooling

Per-*step* instrumentation inside the backward iteration does not
create one span per step (the FTWC horizons reach tens of thousands of
steps); instead the solver collects raw step durations only while a
tracer is active and attaches a summary histogram to the sweep's span
(see :func:`summarize_durations`).
"""

from __future__ import annotations

import json
import time
import tracemalloc
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Any, ContextManager, Iterator

__all__ = [
    "Span",
    "Tracer",
    "tracing",
    "current_tracer",
    "span",
    "summarize_durations",
]


@dataclass
class Span:
    """One recorded section of work.

    Attributes
    ----------
    name:
        Phase name, dot-qualified by subsystem (``"registry.build"``).
    index:
        Position in the tracer's span list (start order).
    parent:
        Index of the enclosing span, or ``None`` for roots.
    depth:
        Nesting depth (roots are 0).
    attributes:
        Free-form annotations (sizes, parameters, histograms).
    started_at:
        Wall-clock offset from the tracer's activation, in seconds.
    wall_seconds / cpu_seconds:
        Durations; CPU time is process-wide (``time.process_time``).
    alloc_bytes:
        Net allocation delta over the span when the tracer tracks
        allocations, else ``None``.
    """

    name: str
    index: int
    parent: int | None
    depth: int
    attributes: dict[str, Any] = field(default_factory=dict)
    started_at: float = 0.0
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    alloc_bytes: int | None = None

    def annotate(self, **attributes: Any) -> None:
        """Attach (or overwrite) attributes on the span."""
        self.attributes.update(attributes)

    def as_dict(self) -> dict[str, Any]:
        """JSON-compatible record (the shape of one JSONL line)."""
        record: dict[str, Any] = {
            "name": self.name,
            "index": self.index,
            "parent": self.parent,
            "depth": self.depth,
            "started_at": self.started_at,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
        }
        if self.alloc_bytes is not None:
            record["alloc_bytes"] = self.alloc_bytes
        if self.attributes:
            record["attributes"] = _jsonable(self.attributes)
        return record


def _jsonable(value: Any) -> Any:
    """Coerce attribute values into JSON-serialisable shapes."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalars
        return value.item()
    return repr(value)


class Tracer:
    """Collects spans for one traced scope.

    Not thread-safe: one tracer belongs to one analysis thread, which
    matches how the engine runs (process-pool workers would each carry
    their own).
    """

    def __init__(self, track_allocations: bool = False) -> None:
        self.spans: list[Span] = []
        self.track_allocations = track_allocations
        self._stack: list[Span] = []
        self._origin = time.perf_counter()
        self._owns_tracemalloc = False
        if track_allocations and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._owns_tracemalloc = True

    def close(self) -> None:
        """Release resources (stops tracemalloc if this tracer started it)."""
        if self._owns_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._owns_tracemalloc = False

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Record a span around the body; yields the live span."""
        parent = self._stack[-1] if self._stack else None
        record = Span(
            name=name,
            index=len(self.spans),
            parent=parent.index if parent is not None else None,
            depth=len(self._stack),
            attributes=dict(attributes),
            started_at=time.perf_counter() - self._origin,
        )
        self.spans.append(record)
        self._stack.append(record)
        alloc_before = tracemalloc.get_traced_memory()[0] if self.track_allocations else 0
        cpu_before = time.process_time()
        wall_before = time.perf_counter()
        try:
            yield record
        finally:
            record.wall_seconds = time.perf_counter() - wall_before
            record.cpu_seconds = time.process_time() - cpu_before
            if self.track_allocations and tracemalloc.is_tracing():
                record.alloc_bytes = tracemalloc.get_traced_memory()[0] - alloc_before
            self._stack.pop()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def total_wall_seconds(self) -> float:
        """Summed wall time of the root spans."""
        return sum(s.wall_seconds for s in self.spans if s.parent is None)

    def children_of(self, index: int | None) -> list[Span]:
        """Spans directly nested under ``index`` (``None`` for roots)."""
        return [s for s in self.spans if s.parent == index]

    def self_seconds(self, span: Span) -> float:
        """Wall time of a span minus its direct children (own work)."""
        return span.wall_seconds - sum(c.wall_seconds for c in self.children_of(span.index))

    def aggregate(self) -> list[dict[str, Any]]:
        """Flame-style aggregation: totals per span name, sorted by self time.

        ``self_seconds`` is the time attributed to the phase itself
        (excluding instrumented sub-phases), which is the column a
        profile reader optimises against.
        """
        buckets: dict[str, dict[str, Any]] = {}
        for record in self.spans:
            bucket = buckets.setdefault(
                record.name,
                {"name": record.name, "count": 0, "wall_seconds": 0.0,
                 "self_seconds": 0.0, "cpu_seconds": 0.0, "alloc_bytes": 0},
            )
            bucket["count"] += 1
            bucket["wall_seconds"] += record.wall_seconds
            bucket["self_seconds"] += self.self_seconds(record)
            bucket["cpu_seconds"] += record.cpu_seconds
            if record.alloc_bytes is not None:
                bucket["alloc_bytes"] += record.alloc_bytes
        return sorted(buckets.values(), key=lambda b: b["self_seconds"], reverse=True)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def as_dicts(self) -> list[dict[str, Any]]:
        """All spans in start order, JSON-compatible."""
        return [record.as_dict() for record in self.spans]

    def write_jsonl(self, target: Any) -> None:
        """Write one span per line to a path or text stream."""
        if hasattr(target, "write"):
            for record in self.as_dicts():
                target.write(json.dumps(record) + "\n")
            return
        with open(target, "w", encoding="utf-8") as stream:
            self.write_jsonl(stream)

    def render_tree(self, total: float | None = None) -> str:
        """Indented text rendering of the span tree with timings."""
        total = total if total is not None else self.total_wall_seconds()
        lines = [
            f"{'span':<44}  {'wall':>10}  {'%':>6}  {'cpu':>10}  {'self':>10}"
        ]
        for record in self.spans:
            share = 100.0 * record.wall_seconds / total if total > 0.0 else 0.0
            label = "  " * record.depth + record.name
            extras = _render_attributes(record.attributes)
            if extras:
                label = f"{label} {extras}"
            lines.append(
                f"{label:<44}  {record.wall_seconds:>9.4f}s  {share:>5.1f}%  "
                f"{record.cpu_seconds:>9.4f}s  {self.self_seconds(record):>9.4f}s"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tracer({len(self.spans)} spans, {self.total_wall_seconds():.4f}s)"


_INLINE_ATTRIBUTES = ("t", "objective", "lam", "states", "n", "family", "source")


def _render_attributes(attributes: dict[str, Any]) -> str:
    parts = []
    for key in _INLINE_ATTRIBUTES:
        if key in attributes:
            value = attributes[key]
            if isinstance(value, float):
                parts.append(f"{key}={value:g}")
            else:
                parts.append(f"{key}={value}")
    return f"[{' '.join(parts)}]" if parts else ""


# ----------------------------------------------------------------------
# The active-tracer slot and the zero-overhead disabled path
# ----------------------------------------------------------------------
_ACTIVE: Tracer | None = None

#: Shared, re-enterable no-op context manager returned while tracing is
#: disabled; yields ``None`` so instrumentation sites can guard optional
#: annotation work with ``if sp is not None``.
_NULL_SPAN: ContextManager[None] = nullcontext(None)


def current_tracer() -> Tracer | None:
    """The tracer active in this process, or ``None``."""
    return _ACTIVE


def span(name: str, **attributes: Any) -> ContextManager[Span | None]:
    """A span on the active tracer, or the shared no-op when disabled."""
    tracer = _ACTIVE
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attributes)


@contextmanager
def tracing(track_allocations: bool = False) -> Iterator[Tracer]:
    """Activate a fresh :class:`Tracer` for the ``with`` body.

    Tracers do not nest: activating inside an active scope raises, which
    catches accidental double-instrumentation early.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a tracer is already active; tracing scopes do not nest")
    tracer = Tracer(track_allocations=track_allocations)
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = None
        tracer.close()


# ----------------------------------------------------------------------
# Step-duration summaries (per-sweep histograms)
# ----------------------------------------------------------------------
def summarize_durations(seconds: list[float]) -> dict[str, Any]:
    """Summary statistics + log-spaced histogram for per-step durations.

    Attached to the backward-iteration span instead of recording one
    span per step: the FTWC's 30000 h bound takes ~62k steps, and 62k
    span objects would distort the measurement they are meant to take.
    """
    if not seconds:
        return {"steps": 0}
    ordered = sorted(seconds)
    total = sum(ordered)
    n = len(ordered)

    def quantile(q: float) -> float:
        return ordered[min(n - 1, int(q * n))]

    # Log-spaced buckets from 1 microsecond up; everything faster lands
    # in the first bucket.
    buckets = [1e-6 * 4.0**k for k in range(8)]
    counts = [0] * (len(buckets) + 1)
    for value in ordered:
        for slot, edge in enumerate(buckets):
            if value <= edge:
                counts[slot] += 1
                break
        else:
            counts[-1] += 1
    histogram = {f"le_{edge:.0e}s": count for edge, count in zip(buckets, counts)}
    histogram["inf"] = counts[-1]
    return {
        "steps": n,
        "total_seconds": total,
        "min_seconds": ordered[0],
        "max_seconds": ordered[-1],
        "mean_seconds": total / n,
        "p50_seconds": quantile(0.50),
        "p90_seconds": quantile(0.90),
        "p99_seconds": quantile(0.99),
        "steps_per_second": n / total if total > 0.0 else float("inf"),
        "histogram": histogram,
    }
