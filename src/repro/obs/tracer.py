"""Span-based tracing with near-zero overhead when disabled.

A :class:`Tracer` records a tree of *spans*: named, attributed sections
of work with wall-clock time, CPU time and (optionally) allocation
deltas.  The pipeline is instrumented at its phase boundaries --
registry resolution, solver preparation, Fox-Glynn, the backward
iteration of Algorithm 1, bisimulation minimisation, the uIMC-to-uCTMDP
transformation -- via the module-level :func:`span` helper::

    with span("registry.build", family="ftwc") as sp:
        ...
        if sp is not None:
            sp.annotate(states=model.num_states)

When no tracer is active (the default), :func:`span` returns a shared
null context manager: the cost of an instrumented boundary is one
global read and one ``None`` check, which keeps the hot path within the
overhead budget enforced by ``benchmarks/test_bench_obs.py``.  A tracer
is activated for a lexical scope with :func:`tracing`::

    with tracing() as tracer:
        timed_reachability(model, goal, 100.0)
    tracer.render_tree()      # indented phase breakdown
    tracer.write_jsonl(path)  # one span per line, for external tooling

Traces span process boundaries: every tracer carries a ``trace_id`` and
every span a process-qualified ``span_id``, so spans recorded inside a
process-pool worker (under the *parent's* trace id) can be serialised
with the query result and re-attached to the parent tracer via
:meth:`Tracer.adopt` -- the ids stay stable across the hop.

Per-*step* instrumentation inside the backward iteration does not
create one span per step (the FTWC horizons reach tens of thousands of
steps); instead the solver collects raw step durations only while a
tracer is active and attaches a summary histogram to the sweep's span.
The shared pattern -- open a ``*.sweep`` span, time each step, attach
the :func:`summarize_durations` summary, close with an ``error`` status
if the sweep raises -- is packaged as :func:`sweep_span`, which the
reachability, until and value-iteration sweeps all use.
"""

from __future__ import annotations

import json
import os
import threading
import time
import tracemalloc
import uuid
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Any, ContextManager, Iterable, Iterator, Mapping

__all__ = [
    "Span",
    "StepRecorder",
    "Tracer",
    "tracing",
    "current_tracer",
    "reset_subprocess_tracer",
    "span",
    "sweep_span",
    "summarize_durations",
]


@dataclass
class Span:
    """One recorded section of work.

    Attributes
    ----------
    name:
        Phase name, dot-qualified by subsystem (``"registry.build"``).
    index:
        Position in the tracer's span list (start order).
    parent:
        Index of the enclosing span, or ``None`` for roots.
    depth:
        Nesting depth (roots are 0).
    attributes:
        Free-form annotations (sizes, parameters, histograms).
    started_at:
        Wall-clock offset from the tracer's activation, in seconds.
    wall_seconds / cpu_seconds:
        Durations; CPU time is process-wide (``time.process_time``).
    alloc_bytes:
        Net allocation delta over the span when the tracer tracks
        allocations, else ``None``.
    status:
        ``"ok"`` normally; ``"error"`` when the span body raised (the
        exception type and message land in the ``error`` attribute).
    span_id / parent_span_id:
        Stable identifiers of the form ``<trace_id>:<pid>:<index>``;
        they survive serialisation and cross-process adoption.
    """

    name: str
    index: int
    parent: int | None
    depth: int
    attributes: dict[str, Any] = field(default_factory=dict)
    started_at: float = 0.0
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    alloc_bytes: int | None = None
    status: str = "ok"
    span_id: str = ""
    parent_span_id: str | None = None

    def annotate(self, **attributes: Any) -> None:
        """Attach (or overwrite) attributes on the span."""
        self.attributes.update(attributes)

    def as_dict(self) -> dict[str, Any]:
        """JSON-compatible record (the shape of one JSONL line)."""
        record: dict[str, Any] = {
            "name": self.name,
            "index": self.index,
            "parent": self.parent,
            "depth": self.depth,
            "started_at": self.started_at,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "status": self.status,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
        }
        if self.alloc_bytes is not None:
            record["alloc_bytes"] = self.alloc_bytes
        if self.attributes:
            record["attributes"] = _jsonable(self.attributes)
        return record


def _jsonable(value: Any) -> Any:
    """Coerce attribute values into JSON-serialisable shapes."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalars
        return value.item()
    return repr(value)


class Tracer:
    """Collects spans for one traced scope.

    Not thread-safe: one tracer belongs to one analysis thread, which
    matches how the engine runs.  Process-pool workers each run their
    own tracer (under the parent's ``trace_id``) and the parent folds
    their serialised spans back in with :meth:`adopt`.
    """

    def __init__(self, track_allocations: bool = False, trace_id: str | None = None) -> None:
        self.spans: list[Span] = []
        self.track_allocations = track_allocations
        self.trace_id = trace_id if trace_id else uuid.uuid4().hex[:16]
        self._stack: list[Span] = []
        self._origin = time.perf_counter()
        #: Epoch timestamp of activation; lets :meth:`adopt` place spans
        #: from another process on this tracer's timeline.
        self.origin_epoch = time.time()
        self._owns_tracemalloc = False
        if track_allocations and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._owns_tracemalloc = True

    def close(self) -> None:
        """Release resources (stops tracemalloc if this tracer started it)."""
        if self._owns_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._owns_tracemalloc = False

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _span_id(self, index: int) -> str:
        return f"{self.trace_id}:{os.getpid():x}:{index}"

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Record a span around the body; yields the live span.

        The span is closed on every exit path: if the body raises, the
        span still receives its timings, its ``status`` flips to
        ``"error"`` and the exception is recorded in the ``error``
        attribute before propagating.
        """
        parent = self._stack[-1] if self._stack else None
        index = len(self.spans)
        record = Span(
            name=name,
            index=index,
            parent=parent.index if parent is not None else None,
            depth=len(self._stack),
            attributes=dict(attributes),
            started_at=time.perf_counter() - self._origin,
            span_id=self._span_id(index),
            parent_span_id=parent.span_id if parent is not None else None,
        )
        self.spans.append(record)
        self._stack.append(record)
        alloc_before = tracemalloc.get_traced_memory()[0] if self.track_allocations else 0
        cpu_before = time.process_time()
        wall_before = time.perf_counter()
        try:
            yield record
        except BaseException as exc:
            record.status = "error"
            record.attributes.setdefault("error", f"{type(exc).__name__}: {exc}")
            raise
        finally:
            record.wall_seconds = time.perf_counter() - wall_before
            record.cpu_seconds = time.process_time() - cpu_before
            if self.track_allocations and tracemalloc.is_tracing():
                record.alloc_bytes = tracemalloc.get_traced_memory()[0] - alloc_before
            self._stack.pop()

    def adopt(
        self,
        records: Iterable[Mapping[str, Any]],
        origin_epoch: float | None = None,
        attributes: Mapping[str, Any] | None = None,
    ) -> list[Span]:
        """Attach serialised spans from another process to this trace.

        ``records`` is the ``as_dicts()`` output of the remote tracer
        (typically a process-pool worker running under this tracer's
        ``trace_id``).  Span/parent *indices* are remapped into this
        tracer's span list while the stable ``span_id`` strings are
        kept verbatim, so JSONL exports reference the same ids the
        worker logged.  ``origin_epoch`` (the remote tracer's
        activation timestamp) aligns ``started_at`` offsets onto this
        tracer's timeline; ``attributes`` (e.g. the worker pid) are
        merged into every adopted span.
        """
        offset = 0.0
        if origin_epoch is not None:
            offset = origin_epoch - self.origin_epoch
        index_map: dict[int, int] = {}
        adopted: list[Span] = []
        for record in records:
            old_index = int(record["index"])
            new_index = len(self.spans)
            index_map[old_index] = new_index
            old_parent = record.get("parent")
            new_parent = index_map.get(old_parent) if old_parent is not None else None
            merged_attributes = dict(record.get("attributes") or {})
            if attributes:
                merged_attributes.update(attributes)
            span_record = Span(
                name=str(record["name"]),
                index=new_index,
                parent=new_parent,
                depth=int(record.get("depth", 0)),
                attributes=merged_attributes,
                started_at=float(record.get("started_at", 0.0)) + offset,
                wall_seconds=float(record.get("wall_seconds", 0.0)),
                cpu_seconds=float(record.get("cpu_seconds", 0.0)),
                alloc_bytes=record.get("alloc_bytes"),
                status=str(record.get("status", "ok")),
                span_id=str(record.get("span_id") or self._span_id(new_index)),
                parent_span_id=record.get("parent_span_id"),
            )
            self.spans.append(span_record)
            adopted.append(span_record)
        return adopted

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def total_wall_seconds(self) -> float:
        """Summed wall time of the root spans."""
        return sum(s.wall_seconds for s in self.spans if s.parent is None)

    def children_of(self, index: int | None) -> list[Span]:
        """Spans directly nested under ``index`` (``None`` for roots)."""
        return [s for s in self.spans if s.parent == index]

    def self_seconds(self, span: Span) -> float:
        """Wall time of a span minus its direct children (own work)."""
        return span.wall_seconds - sum(c.wall_seconds for c in self.children_of(span.index))

    def aggregate(self) -> list[dict[str, Any]]:
        """Flame-style aggregation: totals per span name, sorted by self time.

        ``self_seconds`` is the time attributed to the phase itself
        (excluding instrumented sub-phases), which is the column a
        profile reader optimises against.
        """
        buckets: dict[str, dict[str, Any]] = {}
        for record in self.spans:
            bucket = buckets.setdefault(
                record.name,
                {"name": record.name, "count": 0, "wall_seconds": 0.0,
                 "self_seconds": 0.0, "cpu_seconds": 0.0, "alloc_bytes": 0},
            )
            bucket["count"] += 1
            bucket["wall_seconds"] += record.wall_seconds
            bucket["self_seconds"] += self.self_seconds(record)
            bucket["cpu_seconds"] += record.cpu_seconds
            if record.alloc_bytes is not None:
                bucket["alloc_bytes"] += record.alloc_bytes
        return sorted(buckets.values(), key=lambda b: b["self_seconds"], reverse=True)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def as_dicts(self) -> list[dict[str, Any]]:
        """All spans in start order, JSON-compatible.

        Every record additionally carries the tracer's ``trace_id`` so
        a JSONL file mixing several traces stays separable.
        """
        records = []
        for record in self.spans:
            data = record.as_dict()
            data["trace_id"] = self.trace_id
            records.append(data)
        return records

    def write_jsonl(self, target: Any) -> None:
        """Write one span per line to a path or text stream."""
        if hasattr(target, "write"):
            for record in self.as_dicts():
                target.write(json.dumps(record) + "\n")
            return
        with open(target, "w", encoding="utf-8") as stream:
            self.write_jsonl(stream)

    def render_tree(self, total: float | None = None) -> str:
        """Indented text rendering of the span tree with timings."""
        total = total if total is not None else self.total_wall_seconds()
        lines = [
            f"{'span':<44}  {'wall':>10}  {'%':>6}  {'cpu':>10}  {'self':>10}"
        ]
        for record in self.spans:
            share = 100.0 * record.wall_seconds / total if total > 0.0 else 0.0
            label = "  " * record.depth + record.name
            extras = _render_attributes(record.attributes)
            if record.status != "ok":
                extras = f"!{record.status} {extras}".rstrip()
            if extras:
                label = f"{label} {extras}"
            lines.append(
                f"{label:<44}  {record.wall_seconds:>9.4f}s  {share:>5.1f}%  "
                f"{record.cpu_seconds:>9.4f}s  {self.self_seconds(record):>9.4f}s"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tracer({len(self.spans)} spans, {self.total_wall_seconds():.4f}s)"


_INLINE_ATTRIBUTES = ("t", "objective", "lam", "states", "n", "family", "source", "worker_pid")


def _render_attributes(attributes: dict[str, Any]) -> str:
    parts = []
    for key in _INLINE_ATTRIBUTES:
        if key in attributes:
            value = attributes[key]
            if isinstance(value, float):
                parts.append(f"{key}={value:g}")
            else:
                parts.append(f"{key}={value}")
    return f"[{' '.join(parts)}]" if parts else ""


# ----------------------------------------------------------------------
# The active-tracer slot and the zero-overhead disabled path
# ----------------------------------------------------------------------
#
# Thread affinity: a :class:`Tracer` is single-threaded by design --
# spans nest via a plain stack, so all ``span()`` scopes must open and
# close on the thread that activated the tracer.  Cross-thread
# telemetry goes through the *locked* sinks instead
# (:class:`~repro.obs.http.SpanLog`, :class:`~repro.obs.metrics.MetricStore`),
# and worker results re-enter the owning thread's tracer via
# :meth:`Tracer.adopt`.  The module global below is therefore exempt
# from the ``@guarded_by`` discipline checked by ``repro lint --self``:
# ``current_tracer()``/``span()`` perform a single reference read
# (atomic in CPython), while the activate/deactivate transitions in
# :func:`tracing` and :func:`reset_subprocess_tracer` -- the only
# check-then-set windows -- serialise on ``_ACTIVE_LOCK``.
_ACTIVE: Tracer | None = None

#: Serialises the activate/deactivate transitions of ``_ACTIVE``; never
#: held while user code runs, so it cannot participate in a lock-order
#: cycle with the monitored telemetry locks.
_ACTIVE_LOCK = threading.Lock()

#: Shared, re-enterable no-op context manager returned while tracing is
#: disabled; yields ``None`` so instrumentation sites can guard optional
#: annotation work with ``if sp is not None``.
_NULL_SPAN: ContextManager[None] = nullcontext(None)


def current_tracer() -> Tracer | None:
    """The tracer active in this process, or ``None``."""
    return _ACTIVE


def reset_subprocess_tracer() -> None:
    """Drop a tracer inherited across ``fork``.

    A forked process-pool worker starts with a *copy* of the parent's
    active tracer in the module global; spans appended to that copy
    would silently vanish when the worker exits.  Worker entry points
    call this first, then activate their own tracer whose spans are
    shipped back explicitly.
    """
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE = None


def span(name: str, **attributes: Any) -> ContextManager[Span | None]:
    """A span on the active tracer, or the shared no-op when disabled."""
    tracer = _ACTIVE
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attributes)


@contextmanager
def tracing(track_allocations: bool = False, trace_id: str | None = None) -> Iterator[Tracer]:
    """Activate a fresh :class:`Tracer` for the ``with`` body.

    Tracers do not nest: activating inside an active scope raises, which
    catches accidental double-instrumentation early.  ``trace_id`` pins
    the trace identifier -- process-pool workers pass the parent's id so
    the merged trace is one logical trace.

    The not-already-active check and the activation are one atomic step
    under ``_ACTIVE_LOCK``, so two threads racing into ``tracing()``
    cannot both pass the check and silently share (then doubly clear)
    the slot; the loser gets the same ``RuntimeError`` as a nested
    activation.  The activated tracer itself remains single-threaded --
    see the thread-affinity note above ``_ACTIVE``.
    """
    global _ACTIVE
    tracer = Tracer(track_allocations=track_allocations, trace_id=trace_id)
    with _ACTIVE_LOCK:
        if _ACTIVE is not None:
            raise RuntimeError("a tracer is already active; tracing scopes do not nest")
        _ACTIVE = tracer
    try:
        yield tracer
    finally:
        with _ACTIVE_LOCK:
            _ACTIVE = None
        tracer.close()


# ----------------------------------------------------------------------
# Shared sweep instrumentation (per-step histograms)
# ----------------------------------------------------------------------
class StepRecorder:
    """Collects per-step durations for one sweep.

    ``enabled`` is ``False`` when no tracer is active; the sweep loops
    guard their two ``perf_counter`` calls on it, which keeps the
    disabled path within the overhead budget::

        with sweep_span("until.sweep", t=t) as steps:
            for i in ...:
                t0 = perf_counter() if steps.enabled else 0.0
                ...
                if steps.enabled:
                    steps.record(perf_counter() - t0)
    """

    __slots__ = ("enabled", "seconds")

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled
        self.seconds: list[float] = []

    def record(self, seconds: float) -> None:
        self.seconds.append(seconds)


#: Shared disabled recorder handed out when no tracer is active.
_NULL_RECORDER = StepRecorder(False)


class _NullSweep:
    """Re-enterable no-op context yielding the shared disabled recorder."""

    __slots__ = ()

    def __enter__(self) -> StepRecorder:
        return _NULL_RECORDER

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SWEEP = _NullSweep()


@contextmanager
def _sweep_span_enabled(tracer: Tracer, name: str, attributes: dict[str, Any]) -> Iterator[StepRecorder]:
    with tracer.span(name, **attributes) as sp:
        recorder = StepRecorder(True)
        try:
            yield recorder
        finally:
            if recorder.seconds:
                sp.annotate(steps=summarize_durations(recorder.seconds))


def sweep_span(name: str, **attributes: Any) -> ContextManager[StepRecorder]:
    """Instrument one backward sweep: a span plus a per-step recorder.

    The single helper behind the ``reachability.sweep``, ``until.sweep``
    and ``vi.sweep`` instrumentation: it opens the span, hands the loop
    a :class:`StepRecorder`, attaches the :func:`summarize_durations`
    step summary on exit, and -- like every span -- closes with an
    ``error`` status when the sweep raises.  Disabled cost is one global
    read and a shared no-op context, exactly like :func:`span`.
    """
    tracer = _ACTIVE
    if tracer is None:
        return _NULL_SWEEP
    return _sweep_span_enabled(tracer, name, attributes)


# ----------------------------------------------------------------------
# Step-duration summaries (per-sweep histograms)
# ----------------------------------------------------------------------
def summarize_durations(seconds: list[float]) -> dict[str, Any]:
    """Summary statistics + log-spaced histogram for per-step durations.

    Attached to the backward-iteration span instead of recording one
    span per step: the FTWC's 30000 h bound takes ~62k steps, and 62k
    span objects would distort the measurement they are meant to take.
    """
    if not seconds:
        return {"steps": 0}
    ordered = sorted(seconds)
    total = sum(ordered)
    n = len(ordered)

    def quantile(q: float) -> float:
        return ordered[min(n - 1, int(q * n))]

    # Log-spaced buckets from 1 microsecond up; everything faster lands
    # in the first bucket.
    buckets = [1e-6 * 4.0**k for k in range(8)]
    counts = [0] * (len(buckets) + 1)
    for value in ordered:
        for slot, edge in enumerate(buckets):
            if value <= edge:
                counts[slot] += 1
                break
        else:
            counts[-1] += 1
    histogram = {f"le_{edge:.0e}s": count for edge, count in zip(buckets, counts)}
    histogram["inf"] = counts[-1]
    return {
        "steps": n,
        "total_seconds": total,
        "min_seconds": ordered[0],
        "max_seconds": ordered[-1],
        "mean_seconds": total / n,
        "p50_seconds": quantile(0.50),
        "p90_seconds": quantile(0.90),
        "p99_seconds": quantile(0.99),
        "steps_per_second": n / total if total > 0.0 else float("inf"),
        "histogram": histogram,
    }
