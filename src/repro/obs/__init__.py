"""``repro.obs``: span-based tracing, profiling and metric export.

The observability layer the ROADMAP's "fast as the hardware allows"
goal is measured against:

* :mod:`repro.obs.tracer` -- nested spans (wall/CPU time, allocation
  deltas) with a near-zero-cost disabled path; the pipeline's phase
  boundaries are instrumented through :func:`span`;
* :mod:`repro.obs.metrics` -- the counter/timer store the engine's
  ``EngineMetrics`` is built on;
* :mod:`repro.obs.export` -- JSONL trace export and the Prometheus
  text exposition served by ``repro serve``;
* :mod:`repro.obs.profile` -- ``repro profile``, a one-query run under
  tracing rendered as a phase-attributed breakdown (imported lazily by
  the CLI; not re-exported here to keep ``repro.obs`` import-light for
  the hot path).

See ``docs/observability.md`` for the span and metric glossary.
"""

from repro.obs.export import prometheus_exposition, read_jsonl
from repro.obs.metrics import MetricStore
from repro.obs.tracer import (
    Span,
    Tracer,
    current_tracer,
    span,
    summarize_durations,
    tracing,
)

__all__ = [
    "MetricStore",
    "Span",
    "Tracer",
    "current_tracer",
    "prometheus_exposition",
    "read_jsonl",
    "span",
    "summarize_durations",
    "tracing",
]
