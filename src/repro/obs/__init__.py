"""``repro.obs``: span-based tracing, profiling and metric export.

The observability layer the ROADMAP's "fast as the hardware allows"
goal is measured against:

* :mod:`repro.obs.tracer` -- nested spans (wall/CPU time, allocation
  deltas) with a near-zero-cost disabled path; the pipeline's phase
  boundaries are instrumented through :func:`span` and the backward
  sweeps through :func:`sweep_span`; worker spans merge back into the
  parent trace via :meth:`Tracer.adopt`;
* :mod:`repro.obs.metrics` -- the counter/timer/gauge/histogram store
  the engine's ``EngineMetrics`` is built on (thread-safe, mergeable
  across processes);
* :mod:`repro.obs.certificate` -- numerical-health certificates
  (Fox-Glynn truncation accounting, sweep residuals, certified error
  bounds) attached to every solver result;
* :mod:`repro.obs.export` -- JSONL trace export and the Prometheus
  text exposition served by ``repro serve`` and the HTTP endpoint;
* :mod:`repro.obs.http` -- the stdlib HTTP telemetry server
  (``/metrics``, ``/healthz``, ``/traces``); imported lazily by the
  CLI, not re-exported here;
* :mod:`repro.obs.profile` -- ``repro profile``, a one-query (or
  fanned-out batch) run under tracing rendered as a phase-attributed
  breakdown (imported lazily by the CLI; not re-exported here to keep
  ``repro.obs`` import-light for the hot path).

See ``docs/observability.md`` for the span and metric glossary.
"""

from repro.obs.certificate import (
    NumericalCertificate,
    certificate_from_foxglynn,
    health_summary,
    iterative_certificate,
    poisson_tail_mass,
    record_certificate,
)
from repro.obs.export import escape_label_value, prometheus_exposition, read_jsonl
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricStore
from repro.obs.tracer import (
    Span,
    StepRecorder,
    Tracer,
    current_tracer,
    reset_subprocess_tracer,
    span,
    summarize_durations,
    sweep_span,
    tracing,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Histogram",
    "MetricStore",
    "NumericalCertificate",
    "Span",
    "StepRecorder",
    "Tracer",
    "certificate_from_foxglynn",
    "current_tracer",
    "escape_label_value",
    "health_summary",
    "iterative_certificate",
    "poisson_tail_mass",
    "prometheus_exposition",
    "read_jsonl",
    "record_certificate",
    "reset_subprocess_tracer",
    "span",
    "summarize_durations",
    "sweep_span",
    "tracing",
]
