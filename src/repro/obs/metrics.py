"""Counters and accumulated wall-clock timers.

:class:`MetricStore` is the metric primitive the whole observability
layer sits on: a bag of named monotonic counters and accumulated
timers, mergeable across processes and serialisable as JSON or in the
Prometheus text exposition format (see :mod:`repro.obs.export`).  The
engine's :class:`~repro.engine.metrics.EngineMetrics` is this class
under its historical name; the counter/timer glossary the engine uses
lives in ``docs/observability.md``.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Iterator, Mapping

__all__ = ["MetricStore"]


class MetricStore:
    """A bag of named counters and accumulated wall-clock timers."""

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.timers: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def count(self, name: str, increment: int = 1) -> None:
        """Increment the counter ``name`` (created at zero on first use)."""
        self.counters[name] = self.counters.get(name, 0) + increment

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` onto the timer ``name``."""
        self.timers[name] = self.timers.get(name, 0.0) + seconds

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Context manager timing its body into ``name``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - started)

    def merge(self, other: "MetricStore | Mapping") -> None:
        """Fold another store (or its ``as_dict`` form) into this one.

        Used to aggregate the metrics of process-pool workers into the
        parent's collector.
        """
        if isinstance(other, MetricStore):
            counters, timers = other.counters, other.timers
        else:
            counters = other.get("counters", {})
            timers = other.get("timers", {})
        for name, value in counters.items():
            self.count(name, int(value))
        for name, value in timers.items():
            self.add_time(name, float(value))

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (zero if never incremented)."""
        return self.counters.get(name, 0)

    def seconds(self, name: str) -> float:
        """Accumulated seconds of timer ``name`` (zero if never used)."""
        return self.timers.get(name, 0.0)

    def as_dict(self) -> dict:
        """JSON-compatible snapshot ``{"counters": ..., "timers": ...}``."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "timers": {name: float(value) for name, value in sorted(self.timers.items())},
        }

    def dumps(self, indent: int | None = None) -> str:
        """The snapshot serialised as a JSON string."""
        return json.dumps(self.as_dict(), indent=indent)

    def prometheus(self, prefix: str = "repro_") -> str:
        """The store rendered in the Prometheus/OpenMetrics text format."""
        from repro.obs.export import prometheus_exposition

        return prometheus_exposition(self, prefix=prefix)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(counters={self.counters}, timers={self.timers})"
