"""Counters, timers, gauges and histograms.

:class:`MetricStore` is the metric primitive the whole observability
layer sits on: a bag of named monotonic counters, accumulated timers,
point-in-time gauges and fixed-bucket histograms, mergeable across
processes and serialisable as JSON or in the Prometheus text exposition
format (see :mod:`repro.obs.export`).  The engine's
:class:`~repro.engine.metrics.EngineMetrics` is this class under its
historical name; the counter/timer glossary the engine uses lives in
``docs/observability.md``.

The store is thread-safe: every mutation takes an internal lock, so the
HTTP telemetry server (:mod:`repro.obs.http`) can render a consistent
snapshot while solver threads keep recording.
"""

from __future__ import annotations

import json
import math
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from repro.tsan.registry import guarded_by, holds_lock
from repro.tsan.runtime import monitored_lock

__all__ = ["DEFAULT_BUCKETS", "Histogram", "MetricStore"]

#: Default histogram bucket upper bounds (seconds or dimensionless),
#: log-spaced to cover both certificate error bounds (~1e-12 .. 1e-3)
#: and request/scrape latencies (~1e-4 .. 10 s).
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-12, 1e-10, 1e-8, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)


@dataclass
class Histogram:
    """A fixed-bucket cumulative histogram (Prometheus semantics).

    ``bounds`` are the finite bucket upper bounds; an implicit ``+Inf``
    bucket catches everything beyond the last bound.  ``counts[i]`` is
    the number of observations ``<= bounds[i]`` (*non*-cumulative per
    slot here; the exposition layer accumulates), ``counts[-1]`` the
    overflow count.
    """

    bounds: tuple[float, ...] = DEFAULT_BUCKETS
    counts: list[int] = field(default_factory=list)
    sum: float = 0.0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)
        if len(self.counts) != len(self.bounds) + 1:
            raise ValueError("histogram counts must have len(bounds) + 1 slots")

    @property
    def count(self) -> int:
        """Total number of observations."""
        return sum(self.counts)

    def observe(self, value: float) -> None:
        """Record one observation."""
        for slot, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[slot] += 1
                break
        else:
            self.counts[-1] += 1
        self.sum += float(value)

    def merge(self, other: "Histogram | Mapping") -> None:
        """Fold another histogram (same bounds) into this one."""
        if not isinstance(other, Histogram):
            other = Histogram(
                bounds=tuple(other.get("bounds", DEFAULT_BUCKETS)),
                counts=list(other.get("counts", [])),
                sum=float(other.get("sum", 0.0)),
            )
        if tuple(other.bounds) != tuple(self.bounds):
            raise ValueError("cannot merge histograms with different bucket bounds")
        for slot, count in enumerate(other.counts):
            self.counts[slot] += int(count)
        self.sum += other.sum

    def as_dict(self) -> dict:
        return {"bounds": list(self.bounds), "counts": list(self.counts),
                "sum": self.sum, "count": self.count}


@guarded_by("_lock", "counters", "timers", "gauges", "histograms", "infos")
class MetricStore:
    """A thread-safe bag of counters, timers, gauges and histograms."""

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.timers: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}
        self.infos: dict[str, dict[str, str]] = {}
        self._lock = monitored_lock(f"{type(self).__name__}._lock")

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def count(self, name: str, increment: int = 1) -> None:
        """Increment the counter ``name`` (created at zero on first use)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + increment

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` onto the timer ``name``."""
        with self._lock:
            self.timers[name] = self.timers.get(name, 0.0) + seconds

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins).

        Names ending in ``_max`` / ``_min`` carry running-extremum
        semantics: setting them keeps the larger / smaller of the old
        and new value, and cross-process merges do the same.  This is
        how ``certificate_error_bound_max`` stays meaningful when
        worker snapshots are folded into the parent store.
        """
        with self._lock:
            self._set_gauge(name, float(value))

    @holds_lock("_lock")
    def _set_gauge(self, name: str, value: float) -> None:
        if name in self.gauges:
            if name.endswith("_max"):
                value = max(self.gauges[name], value)
            elif name.endswith("_min"):
                value = min(self.gauges[name], value)
        self.gauges[name] = value

    def observe(self, name: str, value: float,
                bounds: Sequence[float] | None = None) -> None:
        """Record ``value`` into the histogram ``name``.

        ``bounds`` fixes the bucket upper bounds on first use (the
        shared :data:`DEFAULT_BUCKETS` otherwise); later observations
        ignore the argument.
        """
        with self._lock:
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = Histogram(
                    bounds=tuple(bounds) if bounds is not None else DEFAULT_BUCKETS
                )
                self.histograms[name] = histogram
            histogram.observe(value)

    def set_info(self, name: str, **labels: str) -> None:
        """Attach an info metric: a constant-1 gauge carrying labels.

        Rendered as ``<prefix><name>{key="value", ...} 1`` -- the
        Prometheus idiom for build/version metadata.
        """
        with self._lock:
            self.infos[name] = {str(k): str(v) for k, v in labels.items()}

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Context manager timing its body into ``name``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - started)

    def merge(self, other: "MetricStore | Mapping") -> None:
        """Fold another store (or its ``as_dict`` form) into this one.

        Used to aggregate the metrics of process-pool workers into the
        parent's collector.  Counters, timers and histograms add;
        gauges take the incoming value (with the ``_max``/``_min``
        extremum rule of :meth:`gauge`); infos overwrite.
        """
        if isinstance(other, MetricStore):
            with other._lock:
                snapshot = other.as_dict_unlocked()
        else:
            snapshot = other
        counters = snapshot.get("counters", {})
        timers = snapshot.get("timers", {})
        gauges = snapshot.get("gauges", {})
        histograms = snapshot.get("histograms", {})
        infos = snapshot.get("infos", {})
        for name, value in counters.items():
            self.count(name, int(value))
        for name, value in timers.items():
            self.add_time(name, float(value))
        with self._lock:
            for name, value in gauges.items():
                self._set_gauge(name, float(value))
            for name, data in histograms.items():
                histogram = self.histograms.get(name)
                if histogram is None:
                    bounds = data["bounds"] if isinstance(data, Mapping) else data.bounds
                    histogram = Histogram(bounds=tuple(bounds))
                    self.histograms[name] = histogram
                histogram.merge(data)
            for name, labels in infos.items():
                self.infos[name] = dict(labels)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (zero if never incremented)."""
        with self._lock:
            return self.counters.get(name, 0)

    def seconds(self, name: str) -> float:
        """Accumulated seconds of timer ``name`` (zero if never used)."""
        with self._lock:
            return self.timers.get(name, 0.0)

    def gauge_value(self, name: str, default: float = math.nan) -> float:
        """Current value of gauge ``name`` (``default`` if never set)."""
        with self._lock:
            return self.gauges.get(name, default)

    @holds_lock("_lock")
    def as_dict_unlocked(self) -> dict:
        """The snapshot without taking the lock (callers must hold it)."""
        snapshot: dict = {
            "counters": dict(sorted(self.counters.items())),
            "timers": {name: float(value) for name, value in sorted(self.timers.items())},
        }
        if self.gauges:
            snapshot["gauges"] = {
                name: float(value) for name, value in sorted(self.gauges.items())
            }
        if self.histograms:
            snapshot["histograms"] = {
                name: histogram.as_dict()
                for name, histogram in sorted(self.histograms.items())
            }
        if self.infos:
            snapshot["infos"] = {
                name: dict(labels) for name, labels in sorted(self.infos.items())
            }
        return snapshot

    def as_dict(self) -> dict:
        """JSON-compatible snapshot.

        Always carries ``counters`` and ``timers``; ``gauges``,
        ``histograms`` and ``infos`` appear only when non-empty, which
        keeps the engine's historical batch-result shape stable.
        """
        with self._lock:
            return self.as_dict_unlocked()

    def dumps(self, indent: int | None = None) -> str:
        """The snapshot serialised as a JSON string."""
        return json.dumps(self.as_dict(), indent=indent)

    def prometheus(
        self, prefix: str = "repro_", labels: Mapping[str, str] | None = None
    ) -> str:
        """The store rendered in the Prometheus/OpenMetrics text format.

        ``labels`` attaches constant labels (e.g. an ``instance``
        identity) to every sample -- see
        :func:`repro.obs.export.prometheus_exposition`.
        """
        from repro.obs.export import prometheus_exposition

        return prometheus_exposition(self, prefix=prefix, labels=labels)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return (
                f"{type(self).__name__}"
                f"(counters={self.counters}, timers={self.timers})"
            )
