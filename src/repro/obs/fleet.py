"""Fleet telemetry: push-gateway state, federation scraping, roll-ups.

The single-process telemetry story (:mod:`repro.obs.http`) exposes one
:class:`~repro.obs.metrics.MetricStore` per server.  This module is the
*many processes* story:

* :class:`FleetStore` -- a thread-safe, per-``instance`` labeled
  multi-store.  Sources land in it two ways: **pushed** (a worker or
  batch run POSTs its snapshot to a gateway's ``/push``) or **scraped**
  (the aggregator polled the source's endpoints).  Each source carries
  a last-seen timestamp; sources that stop reporting are marked stale
  after a configurable window.  The store renders one federated
  Prometheus exposition (every sample labeled ``instance="..."`` plus
  the ``repro_fleet_source_up`` / ``repro_fleet_source_staleness_seconds``
  meta-series) and one rolled-up health verdict (degraded as soon as
  any source is degraded, down, or stale).
* :class:`FleetAggregator` -- a polling scraper over multiple
  telemetry servers: per-target timeout, bounded exponential backoff
  after failures, staleness marking.  Driven by ``repro obs-agg``.
* :class:`PushClient` / :func:`push_snapshot` -- the sending side,
  used by ``repro batch`` / ``repro serve`` and the engine's
  process-pool workers when ``--push-gateway`` (or the
  ``REPRO_PUSH_GATEWAY`` environment variable) is set.

Everything is standard library only; failures on the push path are
swallowed (and counted) so telemetry can never take a solve down.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.obs.certificate import health_summary
from repro.obs.export import escape_label_value, prometheus_federation
from repro.obs.metrics import MetricStore
from repro.tsan.registry import guarded_by, holds_lock
from repro.tsan.runtime import monitored_lock

__all__ = [
    "FleetAggregator",
    "FleetStore",
    "PushClient",
    "SourceState",
    "default_instance",
    "parse_target",
    "push_gateway_from_env",
    "push_snapshot",
]

#: Environment variable naming the default push-gateway URL.
PUSH_GATEWAY_ENV = "REPRO_PUSH_GATEWAY"

#: Largest accepted ``POST /push`` body (a defensive cap; real
#: snapshots are a few KiB).
MAX_PUSH_BYTES = 8 * 1024 * 1024


def default_instance() -> str:
    """The default source identity: ``<hostname>-<pid>``."""
    return f"{socket.gethostname()}-{os.getpid()}"


def push_gateway_from_env() -> str | None:
    """The ``REPRO_PUSH_GATEWAY`` URL, or ``None`` when unset/empty."""
    url = os.environ.get(PUSH_GATEWAY_ENV, "").strip()
    return url or None


@dataclass
class SourceState:
    """Everything the fleet knows about one instance."""

    instance: str
    snapshot: dict[str, Any] = field(default_factory=dict)
    health: dict[str, Any] = field(default_factory=dict)
    spans: list[dict[str, Any]] = field(default_factory=list)
    #: Wall-clock time of the last successful push/scrape.
    last_seen: float = 0.0
    #: True while the last contact attempt succeeded.
    up: bool = False
    mode: str = "push"
    pushes: int = 0
    scrapes: int = 0
    scrape_failures: int = 0
    consecutive_failures: int = 0
    last_error: str | None = None
    last_scrape_seconds: float | None = None

    def staleness(self, now: float) -> float:
        """Seconds since the source was last heard from."""
        if self.last_seen <= 0.0:
            return float("inf")
        return max(0.0, now - self.last_seen)

    def status(self, now: float, staleness_seconds: float) -> str:
        """``ok`` / ``degraded`` / ``down`` / ``stale`` for the roll-up."""
        if not self.up:
            return "down"
        if self.staleness(now) > staleness_seconds:
            return "stale"
        if self.health.get("status") not in (None, "ok"):
            return "degraded"
        return "ok"


@guarded_by("_lock", "_sources")
class FleetStore:
    """Thread-safe per-instance multi-store behind the fleet endpoints.

    ``staleness_seconds`` is the freshness window: a source whose last
    successful contact is older is marked stale (``repro_fleet_source_up``
    drops to 0 and the rolled-up health degrades).  ``trace_tail``
    bounds the spans retained per source.  ``_lock`` guards the source
    map *and* the :class:`SourceState` records inside it — states never
    leave the lock except as the return value of the ``record_*``
    methods, whose callers own the push/scrape that produced them.
    """

    def __init__(self, staleness_seconds: float = 10.0, trace_tail: int = 256) -> None:
        self.staleness_seconds = float(staleness_seconds)
        self.trace_tail = int(trace_tail)
        self._sources: dict[str, SourceState] = {}
        self._lock = monitored_lock("FleetStore._lock")

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    @holds_lock("_lock")
    def _state(self, instance: str) -> SourceState:
        state = self._sources.get(instance)
        if state is None:
            state = SourceState(instance=instance)
            self._sources[instance] = state
        return state

    def record_push(
        self,
        instance: str,
        snapshot: Mapping[str, Any],
        spans: Iterable[Mapping[str, Any]] | None = None,
        now: float | None = None,
    ) -> SourceState:
        """Fold one pushed snapshot in; the instance's latest push wins.

        A re-push under a known instance (a restarted worker) simply
        replaces the stored snapshot and refreshes ``last_seen`` -- the
        push-gateway semantics of "the fleet's current view of this
        source".
        """
        now = time.time() if now is None else now
        snapshot = dict(snapshot)
        health = _health_of_snapshot(snapshot)
        with self._lock:
            state = self._state(str(instance))
            state.snapshot = snapshot
            state.health = health
            if spans is not None:
                state.spans = [dict(record) for record in spans][-self.trace_tail:]
            state.last_seen = now
            state.up = True
            state.mode = "push"
            state.pushes += 1
            state.consecutive_failures = 0
            state.last_error = None
            return state

    def record_scrape(
        self,
        instance: str,
        snapshot: Mapping[str, Any],
        health: Mapping[str, Any] | None = None,
        spans: Iterable[Mapping[str, Any]] | None = None,
        scrape_seconds: float | None = None,
        now: float | None = None,
    ) -> SourceState:
        """Fold one successful scrape of a federation target in."""
        now = time.time() if now is None else now
        snapshot = dict(snapshot)
        with self._lock:
            state = self._state(str(instance))
            state.snapshot = snapshot
            state.health = (
                dict(health) if health is not None else _health_of_snapshot(snapshot)
            )
            if spans is not None:
                state.spans = [dict(record) for record in spans][-self.trace_tail:]
            state.last_seen = now
            state.up = True
            state.mode = "scrape"
            state.scrapes += 1
            state.consecutive_failures = 0
            state.last_error = None
            state.last_scrape_seconds = scrape_seconds
            return state

    def record_failure(
        self, instance: str, error: str, now: float | None = None
    ) -> SourceState:
        """Mark one failed contact attempt; the source goes down."""
        with self._lock:
            state = self._state(str(instance))
            state.up = False
            state.mode = "scrape"
            state.scrape_failures += 1
            state.consecutive_failures += 1
            state.last_error = str(error)
            return state

    def forget(self, instance: str) -> bool:
        """Drop a source entirely; True if it existed."""
        with self._lock:
            return self._sources.pop(str(instance), None) is not None

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def instances(self) -> list[str]:
        with self._lock:
            return sorted(self._sources)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sources)

    def failure_count(self, instance: str) -> int:
        """Consecutive failed contact attempts for ``instance`` (0 if unknown).

        The accessor the aggregator's backoff schedule reads -- callers
        must not reach into ``_sources`` themselves.
        """
        with self._lock:
            state = self._sources.get(str(instance))
            return state.consecutive_failures if state is not None else 0

    @holds_lock("_lock")
    def _sorted_states(self) -> list[SourceState]:
        return [self._sources[name] for name in sorted(self._sources)]

    def exposition(
        self,
        prefix: str = "repro_",
        now: float | None = None,
        local: tuple[str, Mapping[str, Any]] | None = None,
    ) -> str:
        """The federated Prometheus text exposition.

        Every source's samples carry ``instance="..."``; the fleet
        meta-series (`..._source_up`, `..._source_staleness_seconds`,
        push/scrape counts, last scrape latency) describe the fleet
        itself.  Sources currently down contribute their meta-series
        but keep their last snapshot visible -- a scraper can still see
        the final state of a dead worker while the ``up`` flag says not
        to trust its freshness.  ``local`` splices the serving
        process's own ``(instance, snapshot)`` ahead of the sources, so
        a gateway's own metrics share one exposition (and one set of
        family headers) with the fleet's.
        """
        now = time.time() if now is None else now
        with self._lock:
            states = self._sorted_states()
            snapshots = [(state.instance, dict(state.snapshot)) for state in states]
            if local is not None:
                snapshots.insert(0, (local[0], dict(local[1])))
            meta = [
                (
                    state.instance,
                    state.up and state.staleness(now) <= self.staleness_seconds,
                    state.staleness(now),
                    state.pushes,
                    state.scrapes,
                    state.scrape_failures,
                    state.last_scrape_seconds,
                )
                for state in states
            ]

        def _labeled(metric: str, instance: str, value: str) -> str:
            return f'{metric}{{instance="{escape_label_value(instance)}"}} {value}'

        up_metric = f"{prefix}fleet_source_up"
        stale_metric = f"{prefix}fleet_source_staleness_seconds"
        pushes_metric = f"{prefix}fleet_source_pushes_total"
        scrapes_metric = f"{prefix}fleet_source_scrapes_total"
        failures_metric = f"{prefix}fleet_source_scrape_failures_total"
        latency_metric = f"{prefix}fleet_last_scrape_seconds"
        extra: list[tuple[str, str, str, list[str]]] = [
            (
                f"{prefix}fleet_sources",
                "gauge",
                "Sources known to the fleet store.",
                [f"{prefix}fleet_sources {len(meta)}"],
            ),
            (
                up_metric,
                "gauge",
                "1 while the source's last contact succeeded and is fresh.",
                [
                    _labeled(up_metric, instance, "1" if fresh else "0")
                    for instance, fresh, *_rest in meta
                ],
            ),
            (
                stale_metric,
                "gauge",
                "Seconds since the source was last heard from.",
                [
                    _labeled(
                        stale_metric,
                        instance,
                        "+Inf" if staleness == float("inf") else repr(staleness),
                    )
                    for instance, _fresh, staleness, *_rest in meta
                ],
            ),
            (
                pushes_metric,
                "counter",
                "Snapshots this source pushed to the gateway.",
                [
                    _labeled(pushes_metric, instance, str(pushes))
                    for instance, _fresh, _stale, pushes, *_rest in meta
                ],
            ),
            (
                scrapes_metric,
                "counter",
                "Successful scrapes of this source.",
                [
                    _labeled(scrapes_metric, instance, str(scrapes))
                    for instance, _f, _s, _p, scrapes, *_rest in meta
                ],
            ),
            (
                failures_metric,
                "counter",
                "Failed scrape attempts against this source.",
                [
                    _labeled(failures_metric, instance, str(failures))
                    for instance, _f, _s, _p, _sc, failures, _lat in meta
                ],
            ),
            (
                latency_metric,
                "gauge",
                "Duration of the last successful scrape.",
                [
                    _labeled(latency_metric, instance, repr(float(latency)))
                    for instance, _f, _s, _p, _sc, _fail, latency in meta
                    if latency is not None
                ],
            ),
        ]
        return prometheus_federation(snapshots, prefix=prefix, extra_families=extra)

    def health(self, now: float | None = None) -> dict[str, Any]:
        """The rolled-up health verdict over every source.

        ``status`` is ``"ok"`` only while *every* source is up, fresh
        and healthy; one degraded, down or stale source degrades the
        fleet (the gateway's ``/healthz`` answers 503).  An empty fleet
        is healthy -- an idle gateway should not page anyone.
        """
        now = time.time() if now is None else now
        with self._lock:
            states = self._sorted_states()
            sources: dict[str, Any] = {}
            counts = {"ok": 0, "degraded": 0, "down": 0, "stale": 0}
            for state in states:
                status = state.status(now, self.staleness_seconds)
                counts[status] += 1
                staleness = state.staleness(now)
                sources[state.instance] = {
                    "status": status,
                    "mode": state.mode,
                    "up": state.up,
                    "staleness_seconds": (
                        None if staleness == float("inf") else staleness
                    ),
                    "last_error": state.last_error,
                    "health": dict(state.health),
                }
        healthy = counts["degraded"] == counts["down"] == counts["stale"] == 0
        status = "ok" if healthy else "degraded"
        return {
            "status": status,
            "fleet": {
                "sources": len(sources),
                "staleness_window_seconds": self.staleness_seconds,
                **counts,
            },
            "sources": sources,
        }

    def traces(self, limit: int | None = None) -> list[dict[str, Any]]:
        """Recent spans across the fleet, each tagged with its instance."""
        with self._lock:
            merged: list[dict[str, Any]] = []
            for state in self._sorted_states():
                for record in state.spans:
                    tagged = dict(record)
                    tagged["instance"] = state.instance
                    merged.append(tagged)
        if limit is not None and limit >= 0:
            merged = merged[max(0, len(merged) - limit):]
        return merged

    def as_dict(self, now: float | None = None) -> dict[str, Any]:
        """JSON summary of the fleet (used by tests and debugging)."""
        return self.health(now=now)


def _health_of_snapshot(snapshot: Mapping[str, Any]) -> dict[str, Any]:
    """Certificate health derived from a pushed metrics snapshot."""
    store = MetricStore()
    try:
        store.merge(snapshot)
    except (TypeError, ValueError, KeyError):
        return {"status": "degraded", "error": "unmergeable metrics snapshot"}
    return health_summary(store)


# ----------------------------------------------------------------------
# Push side
# ----------------------------------------------------------------------
class PushClient:
    """Sends metric snapshots (plus a trace tail) to a gateway.

    ``gateway`` is the server's base URL (``http://host:port``; a
    trailing ``/push`` is accepted and normalised away).  ``push``
    never raises on delivery problems -- it returns ``False`` and
    remembers the error, because telemetry must not take a solve down.
    """

    def __init__(
        self,
        gateway: str,
        instance: str | None = None,
        timeout: float = 2.0,
    ) -> None:
        base = gateway.strip().rstrip("/")
        if base.endswith("/push"):
            base = base[: -len("/push")]
        if not base.startswith(("http://", "https://")):
            base = "http://" + base
        self.url = base + "/push"
        self.instance = instance if instance else default_instance()
        self.timeout = float(timeout)
        self.pushes = 0
        self.failures = 0
        self.last_error: str | None = None

    def push(
        self,
        metrics: MetricStore | Mapping[str, Any],
        spans: Sequence[Mapping[str, Any]] | None = None,
    ) -> bool:
        """POST one snapshot; True on a 2xx acknowledgement."""
        snapshot = metrics.as_dict() if isinstance(metrics, MetricStore) else dict(metrics)
        payload: dict[str, Any] = {"instance": self.instance, "metrics": snapshot}
        if spans:
            payload["spans"] = [dict(record) for record in spans]
        body = json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            self.url, data=body, headers={"Content-Type": "application/json"}
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                ok = 200 <= response.status < 300
        except (urllib.error.URLError, OSError, ValueError) as exc:
            self.failures += 1
            self.last_error = str(exc)
            return False
        if ok:
            self.pushes += 1
            self.last_error = None
        else:  # pragma: no cover - urllib raises on non-2xx
            self.failures += 1
        return ok


def push_snapshot(
    gateway: str,
    metrics: MetricStore | Mapping[str, Any],
    instance: str | None = None,
    spans: Sequence[Mapping[str, Any]] | None = None,
    timeout: float = 2.0,
) -> bool:
    """One-shot :class:`PushClient` convenience wrapper."""
    return PushClient(gateway, instance=instance, timeout=timeout).push(
        metrics, spans=spans
    )


# ----------------------------------------------------------------------
# Scrape side
# ----------------------------------------------------------------------
def parse_target(spec: str) -> tuple[str, str]:
    """``(instance, base_url)`` from a ``--scrape`` operand.

    Accepts a bare URL (the instance defaults to ``host:port``) or an
    explicit ``name=URL`` binding.
    """
    spec = spec.strip()
    name = None
    if "=" in spec and not spec.split("=", 1)[0].startswith(("http://", "https://")):
        name, spec = spec.split("=", 1)
        name = name.strip()
        spec = spec.strip()
    if not spec:
        raise ValueError("scrape target needs a URL")
    if not spec.startswith(("http://", "https://")):
        spec = "http://" + spec
    base = spec.rstrip("/")
    if not name:
        from urllib.parse import urlsplit

        name = urlsplit(base).netloc
    if not name:
        raise ValueError(f"cannot derive an instance name from {spec!r}")
    return name, base


@dataclass
class _Target:
    instance: str
    base_url: str
    next_due: float = 0.0


class FleetAggregator:
    """Polls telemetry servers and folds them into a :class:`FleetStore`.

    Each cycle scrapes every due target: the JSON metrics snapshot
    (``GET /metrics?format=json``), the health verdict (``/healthz``)
    and a trace tail (``/traces?limit=N``), each under ``timeout``
    seconds.  A failing target is marked down immediately and retried
    with exponential backoff (doubling from ``interval`` up to
    ``backoff_max`` seconds) so a dead source cannot stall the loop;
    one success resets the schedule.  ``start`` runs the loop on a
    daemon thread; :meth:`scrape_once` is the synchronous core, used
    directly by tests.
    """

    def __init__(
        self,
        targets: Iterable[str | tuple[str, str]],
        store: FleetStore | None = None,
        interval: float = 2.0,
        timeout: float = 1.0,
        backoff_max: float = 30.0,
        trace_tail: int = 64,
    ) -> None:
        self.store = store if store is not None else FleetStore()
        self.interval = float(interval)
        self.timeout = float(timeout)
        self.backoff_max = float(backoff_max)
        self.trace_tail = int(trace_tail)
        self.targets: list[_Target] = []
        for target in targets:
            if isinstance(target, str):
                instance, base = parse_target(target)
            else:
                instance, base = target
            self.targets.append(_Target(instance=instance, base_url=base.rstrip("/")))
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # -- one target ----------------------------------------------------
    def _fetch_json(self, url: str) -> Any:
        try:
            with urllib.request.urlopen(url, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            # A 503 /healthz is a *successful* scrape of a degraded
            # source; its JSON body is the verdict.
            if exc.code == 503:
                try:
                    return json.loads(exc.read().decode("utf-8"))
                finally:
                    exc.close()
            raise

    def _fetch_traces(self, base_url: str) -> list[dict[str, Any]]:
        url = f"{base_url}/traces?limit={self.trace_tail}"
        with urllib.request.urlopen(url, timeout=self.timeout) as response:
            text = response.read().decode("utf-8")
        return [json.loads(line) for line in text.splitlines() if line.strip()]

    def scrape_target(self, target: _Target, now: float | None = None) -> bool:
        """Scrape one target into the store; True on success."""
        started = time.perf_counter()
        try:
            document = self._fetch_json(f"{target.base_url}/metrics?format=json")
            if not isinstance(document, dict) or not isinstance(
                document.get("metrics"), dict
            ):
                raise ValueError("malformed /metrics?format=json document")
            health = self._fetch_json(f"{target.base_url}/healthz")
            if not isinstance(health, dict):
                raise ValueError("malformed /healthz document")
            try:
                spans = self._fetch_traces(target.base_url)
            except (urllib.error.URLError, OSError, ValueError):
                spans = None  # traces are best-effort; metrics carry health
        except (urllib.error.URLError, OSError, ValueError, json.JSONDecodeError) as exc:
            self.store.record_failure(target.instance, str(exc), now=now)
            return False
        self.store.record_scrape(
            target.instance,
            document["metrics"],
            health=health,
            spans=spans,
            scrape_seconds=time.perf_counter() - started,
            now=now,
        )
        return True

    # -- the loop ------------------------------------------------------
    def scrape_once(self, force: bool = False, now: float | None = None) -> int:
        """Scrape every due target (all of them with ``force``).

        Returns the number of successful scrapes.  Failures reschedule
        the target with exponential backoff; successes return it to the
        regular interval.
        """
        clock = time.monotonic()
        successes = 0
        for target in self.targets:
            if not force and clock < target.next_due:
                continue
            if self.scrape_target(target, now=now):
                successes += 1
                target.next_due = clock + self.interval
            else:
                failures = self.store.failure_count(target.instance)
                delay = min(self.interval * (2.0 ** max(0, failures - 1)), self.backoff_max)
                target.next_due = clock + delay
        return successes

    def _loop(self) -> None:
        while not self._stop.is_set():
            self.scrape_once()
            due = min(
                (target.next_due for target in self.targets),
                default=time.monotonic() + self.interval,
            )
            delay = max(0.05, min(due - time.monotonic(), self.interval))
            self._stop.wait(delay)

    def start(self) -> "FleetAggregator":
        """Scrape on a daemon thread until :meth:`stop`."""
        if self._thread is not None:
            raise RuntimeError("aggregator already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-fleet-aggregator", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "FleetAggregator":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
