"""Trace and metric export: JSONL span dumps, Prometheus exposition.

Two consumers are served:

* **trace tooling** -- :meth:`~repro.obs.tracer.Tracer.write_jsonl`
  emits one span per line; :func:`read_jsonl` loads such a file back
  into plain dictionaries for analysis scripts;
* **scrapers** -- :func:`prometheus_exposition` renders a
  :class:`~repro.obs.metrics.MetricStore` (counters, timers, gauges,
  histograms, info metrics) in the Prometheus/OpenMetrics text format,
  answered by ``repro serve`` on a literal ``/metrics`` request line
  and by the HTTP telemetry server (:mod:`repro.obs.http`) on
  ``GET /metrics``.

Metric name mangling follows the Prometheus conventions: counters get
a ``_total`` suffix, timers become ``<name>_seconds_total`` (the stored
timer names already end in ``_seconds``), histograms expand into
``_bucket``/``_sum``/``_count`` sample families, and every character
outside ``[a-zA-Z0-9_]`` is replaced by ``_``.  Each family is
announced by ``# HELP`` and ``# TYPE`` lines, in that order, and label
values are escaped per the text-format grammar (backslash, double
quote, newline).
"""

from __future__ import annotations

import json
import math
import re
from typing import Any

from repro.obs.metrics import MetricStore

__all__ = ["escape_label_value", "prometheus_exposition", "read_jsonl"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")

#: Help strings for the metric families the engine records; families
#: outside the glossary get a generic description.
_HELP: dict[str, str] = {
    "queries_total": "Queries answered, including failed ones.",
    "queries_failed": "Queries that produced an error record.",
    "models_built": "Models constructed from scratch (cache misses).",
    "cache_hits_memory": "Registry lookups answered from memory.",
    "cache_hits_disk": "Registry lookups answered from the disk cache.",
    "cache_misses": "Registry lookups that had to build.",
    "disk_writes": "Models persisted to the on-disk cache.",
    "foxglynn": "Fox-Glynn truncation-point/weight computations.",
    "iterations": "Total backward value-iteration steps.",
    "sanitize_checks": "Model sanitizer passes run.",
    "certificates_total": "Numerical-health certificates issued.",
    "certificates_degraded": "Certificates whose health checks failed.",
    "certificate_underflows": "Poisson weights that underflowed to zero.",
    "certificate_overflows": "Non-finite Poisson weights observed.",
    "certificate_error_bound": "Per-result a-posteriori error bounds.",
    "certificate_last_error_bound": "Error bound of the most recent certificate.",
    "certificate_error_bound_max": "Largest error bound issued so far.",
    "certificate_dropped_mass": "Poisson mass outside the truncation window.",
    "http_requests": "HTTP telemetry requests served.",
}


def _metric_name(prefix: str, name: str) -> str:
    return _NAME_RE.sub("_", prefix + name)


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text-format grammar."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return repr(float(value)) if value != int(value) else str(int(value))


def _header(lines: list[str], metric: str, kind: str, base_name: str) -> None:
    help_text = _HELP.get(base_name, f"{kind} {base_name} recorded by repro.")
    lines.append(f"# HELP {metric} {help_text}")
    lines.append(f"# TYPE {metric} {kind}")


def prometheus_exposition(metrics: MetricStore, prefix: str = "repro_") -> str:
    """Render the store in the Prometheus text format.

    Counters are exposed as ``<prefix><name>_total`` with type
    ``counter``; accumulated timers as ``<prefix><name>_seconds_total``
    (both monotonically increasing over a server's lifetime); gauges
    keep their name; histograms expand into cumulative ``_bucket``
    samples (one per bound plus ``+Inf``) with ``_sum`` and ``_count``;
    info metrics render as a constant-1 gauge carrying their labels.
    The output terminates with the OpenMetrics ``# EOF`` marker so
    scrapers can detect truncation.
    """
    snapshot = metrics.as_dict()
    counters = snapshot.get("counters", {})
    timers = snapshot.get("timers", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    infos = snapshot.get("infos", {})

    lines: list[str] = []
    for name, value in counters.items():
        metric = _metric_name(prefix, name) + "_total"
        _header(lines, metric, "counter", name)
        lines.append(f"{metric} {_format_value(value)}")
    for name, value in timers.items():
        base = name[: -len("_seconds")] if name.endswith("_seconds") else name
        metric = _metric_name(prefix, base) + "_seconds_total"
        _header(lines, metric, "counter", name)
        lines.append(f"{metric} {_format_value(float(value))}")
    for name, value in gauges.items():
        metric = _metric_name(prefix, name)
        _header(lines, metric, "gauge", name)
        lines.append(f"{metric} {_format_value(float(value))}")
    for name, data in histograms.items():
        metric = _metric_name(prefix, name)
        _header(lines, metric, "histogram", name)
        cumulative = 0
        for bound, count in zip(data["bounds"], data["counts"]):
            cumulative += int(count)
            lines.append(f'{metric}_bucket{{le="{_format_value(float(bound))}"}} {cumulative}')
        cumulative += int(data["counts"][-1])
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {_format_value(float(data['sum']))}")
        lines.append(f"{metric}_count {cumulative}")
    for name, labels in infos.items():
        metric = _metric_name(prefix, name)
        _header(lines, metric, "gauge", name)
        rendered = ",".join(
            f'{_NAME_RE.sub("_", key)}="{escape_label_value(value)}"'
            for key, value in sorted(labels.items())
        )
        lines.append(f"{metric}{{{rendered}}} 1")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def read_jsonl(path: Any) -> list[dict[str, Any]]:
    """Load a JSONL span trace back into a list of dictionaries."""
    records = []
    with open(path, encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
