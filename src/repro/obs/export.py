"""Trace and metric export: JSONL span dumps, Prometheus exposition.

Two consumers are served:

* **trace tooling** -- :meth:`~repro.obs.tracer.Tracer.write_jsonl`
  emits one span per line; :func:`read_jsonl` loads such a file back
  into plain dictionaries for analysis scripts;
* **scrapers** -- :func:`prometheus_exposition` renders a
  :class:`~repro.obs.metrics.MetricStore` (counters and timers) in the
  Prometheus/OpenMetrics text format, which ``repro serve`` answers on
  a literal ``/metrics`` request line.

Metric name mangling follows the Prometheus conventions: counters get
a ``_total`` suffix, timers become ``<name>_seconds_total`` (the stored
timer names already end in ``_seconds``), and every character outside
``[a-zA-Z0-9_]`` is replaced by ``_``.
"""

from __future__ import annotations

import json
import re
from typing import Any

from repro.obs.metrics import MetricStore

__all__ = ["prometheus_exposition", "read_jsonl"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(prefix: str, name: str) -> str:
    return _NAME_RE.sub("_", prefix + name)


def prometheus_exposition(metrics: MetricStore, prefix: str = "repro_") -> str:
    """Render counters and timers in the Prometheus text format.

    Counters are exposed as ``<prefix><name>_total`` with type
    ``counter``; accumulated timers as ``<prefix><name>_seconds_total``
    (both are monotonically increasing over a server's lifetime).  The
    output terminates with the OpenMetrics ``# EOF`` marker so scrapers
    can detect truncation.
    """
    lines: list[str] = []
    for name, value in sorted(metrics.counters.items()):
        metric = _metric_name(prefix, name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, value in sorted(metrics.timers.items()):
        base = name[: -len("_seconds")] if name.endswith("_seconds") else name
        metric = _metric_name(prefix, base) + "_seconds_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {float(value)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def read_jsonl(path: Any) -> list[dict[str, Any]]:
    """Load a JSONL span trace back into a list of dictionaries."""
    records = []
    with open(path, encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
