"""Trace and metric export: JSONL span dumps, Prometheus exposition.

Two consumers are served:

* **trace tooling** -- :meth:`~repro.obs.tracer.Tracer.write_jsonl`
  emits one span per line; :func:`read_jsonl` loads such a file back
  into plain dictionaries for analysis scripts;
* **scrapers** -- :func:`prometheus_exposition` renders a
  :class:`~repro.obs.metrics.MetricStore` (counters, timers, gauges,
  histograms, info metrics) in the Prometheus/OpenMetrics text format,
  answered by ``repro serve`` on a literal ``/metrics`` request line
  and by the HTTP telemetry server (:mod:`repro.obs.http`) on
  ``GET /metrics``; :func:`prometheus_federation` renders *many*
  snapshots in one exposition, each sample carrying an
  ``instance="..."`` label, for the fleet aggregation layer
  (:mod:`repro.obs.fleet`).

Metric name mangling follows the Prometheus conventions: counters get
a ``_total`` suffix, timers become ``<name>_seconds_total`` (the stored
timer names already end in ``_seconds``), histograms expand into
``_bucket``/``_sum``/``_count`` sample families, and every character
outside ``[a-zA-Z0-9_]`` is replaced by ``_``.  Each family is
announced by ``# HELP`` and ``# TYPE`` lines, in that order and exactly
once even when several labeled instances contribute samples, and label
values are escaped per the text-format grammar (backslash, double
quote, newline).
"""

from __future__ import annotations

import json
import math
import re
from typing import Any, Iterable, Mapping, Sequence

from repro.obs.metrics import MetricStore

__all__ = [
    "escape_label_value",
    "prometheus_exposition",
    "prometheus_federation",
    "read_jsonl",
]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")

#: Help strings for the metric families the engine records; families
#: outside the glossary get a generic description.
_HELP: dict[str, str] = {
    "queries_total": "Queries answered, including failed ones.",
    "queries_failed": "Queries that produced an error record.",
    "models_built": "Models constructed from scratch (cache misses).",
    "cache_hits_memory": "Registry lookups answered from memory.",
    "cache_hits_disk": "Registry lookups answered from the disk cache.",
    "cache_misses": "Registry lookups that had to build.",
    "disk_writes": "Models persisted to the on-disk cache.",
    "foxglynn": "Fox-Glynn truncation-point/weight computations.",
    "iterations": "Total backward value-iteration steps.",
    "sanitize_checks": "Model sanitizer passes run.",
    "certificates_total": "Numerical-health certificates issued.",
    "certificates_degraded": "Certificates whose health checks failed.",
    "certificate_underflows": "Poisson weights that underflowed to zero.",
    "certificate_overflows": "Non-finite Poisson weights observed.",
    "certificate_error_bound": "Per-result a-posteriori error bounds.",
    "certificate_last_error_bound": "Error bound of the most recent certificate.",
    "certificate_error_bound_max": "Largest error bound issued so far.",
    "certificate_dropped_mass": "Poisson mass outside the truncation window.",
    "http_requests": "HTTP telemetry requests served.",
    "fleet_pushes": "Metric snapshots pushed to a fleet gateway.",
    "fleet_push_failures": "Snapshot pushes that failed.",
    "fleet_sources": "Sources known to the fleet store.",
    "fleet_source_up": "1 while the source's last contact succeeded and is fresh.",
    "fleet_source_staleness_seconds": "Seconds since the source was last heard from.",
    "fleet_source_pushes": "Snapshots this source pushed to the gateway.",
    "fleet_source_scrapes": "Successful scrapes of this source.",
    "fleet_source_scrape_failures": "Failed scrape attempts against this source.",
    "fleet_last_scrape_seconds": "Duration of the last successful scrape.",
}


def _metric_name(prefix: str, name: str) -> str:
    return _NAME_RE.sub("_", prefix + name)


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text-format grammar."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return repr(float(value)) if value != int(value) else str(int(value))


def _render_labels(labels: Mapping[str, str] | None, *extra: tuple[str, str]) -> str:
    """``{k="v",...}`` with sanitised names and escaped values (or ``""``).

    ``extra`` pairs (e.g. a histogram's ``le``) are appended after the
    sorted constant labels and are rendered verbatim (their values are
    already exposition-safe numbers).
    """
    parts = [
        f'{_NAME_RE.sub("_", key)}="{escape_label_value(str(value))}"'
        for key, value in sorted((labels or {}).items())
    ]
    parts.extend(f'{key}="{value}"' for key, value in extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


class _Families:
    """Accumulates sample lines per metric family, headers emitted once.

    The text-format grammar requires each family's ``# HELP`` and
    ``# TYPE`` to appear exactly once, before its samples -- so when
    several labeled instances contribute samples to the same family
    (the federation case), the samples must be grouped under a single
    header.  Families keep first-seen order.
    """

    def __init__(self) -> None:
        self._order: list[str] = []
        self._kinds: dict[str, tuple[str, str]] = {}
        self._samples: dict[str, list[str]] = {}

    def add(
        self, metric: str, kind: str, base_name: str, lines: Iterable[str],
        help_text: str | None = None,
    ) -> None:
        if metric not in self._kinds:
            self._order.append(metric)
            text = (
                help_text
                if help_text is not None
                else _HELP.get(base_name, f"{kind} {base_name} recorded by repro.")
            )
            self._kinds[metric] = (kind, text)
            self._samples[metric] = []
        self._samples[metric].extend(lines)

    def render(self) -> list[str]:
        lines: list[str] = []
        for metric in self._order:
            kind, help_text = self._kinds[metric]
            lines.append(f"# HELP {metric} {help_text}")
            lines.append(f"# TYPE {metric} {kind}")
            lines.extend(self._samples[metric])
        return lines


def _snapshot_families(
    families: _Families,
    snapshot: Mapping[str, Any],
    prefix: str,
    labels: Mapping[str, str] | None,
) -> None:
    """Fold one store snapshot (``MetricStore.as_dict``) into ``families``."""
    rendered_labels = _render_labels(labels)
    for name, value in snapshot.get("counters", {}).items():
        metric = _metric_name(prefix, name) + "_total"
        families.add(
            metric, "counter", name,
            [f"{metric}{rendered_labels} {_format_value(value)}"],
        )
    for name, value in snapshot.get("timers", {}).items():
        base = name[: -len("_seconds")] if name.endswith("_seconds") else name
        metric = _metric_name(prefix, base) + "_seconds_total"
        families.add(
            metric, "counter", name,
            [f"{metric}{rendered_labels} {_format_value(float(value))}"],
        )
    for name, value in snapshot.get("gauges", {}).items():
        metric = _metric_name(prefix, name)
        families.add(
            metric, "gauge", name,
            [f"{metric}{rendered_labels} {_format_value(float(value))}"],
        )
    for name, data in snapshot.get("histograms", {}).items():
        metric = _metric_name(prefix, name)
        lines = []
        cumulative = 0
        for bound, count in zip(data["bounds"], data["counts"]):
            cumulative += int(count)
            bucket = _render_labels(labels, ("le", _format_value(float(bound))))
            lines.append(f"{metric}_bucket{bucket} {cumulative}")
        cumulative += int(data["counts"][-1])
        bucket = _render_labels(labels, ("le", "+Inf"))
        lines.append(f"{metric}_bucket{bucket} {cumulative}")
        lines.append(f"{metric}_sum{rendered_labels} {_format_value(float(data['sum']))}")
        lines.append(f"{metric}_count{rendered_labels} {cumulative}")
        families.add(metric, "histogram", name, lines)
    for name, info_labels in snapshot.get("infos", {}).items():
        metric = _metric_name(prefix, name)
        # Constant labels (e.g. instance) win over colliding info keys.
        merged = {**info_labels, **(labels or {})}
        families.add(metric, "gauge", name, [f"{metric}{_render_labels(merged)} 1"])


def prometheus_exposition(
    metrics: MetricStore | Mapping[str, Any],
    prefix: str = "repro_",
    labels: Mapping[str, str] | None = None,
) -> str:
    """Render one store (or its snapshot) in the Prometheus text format.

    Counters are exposed as ``<prefix><name>_total`` with type
    ``counter``; accumulated timers as ``<prefix><name>_seconds_total``
    (both monotonically increasing over a server's lifetime); gauges
    keep their name; histograms expand into cumulative ``_bucket``
    samples (one per bound plus ``+Inf``) with ``_sum`` and ``_count``;
    info metrics render as a constant-1 gauge carrying their labels.
    ``labels`` attaches constant labels to every sample (the federation
    layer uses ``{"instance": ...}``).  The output terminates with the
    OpenMetrics ``# EOF`` marker so scrapers can detect truncation.
    """
    snapshot = metrics.as_dict() if isinstance(metrics, MetricStore) else metrics
    families = _Families()
    _snapshot_families(families, snapshot, prefix, labels)
    return "\n".join(families.render() + ["# EOF"]) + "\n"


def prometheus_federation(
    snapshots: Mapping[str, Mapping[str, Any]] | Sequence[tuple[str, Mapping[str, Any]]],
    prefix: str = "repro_",
    extra_families: Iterable[tuple[str, str, str, Iterable[str]]] | None = None,
) -> str:
    """Render many instance snapshots as one labeled exposition.

    ``snapshots`` maps instance identity to a ``MetricStore.as_dict``
    snapshot; every sample of instance ``i`` carries ``instance="i"``.
    Families shared between instances are announced (``# HELP`` /
    ``# TYPE``) exactly once, with all instances' samples grouped under
    the single header -- the text-format grammar forbids repeating
    headers.  ``extra_families`` appends synthetic families as
    ``(metric, kind, help, sample_lines)`` tuples; the fleet store uses
    this for ``repro_fleet_source_up`` and friends.
    """
    families = _Families()
    items = snapshots.items() if isinstance(snapshots, Mapping) else snapshots
    for instance, snapshot in items:
        _snapshot_families(families, snapshot, prefix, {"instance": str(instance)})
    for metric, kind, help_text, lines in extra_families or ():
        families.add(metric, kind, metric, lines, help_text=help_text)
    return "\n".join(families.render() + ["# EOF"]) + "\n"


def read_jsonl(path: Any) -> list[dict[str, Any]]:
    """Load a JSONL span trace back into a list of dictionaries."""
    records = []
    with open(path, encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
