"""Numerical-health certificates for Poisson-truncated analyses.

Algorithm 1 (and every uniformization-based transient analysis in this
repository) answers with an *approximation*: the infinite Poisson series
is truncated to the Fox-Glynn window ``[left, right]``, the retained
weights are renormalised, and the backward sweep accumulates ~10^2..10^5
floating-point matrix-vector products.  The a-priori analysis of Baier,
Haverkort, Hermanns and Katoen (TCS 345(1), 2005) bounds the truncation
error by the ``epsilon`` handed to Fox-Glynn -- but an operator serving
answers wants the *a-posteriori* account: how much Poisson mass was
actually dropped, whether any weight under- or overflowed, how far the
sweep drifted out of ``[0, 1]`` before clipping, and the error bound all
of that implies.

:class:`NumericalCertificate` is that machine-readable account.  One is
attached to every timed-reachability, until and transient result, is
folded into the engine's :class:`~repro.obs.metrics.MetricStore` as
gauges/histograms (:func:`record_certificate`), surfaced in ``repro
batch`` JSON output and ``repro check``, and drives the ``/healthz``
verdict of the HTTP telemetry server (:func:`health_summary`).

The certified bound decomposes as

    error_bound = 2 * dropped_mass + weight_sum_deficit
                  + sweep_residual + fp_slack

where ``dropped_mass`` is the *exact* Poisson mass outside the window
(not the a-priori ``epsilon``; the window finders over-cover, so this
is usually orders of magnitude smaller), the factor two covers both the
truncated tail (the computed value under-approximates) and the
renormalisation overshoot (retained weights are scaled up by
``1 / (1 - dropped_mass)``), ``weight_sum_deficit`` is the round-off
distance of the normalised weights from one, ``sweep_residual`` is the
largest out-of-``[0, 1]`` excursion the sweep produced before clipping,
and ``fp_slack`` charges a machine epsilon per retained Poisson index
for the accumulated matrix-vector round-off.  Tests validate the bound
against brute-force reference solutions on the FTWC family.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.numerics.foxglynn import FoxGlynn
    from repro.obs.metrics import MetricStore

__all__ = [
    "NumericalCertificate",
    "certificate_from_foxglynn",
    "health_summary",
    "iterative_certificate",
    "poisson_tail_mass",
    "record_certificate",
]

#: Per-retained-index machine-epsilon charge for the backward sweep's
#: accumulated round-off (each step is one sparse matvec plus a few
#: vector operations on values in ``[0, 1]``).
_FP_PER_STEP = 16.0 * float(np.finfo(np.float64).eps)


def poisson_tail_mass(lam: float, left: int, right: int) -> float:
    """Exact Poisson mass outside the window ``[left, right]``.

    Evaluated through the regularised incomplete gamma functions (via
    scipy), so it resolves tails far below the ``1 - cdf`` cancellation
    floor of ~1e-16.  This is the *actual* dropped mass, which the
    nearly-sharp small-``lam`` finder keeps well under the a-priori
    admissible ``epsilon``.
    """
    if lam <= 0.0:
        return 0.0
    from scipy.stats import poisson

    below = float(poisson.cdf(left - 1, lam)) if left > 0 else 0.0
    above = float(poisson.sf(right, lam))
    return max(0.0, below) + max(0.0, above)


@dataclass(frozen=True)
class NumericalCertificate:
    """Machine-readable numerical-health account of one solver result.

    Attributes
    ----------
    algorithm:
        Which analysis issued the certificate (``"ctmdp.reachability"``,
        ``"ctmdp.until"``, ``"ctmc.reachability"``, ``"ctmc.transient"``).
    lam:
        The Poisson parameter ``E * t`` of the truncated series.
    epsilon:
        The a-priori admissible truncation error handed to Fox-Glynn.
    left, right:
        The truncation window; ``right`` is also the sweep's iteration
        count (the paper's "# Iterations").
    dropped_mass:
        Exact Poisson mass outside ``[left, right]``.
    weight_sum_deficit:
        ``|1 - sum(normalised weights)|`` -- round-off in the weight
        normalisation.
    underflow_count / overflow_count:
        Stored Poisson weights that underflowed to zero / came out
        non-finite.  Overflows abort the solve upstream, so a non-zero
        overflow count always marks a degraded certificate.
    sweep_residual:
        Largest excursion of the final values outside ``[0, 1]`` before
        clipping (accumulated floating-point drift of the sweep).
    fp_slack:
        Machine-epsilon allowance for the sweep's accumulated round-off
        (``16 eps`` per retained Poisson index).
    error_bound:
        The certified a-posteriori bound (see module docstring); always
        at most ``epsilon`` plus floating-point noise when the solve is
        healthy.
    states_eliminated:
        States the qualitative precomputation removed from the sweep
        (clamped to their known value, or folded into the scalar goal
        recursion).  Zero when precomputation was off -- the answer is
        certified either way; this records how much work the graph
        analysis saved.
    """

    algorithm: str
    lam: float
    epsilon: float
    left: int
    right: int
    dropped_mass: float
    weight_sum_deficit: float
    underflow_count: int
    overflow_count: int
    sweep_residual: float
    fp_slack: float
    error_bound: float
    states_eliminated: int = 0

    @property
    def healthy(self) -> bool:
        """True iff every health predicate holds.

        Healthy means: no overflowed weights, the dropped mass stayed
        within the a-priori admissible ``epsilon``, and the certified
        bound is finite.
        """
        return (
            self.overflow_count == 0
            and self.dropped_mass <= self.epsilon
            and math.isfinite(self.error_bound)
        )

    @property
    def status(self) -> str:
        """``"ok"`` or ``"degraded"``."""
        return "ok" if self.healthy else "degraded"

    def as_dict(self) -> dict[str, Any]:
        """JSON-compatible record (the shape ``repro batch`` emits)."""
        return {
            "algorithm": self.algorithm,
            "lam": self.lam,
            "epsilon": self.epsilon,
            "left": self.left,
            "right": self.right,
            "dropped_mass": self.dropped_mass,
            "weight_sum_deficit": self.weight_sum_deficit,
            "underflow_count": self.underflow_count,
            "overflow_count": self.overflow_count,
            "sweep_residual": self.sweep_residual,
            "fp_slack": self.fp_slack,
            "error_bound": self.error_bound,
            "states_eliminated": self.states_eliminated,
            "status": self.status,
        }

    def describe(self) -> str:
        """One-line human rendering (used by ``repro check``)."""
        return (
            f"certificate[{self.algorithm}] lam={self.lam:g} "
            f"window=[{self.left},{self.right}] dropped={self.dropped_mass:.3e} "
            f"residual={self.sweep_residual:.3e} bound={self.error_bound:.3e} "
            f"status={self.status}"
        )

    @classmethod
    def trivial(cls, algorithm: str, epsilon: float) -> "NumericalCertificate":
        """The certificate of a trivially-answerable query.

        ``t = 0`` or an empty goal set: no Poisson series is truncated
        and no sweep runs, so the answer is exact.
        """
        return cls(
            algorithm=algorithm,
            lam=0.0,
            epsilon=epsilon,
            left=0,
            right=0,
            dropped_mass=0.0,
            weight_sum_deficit=0.0,
            underflow_count=0,
            overflow_count=0,
            sweep_residual=0.0,
            fp_slack=0.0,
            error_bound=0.0,
        )

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "NumericalCertificate":
        """Rebuild a certificate from its :meth:`as_dict` form."""
        return cls(
            algorithm=str(record["algorithm"]),
            lam=float(record["lam"]),
            epsilon=float(record["epsilon"]),
            left=int(record["left"]),
            right=int(record["right"]),
            dropped_mass=float(record["dropped_mass"]),
            weight_sum_deficit=float(record["weight_sum_deficit"]),
            underflow_count=int(record["underflow_count"]),
            overflow_count=int(record["overflow_count"]),
            sweep_residual=float(record["sweep_residual"]),
            fp_slack=float(record["fp_slack"]),
            error_bound=float(record["error_bound"]),
            # Absent in certificates stored before precomputation existed.
            states_eliminated=int(record.get("states_eliminated", 0)),
        )


def certificate_from_foxglynn(
    fg: "FoxGlynn",
    epsilon: float,
    algorithm: str,
    sweep_residual: float = 0.0,
    states_eliminated: int = 0,
) -> NumericalCertificate:
    """Issue a certificate for one Poisson-truncated solve.

    ``fg`` is the Fox-Glynn data the solve actually used;
    ``sweep_residual`` is the largest out-of-``[0, 1]`` excursion the
    sweep produced before clipping (``0.0`` for analyses that cannot
    drift, e.g. a plain transient distribution); ``states_eliminated``
    is the number of states the qualitative precomputation removed from
    the sweep.
    """
    weights = np.asarray(fg.weights, dtype=np.float64)
    overflow_count = int(np.count_nonzero(~np.isfinite(weights)))
    underflow_count = int(np.count_nonzero(weights == 0.0))
    dropped = poisson_tail_mass(fg.lam, fg.left, fg.right)
    if fg.total_weight > 0.0 and math.isfinite(fg.total_weight):
        deficit = abs(1.0 - float(weights.sum()) / fg.total_weight)
    else:  # pragma: no cover - the weighter raises before this
        deficit = math.inf
    fp_slack = _FP_PER_STEP * (fg.right - fg.left + 1)
    error_bound = 2.0 * dropped + deficit + sweep_residual + fp_slack
    return NumericalCertificate(
        algorithm=algorithm,
        lam=float(fg.lam),
        epsilon=float(epsilon),
        left=int(fg.left),
        right=int(fg.right),
        dropped_mass=dropped,
        weight_sum_deficit=deficit,
        underflow_count=underflow_count,
        overflow_count=overflow_count,
        sweep_residual=float(sweep_residual),
        fp_slack=fp_slack,
        error_bound=error_bound,
        states_eliminated=int(states_eliminated),
    )


def iterative_certificate(
    algorithm: str,
    epsilon: float,
    residual: float,
    iterations: int,
    deficit: float = 0.0,
    states_eliminated: int = 0,
) -> NumericalCertificate:
    """Issue a certificate for a solver with no Poisson truncation.

    Covers the direct/iterative solvers -- steady-state (``residual`` is
    the balance defect ``||pi Q||_inf`` plus clipped negativity),
    expected time (the scaled Bellman residual at the returned values)
    and the policy validator's induced-chain check.  The Poisson slots
    are repurposed, keeping the standard :attr:`NumericalCertificate.healthy`
    predicate meaningful:

    * ``lam = 0`` and ``left = 0`` (no series was truncated);
    * ``right`` records the iteration/dimension count (the paper's
      "# Iterations" analogue, also scaling ``fp_slack``);
    * ``dropped_mass`` carries the observed ``residual``, so ``healthy``
      reads "the residual stayed within the admissible ``epsilon``";
    * ``weight_sum_deficit`` carries ``deficit`` (e.g. the distance of
      an un-normalised distribution from total mass one).

    ``error_bound = residual + deficit + fp_slack`` -- the a-posteriori
    defect actually measured, not an a-priori truncation budget.
    """
    iterations = max(0, int(iterations))
    fp_slack = _FP_PER_STEP * max(1, iterations)
    finite = math.isfinite(residual) and math.isfinite(deficit)
    return NumericalCertificate(
        algorithm=algorithm,
        lam=0.0,
        epsilon=float(epsilon),
        left=0,
        right=iterations,
        dropped_mass=float(residual),
        weight_sum_deficit=float(deficit),
        underflow_count=0,
        overflow_count=0 if finite else 1,
        sweep_residual=float(residual),
        fp_slack=fp_slack,
        error_bound=float(residual) + float(deficit) + fp_slack,
        states_eliminated=int(states_eliminated),
    )


def record_certificate(metrics: "MetricStore", certificate: NumericalCertificate) -> None:
    """Export one certificate into a :class:`MetricStore`.

    Counters track volume and degradation, gauges keep the latest and
    worst bounds (``_max`` gauges merge by maximum across worker
    snapshots), and the histograms feed the ``/metrics`` exposition.
    """
    metrics.count("certificates_total")
    if not certificate.healthy:
        metrics.count("certificates_degraded")
    if certificate.underflow_count:
        metrics.count("certificate_underflows", certificate.underflow_count)
    if certificate.overflow_count:
        metrics.count("certificate_overflows", certificate.overflow_count)
    metrics.gauge("certificate_last_error_bound", certificate.error_bound)
    metrics.gauge("certificate_error_bound_max", certificate.error_bound)
    metrics.observe("certificate_error_bound", certificate.error_bound)
    metrics.observe("certificate_dropped_mass", certificate.dropped_mass)


def health_summary(metrics: "MetricStore") -> dict[str, Any]:
    """Certificate-derived health verdict (the ``/healthz`` payload).

    Derived entirely from the metric store so it stays correct across
    process-pool fan-out: worker certificates arrive through the
    ordinary metric merge.  With no certificates issued yet the status
    is ``"ok"`` (an idle server is healthy).
    """
    total = metrics.counter("certificates_total")
    degraded = metrics.counter("certificates_degraded")
    failed = metrics.counter("queries_failed")
    status = "ok" if degraded == 0 else "degraded"
    summary: dict[str, Any] = {
        "status": status,
        "certificates": {
            "total": total,
            "degraded": degraded,
            "underflows": metrics.counter("certificate_underflows"),
            "overflows": metrics.counter("certificate_overflows"),
        },
        "queries": {
            "total": metrics.counter("queries_total"),
            "failed": failed,
        },
    }
    last = metrics.gauge_value("certificate_last_error_bound")
    worst = metrics.gauge_value("certificate_error_bound_max")
    if not math.isnan(last):
        summary["certificates"]["last_error_bound"] = last
    if not math.isnan(worst):
        summary["certificates"]["max_error_bound"] = worst
    return summary
