"""Stdlib HTTP telemetry endpoint for the analysis engine.

A :class:`TelemetryServer` exposes the live observability state of a
running process over plain HTTP -- no third-party dependency, just
``http.server`` on a daemon thread:

``GET /metrics``
    The engine's :class:`~repro.obs.metrics.MetricStore` in Prometheus
    text exposition format (``text/plain; version=0.0.4``).
``GET /healthz``
    JSON health summary derived from the numerical-health certificates
    recorded in the store (:func:`repro.obs.certificate.health_summary`);
    ``200`` while every certificate is healthy, ``503`` once any solve
    was degraded.
``GET /traces``
    The most recent finished spans as newline-delimited JSON (the same
    records ``Tracer.as_dicts`` emits); ``?limit=N`` tails the last
    ``N``.

The server is started by ``repro serve --http-port`` alongside the
stdio request loop and standalone by ``repro obs-server``; both shut it
down gracefully (the listener thread is joined, the socket closed).

Reads are snapshots under the store's lock, so scraping a server that is
concurrently answering queries is safe.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Iterable, Mapping
from urllib.parse import parse_qs

from repro.obs.certificate import health_summary
from repro.obs.export import prometheus_exposition
from repro.obs.metrics import MetricStore

__all__ = ["PROMETHEUS_CONTENT_TYPE", "SpanLog", "TelemetryServer"]

#: Content type of the ``/metrics`` endpoint, per the Prometheus text
#: exposition format specification.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class SpanLog:
    """Thread-safe ring buffer of finished span records.

    Holds the most recent ``maxlen`` span dictionaries (the shape of
    ``Tracer.as_dicts``) for the ``/traces`` endpoint.  Bounded so a
    long-lived server cannot grow without limit.
    """

    def __init__(self, maxlen: int = 512) -> None:
        self._records: deque[dict[str, Any]] = deque(maxlen=maxlen)
        self._lock = threading.Lock()

    def extend(self, records: Iterable[Mapping[str, Any]]) -> None:
        """Append finished span records, oldest first."""
        with self._lock:
            self._records.extend(dict(record) for record in records)

    def tail(self, limit: int | None = None) -> list[dict[str, Any]]:
        """The last ``limit`` records (all of them when ``None``)."""
        with self._lock:
            records = list(self._records)
        if limit is not None and limit >= 0:
            records = records[len(records) - min(limit, len(records)):]
        return records

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


class _TelemetryHandler(BaseHTTPRequestHandler):
    """Request handler; routing for the three read-only endpoints."""

    server: "TelemetryServer"
    server_version = "repro-obs/1"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path, _, query = self.path.partition("?")
        if path == "/metrics":
            body = prometheus_exposition(self.server.metrics).encode("utf-8")
            self._reply(200, PROMETHEUS_CONTENT_TYPE, body)
        elif path == "/healthz":
            summary = health_summary(self.server.metrics)
            status = 200 if summary.get("status") == "ok" else 503
            body = (json.dumps(summary, indent=2) + "\n").encode("utf-8")
            self._reply(status, "application/json", body)
        elif path == "/traces":
            limit = _parse_limit(query)
            lines = [json.dumps(record) for record in self.server.span_log.tail(limit)]
            body = ("\n".join(lines) + "\n" if lines else "").encode("utf-8")
            self._reply(200, "application/x-ndjson", body)
        else:
            self._reply(404, "text/plain; charset=utf-8", b"not found\n")

    def _reply(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Silence per-request stderr logging; scrapes are frequent."""


def _parse_limit(query: str) -> int | None:
    values = parse_qs(query).get("limit")
    if not values:
        return None
    try:
        return max(0, int(values[0]))
    except ValueError:
        return None


class TelemetryServer(ThreadingHTTPServer):
    """HTTP telemetry listener over a metric store and a span log.

    Binds immediately on construction (``port=0`` picks a free port,
    readable as :attr:`port`); :meth:`start` spins up the daemon
    listener thread and :meth:`stop` shuts it down gracefully.  Usable
    as a context manager::

        with TelemetryServer(engine.metrics) as server:
            urllib.request.urlopen(f"{server.url}/metrics")
    """

    daemon_threads = True

    def __init__(
        self,
        metrics: MetricStore,
        host: str = "127.0.0.1",
        port: int = 0,
        span_log: SpanLog | None = None,
    ) -> None:
        self.metrics = metrics
        self.span_log = span_log if span_log is not None else SpanLog()
        self._thread: threading.Thread | None = None
        super().__init__((host, port), _TelemetryHandler)

    @property
    def port(self) -> int:
        """The bound TCP port (resolved after ``port=0``)."""
        return int(self.server_address[1])

    @property
    def url(self) -> str:
        """Base URL of the listener, e.g. ``http://127.0.0.1:8943``."""
        return f"http://{self.server_address[0]}:{self.port}"

    def start(self) -> "TelemetryServer":
        """Serve on a daemon thread; returns ``self`` for chaining."""
        if self._thread is not None:
            raise RuntimeError("telemetry server already started")
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-obs-http", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving, join the listener thread, close the socket."""
        if self._thread is not None:
            self.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self.server_close()

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
