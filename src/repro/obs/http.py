"""Stdlib HTTP telemetry endpoint for the analysis engine.

A :class:`TelemetryServer` exposes the live observability state of a
running process over plain HTTP -- no third-party dependency, just
``http.server`` on a daemon thread:

``GET /metrics``
    The engine's :class:`~repro.obs.metrics.MetricStore` in Prometheus
    text exposition format (``text/plain; version=0.0.4``).  With
    ``?format=json`` the raw JSON snapshot (plus the server's
    ``instance`` identity) is returned instead -- the representation
    the fleet aggregator scrapes, since JSON snapshots merge losslessly.
``GET /healthz``
    JSON health summary derived from the numerical-health certificates
    recorded in the store (:func:`repro.obs.certificate.health_summary`);
    ``200`` while every certificate is healthy, ``503`` once any solve
    was degraded.
``GET /traces``
    The most recent finished spans as newline-delimited JSON (the same
    records ``Tracer.as_dicts`` emits); ``?limit=N`` tails the last
    ``N``.
``POST /push``
    Only with a :class:`~repro.obs.fleet.FleetStore` attached (the
    *push-gateway mode* of ``repro obs-agg``): accepts a JSON document
    ``{"instance": ..., "metrics": <MetricStore.as_dict>, "spans":
    [...]}`` and folds it into the per-instance fleet state.  The
    ``instance`` identity is mandatory.

In fleet mode, ``/metrics`` renders the *federated* exposition (every
sample labeled ``instance="..."``, plus the local store under the
server's own instance label when it has recorded anything),
``/healthz`` rolls up local and per-source health (503 if any source
is degraded, down or stale), and ``/traces`` appends the fleet's
instance-tagged span tails after the local log.

Malformed query strings (non-numeric, negative or absurdly long
``limit`` values, unknown ``format`` selectors) are rejected with 400
rather than bubbling into a 500.

The server is started by ``repro serve --http-port`` alongside the
stdio request loop, standalone by ``repro obs-server``, and in fleet
mode by ``repro obs-agg``; all shut it down gracefully (the listener
thread is joined, the socket closed).

Reads are snapshots under the store's lock, so scraping a server that is
concurrently answering queries is safe.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Any, Iterable, Mapping
from urllib.parse import parse_qs

from repro.obs.certificate import health_summary
from repro.obs.export import prometheus_exposition
from repro.obs.metrics import MetricStore
from repro.tsan.registry import guarded_by
from repro.tsan.runtime import monitored_lock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.obs.fleet import FleetStore

__all__ = ["PROMETHEUS_CONTENT_TYPE", "SpanLog", "TelemetryServer"]

#: Content type of the ``/metrics`` endpoint, per the Prometheus text
#: exposition format specification.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: ``?limit=`` values longer than this are rejected outright -- no
#: legitimate tail needs a ten-digit limit, and parsing junk that long
#: is a waste.
_MAX_QUERY_VALUE_LENGTH = 9


@guarded_by("_lock", "_records")
class SpanLog:
    """Thread-safe ring buffer of finished span records.

    Holds the most recent ``maxlen`` span dictionaries (the shape of
    ``Tracer.as_dicts``) for the ``/traces`` endpoint.  Bounded so a
    long-lived server cannot grow without limit.
    """

    def __init__(self, maxlen: int = 512) -> None:
        self._records: deque[dict[str, Any]] = deque(maxlen=maxlen)
        self._lock = monitored_lock("SpanLog._lock")

    def extend(self, records: Iterable[Mapping[str, Any]]) -> None:
        """Append finished span records, oldest first."""
        with self._lock:
            self._records.extend(dict(record) for record in records)

    def tail(self, limit: int | None = None) -> list[dict[str, Any]]:
        """The last ``limit`` records (all of them when ``None``)."""
        with self._lock:
            records = list(self._records)
        if limit is not None and limit >= 0:
            records = records[len(records) - min(limit, len(records)):]
        return records

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


class _BadRequest(Exception):
    """A client error that should answer 400 with its message."""


def _parse_query(query: str) -> dict[str, str]:
    """The query string as a flat dict; junk values raise _BadRequest.

    Only the *parse* is validated here (single values, sane lengths);
    per-parameter semantics (``limit`` numeric, ``format`` known) are
    checked at the use sites via :func:`_query_limit` /
    :func:`_query_format`.
    """
    try:
        pairs = parse_qs(query, keep_blank_values=True, strict_parsing=False)
    except ValueError as exc:  # pragma: no cover - parse_qs is lenient
        raise _BadRequest(f"malformed query string: {exc}") from exc
    flat: dict[str, str] = {}
    for key, values in pairs.items():
        value = values[-1]
        if len(value) > _MAX_QUERY_VALUE_LENGTH:
            raise _BadRequest(
                f"query parameter {key!r} too long ({len(value)} chars)"
            )
        flat[key] = value
    return flat


def _query_limit(params: Mapping[str, str]) -> int | None:
    value = params.get("limit")
    if value is None:
        return None
    try:
        limit = int(value)
    except ValueError:
        raise _BadRequest(f"limit must be a non-negative integer, got {value!r}") from None
    if limit < 0:
        raise _BadRequest(f"limit must be non-negative, got {limit}")
    return limit


def _query_format(params: Mapping[str, str], *allowed: str) -> str | None:
    value = params.get("format")
    if value is None:
        return None
    if value not in allowed:
        raise _BadRequest(
            f"unknown format {value!r} (expected one of {sorted(allowed)})"
        )
    return value


class _TelemetryHandler(BaseHTTPRequestHandler):
    """Request handler; routing for the telemetry endpoints."""

    server: "TelemetryServer"
    server_version = "repro-obs/1"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path, _, query = self.path.partition("?")
        try:
            params = _parse_query(query)
            if path == "/metrics":
                self._get_metrics(params)
            elif path == "/healthz":
                self._get_healthz()
            elif path == "/traces":
                self._get_traces(params)
            else:
                self._reply(404, "text/plain; charset=utf-8", b"not found\n")
        except _BadRequest as exc:
            self._reply_json(400, {"error": str(exc)})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path, _, _query = self.path.partition("?")
        try:
            if path == "/push":
                self._post_push()
            else:
                self._reply(404, "text/plain; charset=utf-8", b"not found\n")
        except _BadRequest as exc:
            self._reply_json(400, {"error": str(exc)})

    # -- GET endpoints -------------------------------------------------
    def _get_metrics(self, params: Mapping[str, str]) -> None:
        format_ = _query_format(params, "json")
        fleet = self.server.fleet
        if format_ == "json":
            self._reply_json(
                200,
                {
                    "instance": self.server.instance,
                    "metrics": self.server.metrics.as_dict(),
                },
            )
            return
        if fleet is not None:
            local = self.server.metrics.as_dict()
            include_local = bool(
                local.get("counters") or local.get("timers") or local.get("gauges")
            )
            text = fleet.exposition(
                local=(self.server.instance, local) if include_local else None
            )
            body = text.encode("utf-8")
        else:
            body = prometheus_exposition(self.server.metrics).encode("utf-8")
        self._reply(200, PROMETHEUS_CONTENT_TYPE, body)

    def _get_healthz(self) -> None:
        summary = health_summary(self.server.metrics)
        fleet = self.server.fleet
        if fleet is not None:
            rollup = fleet.health()
            status = (
                "ok"
                if summary.get("status") == "ok" and rollup["status"] == "ok"
                else "degraded"
            )
            payload: dict[str, Any] = {
                "status": status,
                "local": summary,
                "fleet": rollup["fleet"],
                "sources": rollup["sources"],
            }
        else:
            payload = summary
            status = summary.get("status", "degraded")
        self._reply_json(200 if status == "ok" else 503, payload)

    def _get_traces(self, params: Mapping[str, str]) -> None:
        limit = _query_limit(params)
        records = self.server.span_log.tail(limit)
        if self.server.fleet is not None:
            records = records + self.server.fleet.traces(limit)
            if limit is not None:
                records = records[max(0, len(records) - limit):]
        lines = [json.dumps(record) for record in records]
        body = ("\n".join(lines) + "\n" if lines else "").encode("utf-8")
        self._reply(200, "application/x-ndjson", body)

    # -- POST /push ----------------------------------------------------
    def _post_push(self) -> None:
        from repro.obs.fleet import MAX_PUSH_BYTES

        fleet = self.server.fleet
        if fleet is None:
            self._reply(
                404,
                "text/plain; charset=utf-8",
                b"push gateway not enabled on this server\n",
            )
            return
        try:
            length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            raise _BadRequest("missing or non-numeric Content-Length") from None
        if length < 0 or length > MAX_PUSH_BYTES:
            self._reply_json(
                413, {"error": f"push body of {length} bytes exceeds the cap"}
            )
            return
        raw = self.rfile.read(length)
        try:
            document = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _BadRequest(f"push body is not valid JSON: {exc}") from None
        if not isinstance(document, dict):
            raise _BadRequest("push body must be a JSON object")
        instance = document.get("instance")
        if not isinstance(instance, str) or not instance.strip():
            raise _BadRequest("push requires a non-empty string 'instance'")
        metrics = document.get("metrics")
        if not isinstance(metrics, dict):
            raise _BadRequest("push requires a 'metrics' snapshot object")
        spans = document.get("spans")
        if spans is not None and not (
            isinstance(spans, list)
            and all(isinstance(record, dict) for record in spans)
        ):
            raise _BadRequest("'spans' must be a list of span objects")
        state = fleet.record_push(instance.strip(), metrics, spans=spans)
        self._reply_json(
            200, {"ok": True, "instance": state.instance, "pushes": state.pushes}
        )

    # -- plumbing ------------------------------------------------------
    def _reply(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply_json(self, status: int, payload: Mapping[str, Any]) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        self._reply(status, "application/json", body)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Silence per-request stderr logging; scrapes are frequent."""


@guarded_by("_lock", "_thread")
class TelemetryServer(ThreadingHTTPServer):
    """HTTP telemetry listener over a metric store and a span log.

    Binds immediately on construction (``port=0`` picks a free port,
    readable as :attr:`port`); :meth:`start` spins up the daemon
    listener thread and :meth:`stop` shuts it down gracefully.  Usable
    as a context manager::

        with TelemetryServer(engine.metrics) as server:
            urllib.request.urlopen(f"{server.url}/metrics")

    With a :class:`~repro.obs.fleet.FleetStore` attached the server
    additionally acts as push gateway and federation front-end (see the
    module docstring); ``instance`` names the local store in federated
    output and the ``/metrics?format=json`` snapshot.
    """

    daemon_threads = True

    def __init__(
        self,
        metrics: MetricStore,
        host: str = "127.0.0.1",
        port: int = 0,
        span_log: SpanLog | None = None,
        fleet: "FleetStore | None" = None,
        instance: str | None = None,
    ) -> None:
        self.metrics = metrics
        self.span_log = span_log if span_log is not None else SpanLog()
        self.fleet = fleet
        if instance is None:
            from repro.obs.fleet import default_instance

            instance = default_instance()
        self.instance = instance
        self._thread: threading.Thread | None = None
        self._lock = monitored_lock("TelemetryServer._lock")
        super().__init__((host, port), _TelemetryHandler)

    @property
    def port(self) -> int:
        """The bound TCP port (resolved after ``port=0``)."""
        return int(self.server_address[1])

    @property
    def url(self) -> str:
        """Base URL of the listener, e.g. ``http://127.0.0.1:8943``."""
        return f"http://{self.server_address[0]}:{self.port}"

    def start(self) -> "TelemetryServer":
        """Serve on a daemon thread; returns ``self`` for chaining."""
        with self._lock:
            if self._thread is not None:
                raise RuntimeError("telemetry server already started")
            self._thread = threading.Thread(
                target=self.serve_forever, name="repro-obs-http", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving, join the listener thread, close the socket.

        The listener handle is swapped out under the lock, but
        ``shutdown``/``join`` run outside it: ``shutdown`` blocks until
        ``serve_forever`` drains, and holding a lock across that wait
        is exactly the shape the sanitizer exists to flag.
        """
        with self._lock:
            thread = self._thread
            self._thread = None
        if thread is not None:
            self.shutdown()
            thread.join(timeout=5.0)
        self.server_close()

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
