"""``repro profile``: one traced query, rendered as a phase breakdown.

Runs a single timed-reachability query through the full pipeline --
model construction (for the compositional family including bisimulation
minimisation and the uIMC-to-uCTMDP transformation), solver
preparation, Fox-Glynn and the backward iteration -- under an active
:class:`~repro.obs.tracer.Tracer`, and renders the result as a
flame-style breakdown: the span tree with wall/CPU/self times, a
per-phase aggregation sorted by self time, and the per-step summary of
the value-iteration sweep.

This module imports the engine, so it is *not* re-exported from
:mod:`repro.obs` (the solvers import ``repro.obs`` for :func:`span`;
pulling the engine in from there would be a cycle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.obs.tracer import Tracer, tracing

__all__ = ["ProfileReport", "profile_query"]


@dataclass
class ProfileReport:
    """A traced query plus its answer, renderable as text."""

    spec: dict[str, Any]
    goal: str
    t: float
    epsilon: float
    objective: str
    value: float
    iterations: int
    tracer: Tracer

    def render(self) -> str:
        """The full profile: header, span tree, aggregation, sweep stats."""
        lines = [
            f"model={self.spec}  goal={self.goal!r}  t={self.t:g}  "
            f"epsilon={self.epsilon:g}  objective={self.objective}",
            f"value={self.value:.10e}  iterations={self.iterations}  "
            f"wall={self.tracer.total_wall_seconds():.4f}s",
            "",
            self.tracer.render_tree(),
            "",
            self._render_aggregate(),
        ]
        sweep_lines = self._render_sweep()
        if sweep_lines:
            lines += ["", sweep_lines]
        return "\n".join(lines)

    def _render_aggregate(self) -> str:
        total = self.tracer.total_wall_seconds()
        rows = [f"{'phase':<28}  {'count':>5}  {'wall':>10}  {'self':>10}  {'self %':>6}"]
        for bucket in self.tracer.aggregate():
            share = 100.0 * bucket["self_seconds"] / total if total > 0.0 else 0.0
            rows.append(
                f"{bucket['name']:<28}  {bucket['count']:>5}  "
                f"{bucket['wall_seconds']:>9.4f}s  {bucket['self_seconds']:>9.4f}s  "
                f"{share:>5.1f}%"
            )
        return "\n".join(rows)

    def _render_sweep(self) -> str:
        for record in self.tracer.spans:
            steps = record.attributes.get("steps")
            if record.name.endswith(".sweep") and isinstance(steps, dict):
                parts = [f"sweep steps: {steps.get('steps', 0)}"]
                if steps.get("steps"):
                    parts.append(
                        f"rate: {steps['steps_per_second']:.0f} steps/s, "
                        f"p50 {steps['p50_seconds'] * 1e6:.1f}us, "
                        f"p90 {steps['p90_seconds'] * 1e6:.1f}us, "
                        f"p99 {steps['p99_seconds'] * 1e6:.1f}us"
                    )
                return "\n".join(parts)
        return ""


def profile_query(
    family: str = "ftwc",
    n: int = 2,
    t: float = 100.0,
    epsilon: float = 1.0e-6,
    objective: str = "max",
    goal: str = "no_premium",
    track_allocations: bool = False,
    cache_dir: str | None = None,
    workers: int | None = None,
    ns: list[int] | None = None,
) -> ProfileReport:
    """Run one (or a fan of) traced queries and return the report.

    A fresh engine is used so the profile always includes the build
    phase (unless ``cache_dir`` points at a warm disk cache, in which
    case the profile shows the disk-load path instead -- itself a
    useful measurement).

    With ``ns`` (a list of cluster sizes) the profile runs one query per
    size in a single batch; combined with ``workers > 1`` the model
    groups fan out over the engine's process pool, and the report's
    trace contains the worker-side spans adopted back into the parent
    trace (recognisable by their ``worker_pid`` attribute).  The header
    reports the first query's answer.
    """
    from repro.engine.plan import Query
    from repro.engine.solver import QueryEngine

    sizes = [int(size) for size in ns] if ns else [n]
    engine = QueryEngine(cache_dir=cache_dir, workers=workers)
    spec: dict[str, Any] = {"family": family, "n": sizes[0] if len(sizes) == 1 else sizes}
    queries = [
        Query(
            model={"family": family, "n": size},
            t=t,
            epsilon=epsilon,
            goal=goal,
            objective=objective,
        )
        for size in sizes
    ]
    with tracing(track_allocations=track_allocations) as tracer:
        batch = engine.run(queries)
    failed = [result for result in batch.results if not result.ok]
    if failed:
        raise RuntimeError(f"profiled query failed: {failed[0].error}")
    result = batch.results[0]
    return ProfileReport(
        spec=spec,
        goal=goal,
        t=t,
        epsilon=epsilon,
        objective=objective,
        value=float(result.value),
        iterations=int(result.iterations or 0),
        tracer=tracer,
    )
