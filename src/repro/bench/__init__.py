"""``repro.bench``: benchmark-ledger parsing and trend analysis.

The repository root carries append-only ``BENCH_*.json`` ledgers (one
entry per benchmark run, stamped with the git commit and a UTC
timestamp by ``benchmarks/_ledger.py``).  This package turns those
series into decisions: :mod:`repro.bench.trend` parses every ledger
into one schema, builds per-workload time series, and flags metrics
whose latest run regressed beyond a threshold -- the engine behind
``repro bench trend``.
"""

from repro.bench.trend import (
    DEFAULT_MIN_HISTORY,
    DEFAULT_THRESHOLD,
    LedgerError,
    MetricTrend,
    TrendReport,
    analyze_ledgers,
    flatten_run,
    load_ledger,
    metric_direction,
)

__all__ = [
    "DEFAULT_MIN_HISTORY",
    "DEFAULT_THRESHOLD",
    "LedgerError",
    "MetricTrend",
    "TrendReport",
    "analyze_ledgers",
    "flatten_run",
    "load_ledger",
    "metric_direction",
]
