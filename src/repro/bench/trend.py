"""Cross-commit trend analysis over the ``BENCH_*.json`` ledgers.

Every benchmark in this repository appends one entry per run to an
append-only ledger (``benchmarks/_ledger.py``), stamped with the short
git SHA and a UTC timestamp.  This module reads any number of such
ledgers into **one schema** -- a flat series of numeric metrics per
*workload* (the ledger's benchmark name, refined by an optional
``kind`` field so one file can carry several measurement shapes) --
and answers the question CI actually cares about: *did the latest run
regress?*

The mechanics:

* :func:`load_ledger` parses one ledger tolerantly.  The very first
  entry of the oldest ledgers predates stamping (``commit: "unknown"``,
  ``recorded_at: null``); such entries sort *before* every stamped run
  instead of crashing the comparison.
* :func:`flatten_run` turns one run entry into dotted numeric metrics
  (``ftwc.compression_ratio``), skipping provenance (``commit``,
  ``recorded_at``), configuration (``budget``, ``workload``, ``kind``)
  and non-numeric leaves.
* :func:`metric_direction` classifies each metric: ``lower`` is better
  for durations and overhead ratios, ``higher`` for speedups,
  compression ratios and throughputs; anything unrecognised is tracked
  but never flagged.
* :func:`analyze_ledgers` builds the series and compares each metric's
  latest value against the **median of its prior runs**.  A metric
  regresses when it is worse than the baseline by more than
  ``threshold`` (a fraction: ``0.5`` flags a >50% degradation).
  Benchmark timings on shared CI boxes are noisy, so nothing is
  flagged until a metric has ``min_history`` prior runs to form a
  baseline.

``repro bench trend`` renders the result as text or JSON and exits 1
when any metric regressed -- the cross-commit gate the ROADMAP asks
for.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

__all__ = [
    "LedgerError",
    "MetricTrend",
    "TrendReport",
    "analyze_ledgers",
    "flatten_run",
    "load_ledger",
    "metric_direction",
]

#: Default regression threshold: flag when the latest run is more than
#: 100% worse than the baseline.  Deliberately generous -- the ledgers
#: record wall-clock timings from shared machines, and a trend gate
#: that cries wolf gets deleted.
DEFAULT_THRESHOLD = 1.0

#: Prior runs required before a metric is regression-checked at all.
DEFAULT_MIN_HISTORY = 2

#: Keys that are provenance or configuration, not measurements.
_SKIP_KEYS = {"commit", "recorded_at", "budget", "workload", "kind", "benchmark"}

#: Exact metric names (the last dotted component) with a known
#: direction; consulted before the suffix heuristics.
_DIRECTION_BY_NAME = {
    "speedup": "higher",
    "overhead_ratio": "lower",
    "streaming_vs_dense_ratio": "lower",
    "extraction_vs_plain_ratio": "lower",
}


class LedgerError(ValueError):
    """A ledger file that cannot be parsed into runs."""


def metric_direction(name: str) -> str | None:
    """``"lower"`` / ``"higher"`` is better, or ``None`` (informational).

    ``name`` is the dotted metric path; classification looks at its
    last component.
    """
    leaf = name.rsplit(".", 1)[-1]
    known = _DIRECTION_BY_NAME.get(leaf)
    if known is not None:
        return known
    if leaf.endswith("_per_second") or leaf.endswith("per_second"):
        return "higher"
    if leaf.endswith("compression_ratio"):
        return "higher"
    if leaf.endswith("_seconds"):
        return "lower"
    return None


def flatten_run(run: Mapping[str, Any], prefix: str = "") -> dict[str, float]:
    """Dotted numeric leaves of one run entry (measurements only)."""
    metrics: dict[str, float] = {}
    for key, value in run.items():
        if not prefix and key in _SKIP_KEYS:
            continue
        name = f"{prefix}{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            metrics[name] = float(value)
        elif isinstance(value, Mapping):
            metrics.update(flatten_run(value, prefix=f"{name}."))
    return metrics


def _run_sort_key(position: int, run: Mapping[str, Any]) -> tuple[int, str, int]:
    """Chronological order, legacy unstamped entries first.

    The ledgers are append-only, so file position is already the run
    order; the key only has to keep the pre-ledger entry (``commit:
    "unknown"``, ``recorded_at: null``) ahead of stamped runs and
    otherwise respect timestamps, falling back to position for ties.
    """
    recorded_at = run.get("recorded_at")
    if not isinstance(recorded_at, str) or not recorded_at:
        return (0, "", position)
    return (1, recorded_at, position)


def load_ledger(path: str | Path) -> tuple[str, list[dict[str, Any]]]:
    """``(benchmark_name, runs_in_chronological_order)`` from one ledger.

    Accepts both the ledger format (``{"benchmark": ..., "runs":
    [...]}``) and a pre-ledger single-run document, which becomes a
    one-entry series with unknown provenance.
    """
    path = Path(path)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise LedgerError(f"cannot read {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise LedgerError(f"invalid JSON in {path}: {exc}") from exc
    if not isinstance(document, dict):
        raise LedgerError(f"{path}: ledger must be a JSON object")
    if isinstance(document.get("runs"), list):
        benchmark = str(document.get("benchmark") or path.stem)
        runs = [run for run in document["runs"] if isinstance(run, dict)]
    else:
        benchmark = str(document.get("benchmark") or path.stem)
        legacy = {k: v for k, v in document.items() if k != "benchmark"}
        legacy.setdefault("commit", "unknown")
        legacy.setdefault("recorded_at", None)
        runs = [legacy]
    ordered = sorted(
        enumerate(runs), key=lambda item: _run_sort_key(item[0], item[1])
    )
    return benchmark, [run for _position, run in ordered]


def _workload_key(benchmark: str, run: Mapping[str, Any]) -> str:
    kind = run.get("kind")
    if isinstance(kind, str) and kind:
        return f"{benchmark}/{kind}"
    return benchmark


@dataclass
class MetricTrend:
    """The cross-commit series of one metric of one workload."""

    ledger: str
    workload: str
    metric: str
    direction: str | None
    #: ``(commit, recorded_at, value)`` in chronological order.
    points: list[tuple[str, str | None, float]] = field(default_factory=list)
    baseline: float | None = None
    latest: float | None = None
    #: ``latest / baseline`` (>1 means slower/bigger than baseline).
    ratio: float | None = None
    checked: bool = False
    regressed: bool = False

    def as_dict(self) -> dict[str, Any]:
        return {
            "ledger": self.ledger,
            "workload": self.workload,
            "metric": self.metric,
            "direction": self.direction,
            "points": [
                {"commit": commit, "recorded_at": recorded_at, "value": value}
                for commit, recorded_at, value in self.points
            ],
            "baseline": self.baseline,
            "latest": self.latest,
            "ratio": self.ratio,
            "checked": self.checked,
            "regressed": self.regressed,
        }


@dataclass
class TrendReport:
    """Everything ``repro bench trend`` knows after one analysis."""

    trends: list[MetricTrend]
    threshold: float
    min_history: int
    ledgers: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[MetricTrend]:
        return [trend for trend in self.trends if trend.regressed]

    @property
    def status(self) -> str:
        return "regressed" if self.regressions else "ok"

    def exit_code(self) -> int:
        return 1 if self.regressions else 0

    def as_dict(self) -> dict[str, Any]:
        return {
            "status": self.status,
            "threshold": self.threshold,
            "min_history": self.min_history,
            "ledgers": self.ledgers,
            "regressions": [trend.as_dict() for trend in self.regressions],
            "series": [trend.as_dict() for trend in self.trends],
        }

    def render_text(self) -> str:
        lines: list[str] = []
        by_workload: dict[str, list[MetricTrend]] = {}
        for trend in self.trends:
            by_workload.setdefault(trend.workload, []).append(trend)
        for workload in sorted(by_workload):
            lines.append(f"{workload}:")
            for trend in by_workload[workload]:
                series = " -> ".join(
                    f"{value:.6g}" for _commit, _at, value in trend.points[-5:]
                )
                if trend.checked and trend.ratio is not None:
                    delta = (trend.ratio - 1.0) * 100.0
                    verdict = "REGRESSED" if trend.regressed else "ok"
                    detail = f"{delta:+.1f}% vs median  [{verdict}]"
                elif trend.direction is None:
                    detail = "[informational]"
                else:
                    prior = len(trend.points) - 1
                    detail = f"[unchecked: {prior} prior run(s), need {self.min_history}]"
                arrow = {"lower": "v", "higher": "^", None: "-"}[trend.direction]
                lines.append(
                    f"  {trend.metric:<44s} ({arrow}) {series}  {detail}"
                )
        lines.append(
            f"status: {self.status} "
            f"({len(self.regressions)} regression(s), {len(self.trends)} series, "
            f"threshold {self.threshold:g}, min history {self.min_history})"
        )
        return "\n".join(lines)


def _check_regression(
    trend: MetricTrend, threshold: float, min_history: int
) -> None:
    """Fill the baseline/latest/ratio/regressed fields of one trend."""
    values = [value for _commit, _at, value in trend.points]
    if not values:
        return
    trend.latest = values[-1]
    priors = values[:-1]
    if trend.direction is None or len(priors) < min_history:
        return
    baseline = statistics.median(priors)
    trend.baseline = baseline
    trend.checked = True
    if baseline == 0.0:
        # A zero baseline makes every ratio meaningless; compare by sign.
        trend.ratio = None
        trend.regressed = (
            trend.latest > 0.0 if trend.direction == "lower" else trend.latest < 0.0
        )
        return
    ratio = trend.latest / baseline
    trend.ratio = ratio
    if trend.direction == "lower":
        trend.regressed = ratio > 1.0 + threshold
    else:
        trend.regressed = ratio < 1.0 / (1.0 + threshold)


def analyze_ledgers(
    paths: Iterable[str | Path],
    threshold: float = DEFAULT_THRESHOLD,
    min_history: int = DEFAULT_MIN_HISTORY,
) -> TrendReport:
    """Parse every ledger and trend every metric of every workload.

    ``threshold`` is the tolerated fractional degradation of the latest
    run against the median of its prior runs; ``min_history`` is the
    number of prior runs required before a metric is checked at all.
    """
    trends: list[MetricTrend] = []
    ledger_names: list[str] = []
    for path in paths:
        path = Path(path)
        benchmark, runs = load_ledger(path)
        ledger_names.append(path.name)
        series: dict[tuple[str, str], MetricTrend] = {}
        for run in runs:
            workload = _workload_key(benchmark, run)
            commit = str(run.get("commit") or "unknown")
            recorded_at = run.get("recorded_at")
            recorded_at = recorded_at if isinstance(recorded_at, str) else None
            for metric, value in flatten_run(run).items():
                key = (workload, metric)
                trend = series.get(key)
                if trend is None:
                    trend = MetricTrend(
                        ledger=path.name,
                        workload=workload,
                        metric=metric,
                        direction=metric_direction(metric),
                    )
                    series[key] = trend
                trend.points.append((commit, recorded_at, value))
        for trend in series.values():
            _check_regression(trend, threshold, min_history)
        trends.extend(
            series[key] for key in sorted(series, key=lambda k: (k[0], k[1]))
        )
    return TrendReport(
        trends=trends,
        threshold=threshold,
        min_history=min_history,
        ledgers=ledger_names,
    )
