"""A zoo of small example systems.

These models serve three purposes: documentation (they appear in the
examples), testing (they have hand-computable or independently
verifiable answers) and benchmarking substrate.  Each builder returns a
ready-to-analyse object.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ctmdp import CTMDP
from repro.ctmc.model import CTMC
from repro.ctmc.phase_type import PhaseType
from repro.errors import ModelError
from repro.imc.composition import hide_all_but, parallel
from repro.imc.elapse import elapse
from repro.imc.lts import lts
from repro.imc.model import IMC, IMCBuilder

__all__ = [
    "two_phase_race_ctmdp",
    "erlang_vs_exponential_race",
    "queue_with_breakdowns",
    "cyclic_ctmc",
    "producer_consumer_imc",
    "tandem_queue",
]


def two_phase_race_ctmdp(fast: float = 10.0, slow: float = 1.0) -> tuple[CTMDP, np.ndarray]:
    """The classic uCTMDP example of Baier et al. [2].

    From the initial state the scheduler chooses between a *direct* slow
    path to the goal and a *detour* through an intermediate state with
    two fast jumps.  For short time bounds the direct slow transition
    maximises the reachability probability, for long bounds the detour
    wins -- the optimal scheduler is genuinely time(-step) dependent,
    which is why timed reachability needs the step-indexed greedy
    algorithm rather than a single stationary choice.

    States: 0 = start, 1 = detour, 2 = goal.  Uniform rate
    ``fast + slow``.  Returns the model and its goal mask.
    """
    if fast <= slow:
        raise ModelError("the race needs fast > slow to be interesting")
    total = fast + slow
    ctmdp = CTMDP.from_transitions(
        3,
        [
            # Direct: reach the goal with rate `slow`, otherwise stay.
            (0, "direct", {2: slow, 0: fast}),
            # Detour: move on with rate `fast`, otherwise stay.
            (0, "detour", {1: fast, 0: slow}),
            (1, "move", {2: fast, 1: slow}),
            (2, "stay", {2: total}),
        ],
        initial=0,
        state_names=["start", "detour", "goal"],
    )
    goal = np.array([False, False, True])
    return ctmdp, goal


def erlang_vs_exponential_race(
    phases: int = 3, rate_scale: float = 3.0, exponential_rate: float = 1.0
) -> tuple[CTMDP, np.ndarray]:
    """Choose between an Erlang(k, k*r) delay and an Exp(r) delay to a goal.

    Both branches have mean ``1/r``; the Erlang branch is far more
    predictable (lower variance).  For small time bounds the exponential
    branch wins (it can fire early), for bounds beyond the mean the
    Erlang branch wins -- another crossover that exercises step-dependent
    scheduling.  The model is uniformized at the maximal exit rate.
    """
    if phases < 2:
        raise ModelError("need at least two Erlang phases for a contrast")
    erlang_rate = rate_scale * phases * exponential_rate
    total = max(erlang_rate, exponential_rate) * 1.0
    # States: 0 = choice, 1..phases-1 = Erlang stages, phases = goal.
    goal_state = phases
    transitions: list[tuple[int, str, dict[int, float]]] = [
        (0, "erlang", {1 if phases > 1 else goal_state: erlang_rate,
                       0: total - erlang_rate} if total > erlang_rate
         else {1 if phases > 1 else goal_state: erlang_rate}),
        (0, "exponential", {goal_state: exponential_rate, 0: total - exponential_rate}),
    ]
    for stage in range(1, phases):
        nxt = stage + 1 if stage + 1 < phases else goal_state
        rates = {nxt: erlang_rate}
        if total > erlang_rate:
            rates[stage] = total - erlang_rate
        transitions.append((stage, "stage", rates))
    transitions.append((goal_state, "stay", {goal_state: total}))
    names = ["choice"] + [f"stage{k}" for k in range(1, phases)] + ["goal"]
    ctmdp = CTMDP.from_transitions(
        phases + 1, transitions, initial=0, state_names=names
    )
    goal = np.zeros(phases + 1, dtype=bool)
    goal[goal_state] = True
    return ctmdp, goal


def queue_with_breakdowns(
    capacity: int = 5,
    arrival: float = 1.0,
    service: float = 2.0,
    breakdown: float = 0.05,
    repair: float = 0.5,
) -> tuple[CTMC, np.ndarray]:
    """An M/M/1/K queue whose server breaks down and is repaired.

    A classical dependability CTMC: states ``(queue length, server up)``;
    the goal set is "queue full" (loss states).  Used in examples and to
    exercise the CTMC machinery on something beyond toy chains.
    """
    if capacity < 1:
        raise ModelError("capacity must be at least one")

    def idx(length: int, up: bool) -> int:
        return length * 2 + (1 if up else 0)

    transitions: list[tuple[int, int, float]] = []
    for length in range(capacity + 1):
        for up in (True, False):
            src = idx(length, up)
            if length < capacity:
                transitions.append((src, idx(length + 1, up), arrival))
            if up and length > 0:
                transitions.append((src, idx(length - 1, up), service))
            if up:
                transitions.append((src, idx(length, False), breakdown))
            else:
                transitions.append((src, idx(length, True), repair))
    chain = CTMC.from_transitions(
        2 * (capacity + 1),
        transitions,
        initial=idx(0, True),
        state_names=[
            f"len={length},{'up' if up else 'down'}"
            for length in range(capacity + 1)
            for up in (False, True)
        ],
    )
    goal = np.zeros(chain.num_states, dtype=bool)
    goal[idx(capacity, True)] = True
    goal[idx(capacity, False)] = True
    return chain, goal


def cyclic_ctmc(states: int = 4, rate: float = 1.0) -> CTMC:
    """A uniform cycle CTMC, handy for closed-form cross-checks."""
    if states < 2:
        raise ModelError("a cycle needs at least two states")
    transitions = [(k, (k + 1) % states, rate) for k in range(states)]
    return CTMC.from_transitions(states, transitions, initial=0)


def producer_consumer_imc(
    buffer_size: int = 2, produce_rate: float = 2.0, consume_rate: float = 3.0
) -> IMC:
    """A produce/consume system built compositionally from uIMCs.

    A producer emits items after an exponential delay, a consumer takes
    them after its own delay, and a bounded-buffer LTS mediates.  The
    closed composition is uniform by construction (Lemmas 1 and 2) with
    rate ``produce_rate + consume_rate`` and exercises elapse + parallel
    + hide end to end on something that is not the FTWC.
    """
    if buffer_size < 1:
        raise ModelError("buffer must hold at least one item")
    producer = elapse(PhaseType.exponential(produce_rate), fire="put", reset="ack_put")
    consumer = elapse(PhaseType.exponential(consume_rate), fire="get", reset="ack_get")

    # Buffer LTS over {put, ack_put, get, ack_get}: counts items and
    # acknowledges each access (the acknowledgement re-arms the clock).
    states: list[str] = []
    transitions: list[tuple[int, str, int]] = []
    for count in range(buffer_size + 1):
        states.append(f"n={count}")
    ack_offset = len(states)
    for count in range(buffer_size + 1):
        states.append(f"n={count},ack_put")
        states.append(f"n={count},ack_get")
    for count in range(buffer_size + 1):
        if count < buffer_size:
            transitions.append((count, "put", ack_offset + 2 * (count + 1)))
            transitions.append((ack_offset + 2 * (count + 1), "ack_put", count + 1))
        if count > 0:
            transitions.append((count, "get", ack_offset + 2 * (count - 1) + 1))
            transitions.append((ack_offset + 2 * (count - 1) + 1, "ack_get", count - 1))
    buffer = lts(len(states), transitions, initial=0, state_names=states)

    system = parallel(producer, buffer, sync=["put", "ack_put"])
    system = parallel(system, consumer, sync=["get", "ack_get"])
    return hide_all_but(system)


def tandem_queue(
    capacity: int = 3,
    arrival: float = 1.5,
    service_first: float = 2.0,
    service_second: float = 2.5,
) -> tuple[CTMC, np.ndarray]:
    """A tandem of two finite M/M/1 queues (a classical CTMC benchmark).

    Customers arrive at the first queue with rate ``arrival``, move to
    the second after an exponential service, and leave after the second
    service; arrivals (respectively handovers) are lost when the target
    queue is full.  States are pairs ``(n1, n2)``; the goal set marks
    the fully congested configuration -- "both queues full", the usual
    performance question asked of this model.
    """
    if capacity < 1:
        raise ModelError("queues need capacity of at least one")
    for name, rate in (
        ("arrival", arrival),
        ("service_first", service_first),
        ("service_second", service_second),
    ):
        if rate <= 0.0:
            raise ModelError(f"{name} rate must be positive")

    def idx(n1: int, n2: int) -> int:
        return n1 * (capacity + 1) + n2

    transitions: list[tuple[int, int, float]] = []
    for n1 in range(capacity + 1):
        for n2 in range(capacity + 1):
            src = idx(n1, n2)
            if n1 < capacity:
                transitions.append((src, idx(n1 + 1, n2), arrival))
            if n1 > 0 and n2 < capacity:
                transitions.append((src, idx(n1 - 1, n2 + 1), service_first))
            if n2 > 0:
                transitions.append((src, idx(n1, n2 - 1), service_second))
    chain = CTMC.from_transitions(
        (capacity + 1) ** 2,
        transitions,
        initial=idx(0, 0),
        state_names=[
            f"n1={n1},n2={n2}"
            for n1 in range(capacity + 1)
            for n2 in range(capacity + 1)
        ],
    )
    goal = np.zeros(chain.num_states, dtype=bool)
    goal[idx(capacity, capacity)] = True
    return chain, goal
