"""Compositional construction of the fault-tolerant workstation cluster.

This module is the paper's Section 5 trajectory in code: component LTSs
are enriched with elapse-based time constraints, composed in parallel,
hidden and minimised -- every step preserving uniformity -- until the
closed system model of the FTWC emerges as a uniform IMC, ready for the
strictly-alternating transformation.

Architecture (one deliberate deviation from the paper's prose is
documented below):

* **Component LTS** (Figure 2 right): ``up --fail--> failed --grab-->
  in_repair --repair--> repaired --release--> up``.
* **Failure time constraint**: ``El(Exp(lambda_fail), fail, release)``,
  started armed (components are initially operational).  Composed with
  the component on ``{fail, release}`` and the ``fail`` action is hidden
  inside the block, as in the paper.
* **Repair timing**: the paper's prose attaches ``El(Exp(mu), repair,
  grab)`` to every component, which would make every repair clock tick
  at all times and drive the uniform rate to ``E ~ 4N``; the iteration
  counts of Table 1 however imply ``E(N) = 2 + 0.004 N + 0.0007`` -- a
  *single* repair clock at the fastest repair rate.  We therefore model
  the repair unit and the repair delays as one shared *timed repair
  station*: a uniform IMC of rate ``mu_max`` that is grabbed per
  component kind, completes the repair with the kind's rate (padded by
  a uniformisation self-loop), then performs ``repair`` and ``release``.
  This is stochastically equivalent (repairs are sequential anyway, and
  exponential clocks are memoryless) and reproduces the paper's uniform
  rates exactly.  See DESIGN.md for the full argument.
* **System**: per-kind blocks are interleaved (workstations of one side
  share their type-level action names, so the station synchronises with
  whichever failed replica moves -- the repair-unit nondeterminism of
  the paper), the station is composed on the grab/repair/release
  alphabet, everything is hidden, and the result is minimised.

Per-state *operation counts* are threaded through composition and
minimisation so the premium-service predicate of [13] survives all
reductions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Sequence

import numpy as np

from repro.bisim.branching import branching_minimize
from repro.bisim.quotient import map_labels_through
from repro.ctmc.phase_type import PhaseType
from repro.errors import ModelError
from repro.imc.elapse import elapse
from repro.imc.labeled import LabeledIMC
from repro.imc.lts import lts
from repro.imc.model import IMC
from repro.imc.transform import TransformResult, imc_to_ctmdp
from repro.models.ftwc_direct import FTWCParameters, premium

__all__ = [
    "LabeledIMC",
    "component_lts",
    "repair_station",
    "component_block",
    "build_system_imc",
    "build_compositional",
    "FTWCCompositional",
]

#: Index of each count in the observation tuple: operational left/right
#: workstations, left/right switch, backbone.
_OBS_KINDS = ("wsL", "wsR", "swL", "swR", "bb")


def _zero_obs() -> tuple[int, ...]:
    return (0,) * len(_OBS_KINDS)


def _unit_obs(kind: str) -> tuple[int, ...]:
    obs = [0] * len(_OBS_KINDS)
    obs[_OBS_KINDS.index(kind)] = 1
    return tuple(obs)


def component_lts(kind: str) -> LabeledIMC:
    """The behavioural skeleton of one component (Figure 2 right).

    Actions are type-level (``fail`` stays local to the block; ``g_*``,
    ``rep_*`` and ``r_*`` synchronise with the repair station).  The
    observation is 1 in the component's slot while it is operational.
    """
    names = ["up", "failed", "in_repair", "repaired"]
    model = lts(
        4,
        [
            (0, "fail", 1),
            (1, f"g_{kind}", 2),
            (2, f"rep_{kind}", 3),
            (3, f"r_{kind}", 0),
        ],
        initial=0,
        state_names=[f"{kind}:{name}" for name in names],
    )
    observations = [_unit_obs(kind), _zero_obs(), _zero_obs(), _zero_obs()]
    return LabeledIMC(imc=model, observations=observations)


def failure_constraint(kind: str, rate: float) -> LabeledIMC:
    """``El(Exp(rate), fail, r_kind)``: the component's failure clock.

    Started armed; re-armed by the component's release.  Contributes its
    rate to the uniform rate of every composition it enters (Lemma 2).
    """
    constraint = elapse(PhaseType.exponential(rate), fire="fail", reset=f"r_{kind}")
    return LabeledIMC.constant(constraint, _zero_obs())


def repair_station(params: FTWCParameters) -> LabeledIMC:
    """The shared timed repair station: one uniform clock at rate ``mu_max``.

    States: ``idle`` and, per kind, ``busy`` (repair running at the
    kind's rate, padded to ``mu_max`` by a self-loop), ``done`` (repair
    delay elapsed, the ``rep_kind`` action synchronises the component's
    repair) and ``releasing`` (hands the unit back via ``r_kind``).
    All stable states tick at ``mu_max``, so the station is a uniform
    IMC of rate ``mu_max``.
    """
    mu_max = params.mu_max
    names = ["ru:idle"]
    interactive: list[tuple[int, str, int]] = []
    markov: list[tuple[int, float, int]] = [(0, mu_max, 0)]
    for kind in _OBS_KINDS:
        busy = len(names)
        names.extend([f"ru:busy_{kind}", f"ru:done_{kind}", f"ru:releasing_{kind}"])
        done, releasing = busy + 1, busy + 2
        interactive.append((0, f"g_{kind}", busy))
        mu = params.repair_rate(kind)
        markov.append((busy, mu, done))
        if mu_max - mu > 0.0:
            markov.append((busy, mu_max - mu, busy))
        markov.append((done, mu_max, done))
        interactive.append((done, f"rep_{kind}", releasing))
        markov.append((releasing, mu_max, releasing))
        interactive.append((releasing, f"r_{kind}", 0))
    model = IMC(
        num_states=len(names),
        interactive=interactive,
        markov=markov,
        initial=0,
        state_names=names,
    )
    return LabeledIMC.constant(model, _zero_obs())


def component_block(
    kind: str, fail_rate: float, minimize: bool = True, engine: str = "worklist"
) -> LabeledIMC:
    """One component with its failure time constraint, ``fail`` hidden.

    ``block = hide fail in (LTS |[{fail, r_kind}]| El(Exp(l), fail, r_kind))``
    """
    component = component_lts(kind)
    clock = failure_constraint(kind, fail_rate)
    block = component.parallel(clock, sync=["fail", f"r_{kind}"])
    block = block.hide(["fail"])
    if minimize:
        block = block.minimize(engine=engine)
    return block


@dataclass
class SystemIMC:
    """The closed FTWC uIMC with its per-state premium flags."""

    imc: IMC
    premium_flags: list[bool]


def build_system_imc(
    n: int,
    params: FTWCParameters | None = None,
    minimize_intermediate: bool = True,
    engine: str = "worklist",
) -> SystemIMC:
    """Compose the full FTWC as a closed uniform IMC.

    Follows the paper's recipe: per-component blocks (interleaved;
    replicas of one kind share type-level action names), the repair
    station synchronised on the grab/repair/release alphabet, full
    hiding, and a final minimisation seeded with the premium predicate.

    With ``minimize_intermediate`` every intermediate composition is
    quotiented (the classical compositional minimisation principle);
    without it the intermediate state spaces grow quickly -- the
    ablation benchmark measures exactly this effect.  ``engine``
    selects the refinement implementation used by every quotient
    (``"worklist"`` or ``"naive"``; ``BENCH_bisim.json`` records the
    speedup between the two on exactly this pipeline).
    """
    params = params or FTWCParameters(n=n)
    if params.n != n:
        raise ModelError("n argument and params.n disagree")

    def maybe_minimize(model: LabeledIMC) -> LabeledIMC:
        return model.minimize(engine=engine) if minimize_intermediate else model

    # Interleave the workstation replicas of each side.
    def cluster(kind: str) -> LabeledIMC:
        block = component_block(
            kind, params.fail_rate(kind), minimize=minimize_intermediate, engine=engine
        )
        result = block
        for _ in range(1, n):
            result = maybe_minimize(result.parallel(block, sync=[]))
        return result

    system = maybe_minimize(cluster("wsL").parallel(cluster("wsR"), sync=[]))
    for kind in ("swL", "swR", "bb"):
        block = component_block(
            kind, params.fail_rate(kind), minimize=minimize_intermediate, engine=engine
        )
        system = maybe_minimize(system.parallel(block, sync=[]))

    station = repair_station(params)
    sync = [f"{prefix}_{kind}" for kind in _OBS_KINDS for prefix in ("g", "rep", "r")]
    system = station.parallel(system, sync=sync)

    closed = system.hide_all_but()
    # Final quotient: only the premium predicate needs to survive now.
    quality = [premium_from_obs(obs, n) for obs in closed.observations]
    quotient, partition = branching_minimize(closed.imc, labels=quality, engine=engine)
    return SystemIMC(
        imc=quotient, premium_flags=map_labels_through(partition, quality)
    )


def premium_from_obs(obs: tuple[int, ...], n: int) -> bool:
    """Premium predicate of [13] over an observation tuple."""
    op_left, op_right, sw_left, sw_right, bb = obs
    if sw_left and op_left >= n:
        return True
    if sw_right and op_right >= n:
        return True
    return bool(sw_left and sw_right and bb and op_left + op_right >= n)


@dataclass
class FTWCCompositional:
    """The compositional FTWC: closed uIMC, transformed CTMDP, goal set."""

    system: SystemIMC
    transform: TransformResult
    goal_mask: np.ndarray
    params: FTWCParameters

    @property
    def ctmdp(self):
        """The analysed uniform CTMDP."""
        return self.transform.ctmdp


def build_compositional(
    n: int,
    params: FTWCParameters | None = None,
    minimize_intermediate: bool = True,
    engine: str = "worklist",
) -> FTWCCompositional:
    """Full compositional pipeline: compose, minimise, transform.

    Practical for small ``n`` (the paper reaches ``N = 14`` with CADP's
    optimised C implementation; the pure-Python route is intended for
    ``N <= 4``, which suffices to cross-validate the direct generator).
    """
    params = params or FTWCParameters(n=n)
    system = build_system_imc(n, params, minimize_intermediate, engine=engine)
    result = imc_to_ctmdp(system.imc, require_uniform=True)
    flags = system.premium_flags
    goal = result.goal_mask_from_predicate(lambda s: not flags[s], via="markov")
    return FTWCCompositional(
        system=system, transform=result, goal_mask=goal, params=params
    )
