"""Stochastic job scheduling: a second uCTMDP case study.

A classical CTMDP benchmark from the timed-reachability literature: ``m``
jobs with exponentially distributed service requirements (rates
``lambda_1..lambda_m``) must be executed on ``k`` identical processors;
preemption is allowed, and the scheduler decides after every completion
which of the remaining jobs to run.  The objective is the probability to
finish *all* jobs within a deadline ``t`` -- maximised by a good
schedule, minimised by an adversarial one.

The model is a natural fit for the paper's machinery:

* states are sets of remaining jobs (the running subset is the
  scheduler's choice, i.e. the action);
* the exit rate of a choice is the sum of the running jobs' rates, so
  the raw model is *not* uniform -- it is made uniform by construction
  here by padding every choice with a self-loop up to ``sum(rates)``
  (exactly the elapse-style always-ticking clocks of the paper, and
  behaviour-preserving for the time-abstract objective because the
  model's timing is fully described by each choice's rate function);
* the optimal schedule is in general *deadline-dependent* (which jobs
  to favour changes with the remaining time budget) -- the test suite
  checks that Algorithm 1's values dominate every static priority
  policy and collapse to them in the symmetric-rate case.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

import numpy as np

from repro.core.ctmdp import CTMDP
from repro.errors import ModelError

__all__ = ["JobSchedulingModel", "build_job_scheduling"]


@dataclass
class JobSchedulingModel:
    """A job-scheduling uCTMDP with its goal state.

    Attributes
    ----------
    ctmdp:
        The uniform CTMDP; state ``i`` encodes the bitmask of remaining
        jobs (state 0 = everything finished).
    goal_mask:
        True exactly at the all-done state.
    rates:
        The job service rates.
    processors:
        Number of identical processors.
    """

    ctmdp: CTMDP
    goal_mask: np.ndarray
    rates: tuple[float, ...]
    processors: int

    def state_of(self, remaining: Sequence[int]) -> int:
        """State index for a set of remaining job indices."""
        mask = 0
        for job in remaining:
            if not 0 <= job < len(self.rates):
                raise ModelError(f"job index {job} out of range")
            mask |= 1 << job
        return mask


def _subset_label(jobs: tuple[int, ...]) -> str:
    return "run{" + ",".join(str(j) for j in jobs) + "}"


def build_job_scheduling(
    rates: Sequence[float], processors: int
) -> JobSchedulingModel:
    """Build the uniform CTMDP for ``len(rates)`` jobs on ``processors``.

    Parameters
    ----------
    rates:
        Exponential service rates, one per job; all positive.
    processors:
        Number of identical processors, ``>= 1``.

    Notes
    -----
    State space is ``2^m`` (bitmask of remaining jobs), transition count
    ``sum_S C(|S|, min(k, |S|))``; intended for the small ``m`` regime
    (``m <= ~12``) where the benchmark is customarily run.
    """
    rates = tuple(float(r) for r in rates)
    if not rates:
        raise ModelError("need at least one job")
    if any(r <= 0.0 for r in rates):
        raise ModelError("service rates must be positive")
    if processors < 1:
        raise ModelError("need at least one processor")

    m = len(rates)
    total_rate = math.fsum(rates)
    num_states = 1 << m

    transitions: list[tuple[int, str, dict[int, float]]] = []
    for state in range(1, num_states):
        remaining = [j for j in range(m) if state & (1 << j)]
        width = min(processors, len(remaining))
        for running in combinations(remaining, width):
            rate_function: dict[int, float] = {}
            used = 0.0
            for job in running:
                rate_function[state & ~(1 << job)] = rates[job]
                used += rates[job]
            padding = total_rate - used
            if padding > 0.0:
                rate_function[state] = rate_function.get(state, 0.0) + padding
            transitions.append((state, _subset_label(running), rate_function))
    # The all-done state idles at the uniform rate.
    transitions.append((0, "done", {0: total_rate}))

    names = [
        "done" if s == 0 else "left{" + ",".join(
            str(j) for j in range(m) if s & (1 << j)
        ) + "}"
        for s in range(num_states)
    ]
    ctmdp = CTMDP.from_transitions(
        num_states, transitions, initial=num_states - 1, state_names=names
    )
    goal = np.zeros(num_states, dtype=bool)
    goal[0] = True
    return JobSchedulingModel(
        ctmdp=ctmdp, goal_mask=goal, rates=rates, processors=processors
    )
