"""Case-study models: the FTWC (compositional and direct) and a zoo."""

from repro.models import ftwc, ftwc_direct, job_scheduling, zoo
from repro.models.ftwc import FTWCCompositional, build_compositional, build_system_imc
from repro.models.job_scheduling import JobSchedulingModel, build_job_scheduling
from repro.models.ftwc_direct import (
    Config,
    FTWCModel,
    FTWCParameters,
    build_ctmc,
    build_ctmdp,
    premium,
    uniform_rate,
)

__all__ = [
    "ftwc",
    "ftwc_direct",
    "job_scheduling",
    "zoo",
    "JobSchedulingModel",
    "build_job_scheduling",
    "FTWCCompositional",
    "build_compositional",
    "build_system_imc",
    "Config",
    "FTWCModel",
    "FTWCParameters",
    "build_ctmc",
    "build_ctmdp",
    "premium",
    "uniform_rate",
]
