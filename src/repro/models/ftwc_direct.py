"""Direct state-space generator for the fault-tolerant workstation cluster.

The paper constructs the FTWC compositionally with CADP for ``N <= 14``
and falls back to PRISM-generated state spaces for larger ``N``; this
module is our analogue of the latter: it enumerates the uniform CTMDP of
the cluster directly over a counting abstraction of the configuration
space, which is sound because workstations within one sub-cluster are
fully symmetric (the compositional route merges them by bisimulation
anyway -- the test suite verifies that both routes yield identical
reachability probabilities for small ``N``).

System recap (Section 5 / Figure 1): two sub-clusters of ``N``
workstations each, connected through one switch per side and a backbone;
every component fails and is repaired with exponentially distributed
delays; a *single* repair unit serves one failed component at a time,
and the assignment of the repair unit to a failed component is the
nondeterministic decision of the model.

Configurations
--------------
A configuration records ``(failed_left, failed_right, switch_left_down,
switch_right_down, backbone_down, repairing)`` where the counts include
a component currently under repair and ``repairing`` names the component
kind the repair unit is attached to (or none).  A configuration is a
*decision point* iff the repair unit is idle although failed components
exist; there the scheduler picks a ``grab`` action per failed kind.  All
other configurations carry a single internal transition whose rate
function is the exponential race between failures, the running repair,
and the uniformisation self-loop.

Uniformity by construction
--------------------------
Every rate function has total rate ``E(N) = mu_max + 2N*lf_ws +
2*lf_sw + lf_bb``: each component's failure clock ticks at its failure
rate at all times (clocks of failed components contribute to the
self-loop), and the shared repair clock ticks at the fastest repair
rate ``mu_max`` (slower repairs are padded with self-loop rate, exactly
Jensen's uniformization).  This mirrors the elapse-based compositional
construction and reproduces the uniform rates implied by the iteration
counts of Table 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.core.ctmdp import CTMDP
from repro.ctmc.model import CTMC
from repro.errors import ModelError

__all__ = [
    "FTWCParameters",
    "Config",
    "FTWCModel",
    "build_ctmdp",
    "build_ctmc",
    "premium",
    "uniform_rate",
]

#: Component kinds in a fixed order: left/right workstations, left/right
#: switch, backbone.
KINDS = ("wsL", "wsR", "swL", "swR", "bb")

#: The repair unit is idle.
IDLE = ""


@dataclass(frozen=True)
class FTWCParameters:
    """Failure and repair rates of the FTWC (defaults from [13] / PRISM).

    Mean times: workstations fail every 500 h and take 0.5 h to repair;
    switches 4000 h / 4 h; the backbone 5000 h / 8 h.
    """

    n: int
    ws_fail: float = 1.0 / 500.0
    sw_fail: float = 1.0 / 4000.0
    bb_fail: float = 1.0 / 5000.0
    ws_repair: float = 2.0
    sw_repair: float = 0.25
    bb_repair: float = 0.125

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ModelError("the FTWC needs at least one workstation per sub-cluster")
        for name in ("ws_fail", "sw_fail", "bb_fail", "ws_repair", "sw_repair", "bb_repair"):
            if getattr(self, name) <= 0.0:
                raise ModelError(f"{name} must be positive")

    def fail_rate(self, kind: str) -> float:
        """Failure rate of one component of ``kind``."""
        return {"wsL": self.ws_fail, "wsR": self.ws_fail, "swL": self.sw_fail,
                "swR": self.sw_fail, "bb": self.bb_fail}[kind]

    def repair_rate(self, kind: str) -> float:
        """Repair rate of one component of ``kind``."""
        return {"wsL": self.ws_repair, "wsR": self.ws_repair, "swL": self.sw_repair,
                "swR": self.sw_repair, "bb": self.bb_repair}[kind]

    @property
    def mu_max(self) -> float:
        """Rate of the shared (uniformized) repair clock."""
        return max(self.ws_repair, self.sw_repair, self.bb_repair)

    @property
    def total_fail_rate(self) -> float:
        """Sum of all failure-clock rates (they tick at all times)."""
        return 2 * self.n * self.ws_fail + 2 * self.sw_fail + self.bb_fail


def uniform_rate(params: FTWCParameters) -> float:
    """The uniform rate ``E(N)`` of the FTWC uCTMDP."""
    return params.mu_max + params.total_fail_rate


@dataclass(frozen=True)
class Config:
    """One configuration of the cluster.

    ``failed_left`` / ``failed_right`` count non-operational workstations
    (waiting or under repair); the switch/backbone flags are ``True``
    when the component is non-operational; ``repairing`` is the kind the
    repair unit is attached to, or ``IDLE``.
    """

    failed_left: int
    failed_right: int
    sw_left_down: bool
    sw_right_down: bool
    bb_down: bool
    repairing: str = IDLE

    def failed_kinds(self) -> list[str]:
        """Kinds with at least one failed component (grab candidates)."""
        kinds = []
        if self.failed_left > 0:
            kinds.append("wsL")
        if self.failed_right > 0:
            kinds.append("wsR")
        if self.sw_left_down:
            kinds.append("swL")
        if self.sw_right_down:
            kinds.append("swR")
        if self.bb_down:
            kinds.append("bb")
        return kinds

    def is_decision_point(self) -> bool:
        """True iff the repair unit must be (re)assigned here."""
        return self.repairing == IDLE and bool(self.failed_kinds())

    def with_repairing(self, kind: str) -> "Config":
        """Attach the repair unit to ``kind``."""
        return Config(self.failed_left, self.failed_right, self.sw_left_down,
                      self.sw_right_down, self.bb_down, kind)

    def after_failure(self, kind: str) -> "Config":
        """Configuration after one more component of ``kind`` fails."""
        return Config(
            self.failed_left + (kind == "wsL"),
            self.failed_right + (kind == "wsR"),
            self.sw_left_down or kind == "swL",
            self.sw_right_down or kind == "swR",
            self.bb_down or kind == "bb",
            self.repairing,
        )

    def after_repair(self) -> "Config":
        """Configuration after the running repair completes (unit released)."""
        kind = self.repairing
        return Config(
            self.failed_left - (kind == "wsL"),
            self.failed_right - (kind == "wsR"),
            self.sw_left_down and kind != "swL",
            self.sw_right_down and kind != "swR",
            self.bb_down and kind != "bb",
            IDLE,
        )

    def describe(self) -> str:
        """Compact human-readable rendering."""
        ru = self.repairing or "idle"
        return (
            f"fL={self.failed_left},fR={self.failed_right},"
            f"swL={'down' if self.sw_left_down else 'up'},"
            f"swR={'down' if self.sw_right_down else 'up'},"
            f"bb={'down' if self.bb_down else 'up'},ru={ru}"
        )


def premium(config: Config, n: int, threshold: int | None = None) -> bool:
    """Quality-of-service predicate of [13] (Section 5 of the paper).

    The cluster offers the required quality iff at least ``threshold``
    operational workstations are connected to each other: either one
    sub-cluster provides all of them through its own (operational)
    switch, or both sub-clusters together do -- which additionally
    requires both switches and the backbone.

    ``threshold`` defaults to ``n``: *premium* quality, the paper's
    property.  Smaller thresholds give the *minimum quality* variants
    also studied in [13] (e.g. ``threshold = (3 * n) // 4``).
    """
    need = n if threshold is None else threshold
    if not 0 < need <= 2 * n:
        raise ModelError(f"quality threshold must lie in 1..{2 * n}, got {need}")
    op_left = n - config.failed_left
    op_right = n - config.failed_right
    sw_left = not config.sw_left_down
    sw_right = not config.sw_right_down
    bb = not config.bb_down
    if sw_left and op_left >= need:
        return True
    if sw_right and op_right >= need:
        return True
    return sw_left and sw_right and bb and op_left + op_right >= need


def _race(config: Config, params: FTWCParameters, total: float) -> dict[Config, float]:
    """Rate function of the exponential race out of ``config``.

    Precondition: ``config`` is not a decision point.  The self-loop
    padding tops the exit rate up to the uniform rate ``total``.
    """
    n = params.n
    rates: dict[Config, float] = {}

    def add(target: Config, rate: float) -> None:
        if rate > 0.0:
            rates[target] = rates.get(target, 0.0) + rate

    add(config.after_failure("wsL"), (n - config.failed_left) * params.ws_fail)
    add(config.after_failure("wsR"), (n - config.failed_right) * params.ws_fail)
    if not config.sw_left_down:
        add(config.after_failure("swL"), params.sw_fail)
    if not config.sw_right_down:
        add(config.after_failure("swR"), params.sw_fail)
    if not config.bb_down:
        add(config.after_failure("bb"), params.bb_fail)
    if config.repairing:
        add(config.after_repair(), params.repair_rate(config.repairing))

    padding = total - math.fsum(rates.values())
    add(config, padding)
    return rates


@dataclass
class FTWCModel:
    """A generated FTWC model with its goal set and provenance.

    Attributes
    ----------
    ctmdp:
        The uniform CTMDP (states are configurations).
    configs:
        Configuration per CTMDP state.
    goal_mask:
        Boolean mask of the non-premium states (the goal set ``B`` of
        the paper's property "premium service is not guaranteed").
    params:
        The generating parameters.
    """

    ctmdp: CTMDP
    configs: list[Config]
    goal_mask: np.ndarray
    params: FTWCParameters

    @property
    def initial_value_index(self) -> int:
        """Index of the all-operational initial state."""
        return self.ctmdp.initial


def _explore(
    params: FTWCParameters, racing_decisions: bool = False
) -> tuple[list[Config], dict[Config, int]]:
    """Enumerate all configurations reachable from the fully-up cluster.

    With ``racing_decisions`` the decision points additionally spawn
    their failure successors (needed for the CTMC variant, where the
    failure clocks race against the assignment delay).
    """
    start = Config(0, 0, False, False, False, IDLE)
    index: dict[Config, int] = {start: 0}
    order: list[Config] = [start]
    total = uniform_rate(params)
    frontier = [start]
    while frontier:
        config = frontier.pop()
        successors: list[Config] = []
        if config.is_decision_point():
            for kind in config.failed_kinds():
                successors.extend(_race(config.with_repairing(kind), params, total))
            if racing_decisions:
                successors.extend(_race(config, params, total))
        else:
            successors.extend(_race(config, params, total))
        for target in successors:
            if target not in index:
                index[target] = len(order)
                order.append(target)
                frontier.append(target)
    return order, index


def build_ctmdp(
    n: int,
    params: FTWCParameters | None = None,
    quality_threshold: int | None = None,
) -> FTWCModel:
    """Build the uniform CTMDP of the FTWC with ``n`` workstations per side.

    Decision points offer one ``g_<kind>`` transition per failed kind
    (the nondeterministic repair-unit assignment); every other
    configuration offers a single ``tau`` transition.  All rate
    functions share the uniform exit rate ``E(N)``.

    ``quality_threshold`` selects the required number of connected
    operational workstations (default ``n``: the premium property).
    """
    params = params or FTWCParameters(n=n)
    if params.n != n:
        raise ModelError("n argument and params.n disagree")
    total = uniform_rate(params)
    order, index = _explore(params)

    transitions: list[tuple[int, str, dict[int, float]]] = []
    for config in order:
        src = index[config]
        if config.is_decision_point():
            for kind in config.failed_kinds():
                rates = _race(config.with_repairing(kind), params, total)
                transitions.append(
                    (src, f"g_{kind}", {index[c]: r for c, r in rates.items()})
                )
        else:
            rates = _race(config, params, total)
            transitions.append((src, "tau", {index[c]: r for c, r in rates.items()}))

    ctmdp = CTMDP.from_transitions(
        num_states=len(order),
        transitions=transitions,
        initial=0,
        state_names=[c.describe() for c in order],
    )
    goal = np.array(
        [not premium(c, n, quality_threshold) for c in order], dtype=bool
    )
    return FTWCModel(ctmdp=ctmdp, configs=order, goal_mask=goal, params=params)


def build_ctmc(
    n: int,
    params: FTWCParameters | None = None,
    gamma: float = 10.0,
    quality_threshold: int | None = None,
) -> tuple[CTMC, list[Config], np.ndarray]:
    """Build the CTMC approximation of [13]: nondeterminism as fast races.

    At decision points the repair-unit assignment is replaced by a race
    of exponential transitions with rate ``gamma`` -- the modelling
    style of the original FTWC studies that the paper criticises.  The
    default of 10 follows the repairman's *inspection rate* of the
    classical PRISM ``cluster`` benchmark; larger values shrink the
    artefacts (and blow up the uniformization rate of the analysis).

    The artificial races let failures interleave with the (small but
    positive) decision delay, during which the repair unit is
    effectively idle -- paths that no scheduler of the CTMDP can
    realise.  This is why this chain *overestimates* even the
    worst-case CTMDP probabilities (Figure 4 of the paper).

    Returns ``(chain, configurations, goal mask)``.
    """
    params = params or FTWCParameters(n=n)
    if params.n != n:
        raise ModelError("n argument and params.n disagree")
    if gamma <= 0.0:
        raise ModelError("gamma must be positive")
    total = uniform_rate(params)
    order, index = _explore(params, racing_decisions=True)

    transitions: list[tuple[int, int, float]] = []
    for config in order:
        src = index[config]
        if config.is_decision_point():
            # The high-rate decision race.  Crucially, the failure clocks
            # keep running while the "decision" is pending -- in a CTMC
            # all transitions race.  These artificial interleavings (a
            # component failing during the infinitesimal assignment
            # delay, with the repair unit effectively idle) are exactly
            # the paths the paper identifies as the cause of the CTMC's
            # overestimation.
            for kind in config.failed_kinds():
                transitions.append((src, index[config.with_repairing(kind)], gamma))
            for target, rate in _race(config, params, total).items():
                if target != config:
                    transitions.append((src, index[target], rate))
        else:
            for target, rate in _race(config, params, total).items():
                if target != config:  # drop the uniformisation self-loop
                    transitions.append((src, index[target], rate))

    # Note: with-repairing intermediate configurations are already states
    # of the exploration (they are the non-decision flavours).
    chain = CTMC.from_transitions(len(order), transitions, initial=0)
    goal = np.array(
        [not premium(c, n, quality_threshold) for c in order], dtype=bool
    )
    return chain, order, goal
