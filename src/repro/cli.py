"""Command-line interface: regenerate the paper's tables and figures.

Usage examples::

    repro table1 --ns 1 2 4 8 --solve 100
    repro figure4 --n 4 --t-max 500 --points 11
    repro compositional --ns 1 2
    repro export --n 2 --out-prefix /tmp/ftwc2
    repro batch queries.json --workers 4
    repro serve --cache-dir ~/.cache/repro
    repro lint --model ftwc -n 1
    repro lint model.tra --format json --strict

Exit codes: most commands follow the 0 = success, 1 = domain failure,
2 = usage convention.  ``repro check`` adds 3 for quantitative queries
(``P=?``), which compute a value but no true/false verdict.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.analysis.experiments import (
    compositional_row,
    figure4_curves,
    table1_row,
)
from repro.analysis.tables import (
    render_compositional,
    render_figure4,
    render_table1,
)

__all__ = ["main", "build_parser", "package_version"]


def package_version() -> str:
    """The installed package version, falling back to the module constant."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except PackageNotFoundError:
        import repro

        return repro.__version__


def _add_cache_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="model registry disk cache directory (default: ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-disk-cache",
        action="store_true",
        help="keep the model registry in memory only",
    )


def _add_push_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--push-gateway",
        default=None,
        metavar="URL",
        help="POST metric snapshots to this fleet gateway ('repro obs-agg'); "
        "defaults to $REPRO_PUSH_GATEWAY; worker processes push their own "
        "snapshots too",
    )
    parser.add_argument(
        "--instance",
        default=None,
        help="source identity for pushed snapshots (default: <hostname>-<pid>)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Uniformity by construction: regenerate the DSN 2007 FTWC "
            "experiments (Table 1, Figure 4), export models, and serve "
            "timed-reachability queries."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {package_version()}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    table1 = sub.add_parser("table1", help="model sizes, runtimes, iterations (Table 1)")
    table1.add_argument("--ns", type=int, nargs="+", default=[1, 2, 4, 8, 16])
    table1.add_argument(
        "--solve",
        type=float,
        nargs="*",
        default=[100.0],
        help="time bounds (hours) to actually solve; iteration counts for "
        "100h and 30000h are always reported",
    )
    table1.add_argument("--epsilon", type=float, default=1e-6)

    figure4 = sub.add_parser("figure4", help="CTMDP worst case vs CTMC (Figure 4)")
    figure4.add_argument("--n", type=int, default=4)
    figure4.add_argument("--t-max", type=float, default=500.0)
    figure4.add_argument("--points", type=int, default=11)
    figure4.add_argument("--gamma", type=float, default=10.0)
    figure4.add_argument("--no-min", action="store_true", help="skip the inf curve")

    comp = sub.add_parser(
        "compositional", help="compositional-route statistics (Section 5)"
    )
    comp.add_argument("--ns", type=int, nargs="+", default=[1, 2])

    export = sub.add_parser("export", help="write FTWC models to .tra/.lab/.dot files")
    export.add_argument("--n", type=int, default=2)
    export.add_argument("--out-prefix", required=True)

    sweep = sub.add_parser("sweep", help="sensitivity sweeps over FTWC parameters")
    sweep.add_argument(
        "--kind", choices=["size", "repair", "failure"], default="repair"
    )
    sweep.add_argument("--n", type=int, default=2, help="cluster size (repair/failure sweeps)")
    sweep.add_argument(
        "--values",
        type=float,
        nargs="+",
        default=[0.5, 1.0, 2.0, 4.0],
        help="sizes (kind=size) or scale factors (kind=repair/failure)",
    )
    sweep.add_argument("--t", type=float, default=100.0)

    report = sub.add_parser("report", help="write a full Markdown reproduction report")
    report.add_argument("--out", required=True)
    report.add_argument(
        "--scale", choices=["quick", "default", "full"], default="default"
    )

    query = sub.add_parser(
        "check",
        help="evaluate a CSL-style query on the FTWC "
        '(labels: "no_premium", "premium"; exit 0 satisfied, 1 violated, '
        "3 quantitative/no verdict)",
    )
    query.add_argument("query", help='e.g. Pmax=? [ F<=100 "no_premium" ]')
    query.add_argument("--n", type=int, default=2)
    query.add_argument("--epsilon", type=float, default=1e-6)
    query.add_argument(
        "--ctmc", action="store_true",
        help="evaluate on the CTMC approximation of [13] instead",
    )
    query.add_argument(
        "--precompute",
        action="store_true",
        help="clamp qualitatively-decided (Prob0/Prob1) states before "
        "iterating in the CTMDP engines; values agree with the plain "
        "sweep within epsilon",
    )
    from repro.policy.options import add_save_policy_option

    add_save_policy_option(query)

    sub.add_parser(
        "selfcheck",
        help="run the cross-validation battery (independent implementations "
        "must agree)",
    )

    lint = sub.add_parser(
        "lint",
        help="static analysis of models: uniformity, alternation, numerics "
        "(exit 0 clean, 1 findings, 2 usage/load error)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="model files to lint (.tra transition files or .json model "
        "documents)",
    )
    lint.add_argument(
        "--model",
        choices=["ftwc", "ftwc-ctmc", "ftwc-compositional"],
        default=None,
        help="lint a builtin model family instead of (or besides) files; "
        "'ftwc-compositional' also runs the pipeline invariant pass "
        "(Lemmas 1-3, strict alternation)",
    )
    lint.add_argument("-n", type=int, default=2, help="cluster size for --model")
    lint.add_argument(
        "--format", choices=["text", "json"], default="text", dest="format_"
    )
    lint.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as findings (exit 1)",
    )
    lint.add_argument(
        "--graph",
        action="store_true",
        help="also run the whole-model graph pass (Qxxx codes: goal "
        "reachability, end-component traps, deadlocks, vanishing "
        "cycles); file goals come from a sibling .lab",
    )
    lint.add_argument(
        "--self",
        action="store_true",
        dest="self_",
        help="lint the repro source tree itself (Txxx codes: lock "
        "discipline, lock-order cycles, float equality, "
        "order-dependent rate sums); combinable with paths to .py "
        "files",
    )

    analyze = sub.add_parser(
        "analyze",
        help="whole-model graph analysis: SCC condensation, maximal end "
        "components, deadlocks and the qualitative Prob0/Prob1 sets",
    )
    analyze.add_argument(
        "target",
        help="model file (.tra/.json) or builtin family "
        "(ftwc, ftwc-ctmc, ftwc-compositional)",
    )
    analyze.add_argument("--n", type=int, default=2, help="cluster size for families")
    analyze.add_argument(
        "--goal",
        default=None,
        help="goal label for the qualitative sets (files: resolved from "
        "a sibling .lab; ftwc families default to 'no_premium')",
    )
    analyze.add_argument(
        "--format", choices=["text", "json"], default="text", dest="format_"
    )

    batch = sub.add_parser(
        "batch",
        help="answer a JSON file of timed-reachability queries through the "
        "model registry and batched solver",
    )
    batch.add_argument("queries", help="path to the batch file (JSON)")
    batch.add_argument(
        "--out", default=None, help="write the result document here (default: stdout)"
    )
    batch.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan model groups out over this many worker processes",
    )
    batch.add_argument(
        "--timeout", type=float, default=None, help="per-query wall-clock budget (s)"
    )
    batch.add_argument(
        "--precompute",
        action="store_true",
        help="qualitative precomputation in the CTMDP solver (clamp "
        "Prob0 states before iterating)",
    )
    add_save_policy_option(batch)
    _add_cache_arguments(batch)
    _add_push_arguments(batch)

    profile = sub.add_parser(
        "profile",
        help="run one traced query end-to-end and print a phase-attributed "
        "breakdown (build, prepare, Fox-Glynn, backward iteration)",
    )
    profile.add_argument(
        "family",
        nargs="?",
        choices=["ftwc", "ftwc-ctmc", "ftwc-compositional"],
        default="ftwc",
    )
    profile.add_argument("--n", type=int, default=2, help="cluster size")
    profile.add_argument("--t", type=float, default=100.0, help="time bound (hours)")
    profile.add_argument("--epsilon", type=float, default=1e-6)
    profile.add_argument("--objective", choices=["max", "min"], default="max")
    profile.add_argument("--goal", default="no_premium")
    profile.add_argument(
        "--allocations",
        action="store_true",
        help="track net allocation deltas per span (tracemalloc; slower)",
    )
    profile.add_argument(
        "--trace-out",
        default=None,
        help="also write the raw span trace as JSONL to this path",
    )
    profile.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan model groups out over worker processes (their spans are "
        "merged back into the profile trace)",
    )
    profile.add_argument(
        "--ns",
        type=int,
        nargs="+",
        default=None,
        help="profile a batch over these cluster sizes instead of a single "
        "--n query (needed to engage the worker pool)",
    )
    _add_cache_arguments(profile)

    serve = sub.add_parser(
        "serve",
        help="JSON-lines query server on stdin/stdout (one request per "
        "line, one response per line)",
    )
    serve.add_argument(
        "--timeout", type=float, default=None, help="per-query wall-clock budget (s)"
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan batch-request model groups out over worker processes",
    )
    serve.add_argument(
        "--http-port",
        type=int,
        default=None,
        help="additionally expose /metrics, /healthz and /traces over HTTP "
        "on this port (0 picks a free port)",
    )
    serve.add_argument(
        "--http-host",
        default="127.0.0.1",
        help="bind address for --http-port (default: 127.0.0.1)",
    )
    _add_cache_arguments(serve)
    _add_push_arguments(serve)

    obs_server = sub.add_parser(
        "obs-server",
        help="standalone HTTP telemetry server (/metrics, /healthz, "
        "/traces), optionally primed by answering a query workload",
    )
    obs_server.add_argument(
        "--port", type=int, default=8943, help="TCP port (0 picks a free port)"
    )
    obs_server.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    obs_server.add_argument(
        "--queries",
        default=None,
        help="answer this batch file (JSON, same shape as 'repro batch') "
        "under tracing before serving, so the endpoints have data",
    )
    obs_server.add_argument(
        "--duration",
        type=float,
        default=None,
        help="serve for this many seconds, then exit cleanly "
        "(default: until interrupted)",
    )
    obs_server.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the --queries workload",
    )
    _add_cache_arguments(obs_server)
    _add_push_arguments(obs_server)

    obs_agg = sub.add_parser(
        "obs-agg",
        help="fleet telemetry aggregator: scrape multiple telemetry servers "
        "and/or accept POST /push snapshots, re-exposing one federated "
        "/metrics (instance-labeled) and one rolled-up /healthz",
    )
    obs_agg.add_argument(
        "--scrape",
        action="append",
        default=[],
        metavar="[NAME=]URL",
        help="a telemetry server to poll; repeatable (bare URLs label their "
        "samples by host:port; NAME=URL picks the instance label)",
    )
    obs_agg.add_argument(
        "--port", type=int, default=9780, help="TCP port (0 picks a free port)"
    )
    obs_agg.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    obs_agg.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="scrape interval in seconds (default: 2)",
    )
    obs_agg.add_argument(
        "--timeout",
        type=float,
        default=1.0,
        help="per-target scrape timeout in seconds (default: 1)",
    )
    obs_agg.add_argument(
        "--staleness",
        type=float,
        default=10.0,
        help="seconds of silence before a source counts as stale and the "
        "rolled-up /healthz degrades (default: 10)",
    )
    obs_agg.add_argument(
        "--duration",
        type=float,
        default=None,
        help="serve for this many seconds, then exit cleanly "
        "(default: until interrupted)",
    )

    bench = sub.add_parser(
        "bench",
        help="benchmark-ledger tooling (the BENCH_*.json series in the "
        "repository root)",
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    trend = bench_sub.add_parser(
        "trend",
        help="trend every ledger metric across commits and flag regressions "
        "(exit 0 clean, 1 regressed, 2 usage/load error)",
    )
    trend.add_argument(
        "--ledger",
        nargs="*",
        default=None,
        metavar="BENCH_*.json",
        help="ledger files to analyze (default: ./BENCH_*.json)",
    )
    trend.add_argument(
        "--json", action="store_true", dest="json_", help="emit the JSON report"
    )
    trend.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="tolerated fractional degradation of the latest run vs the "
        "median of prior runs (default: 1.0, i.e. flag >100%% worse)",
    )
    trend.add_argument(
        "--min-history",
        type=int,
        default=None,
        help="prior runs required before a metric is checked (default: 2)",
    )

    from repro.policy.cli import add_policy_parser

    add_policy_parser(sub)

    return parser


def _cmd_table1(args: argparse.Namespace) -> int:
    rows = [
        table1_row(
            n,
            time_bounds=(100.0, 30000.0),
            solve_bounds=tuple(args.solve),
            epsilon=args.epsilon,
        )
        for n in args.ns
    ]
    print(render_table1(rows))
    return 0


def _cmd_figure4(args: argparse.Namespace) -> int:
    if args.points < 2:
        print("need at least two time points", file=sys.stderr)
        return 2
    step = args.t_max / (args.points - 1)
    ts = tuple(step * k for k in range(args.points))
    curves = figure4_curves(
        args.n, ts, gamma=args.gamma, include_min=not args.no_min
    )
    print(render_figure4(curves))
    return 0


def _cmd_compositional(args: argparse.Namespace) -> int:
    rows = [compositional_row(n) for n in args.ns]
    print(render_compositional(rows))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.sweeps import (
        sweep_cluster_size,
        sweep_failure_rate,
        sweep_repair_speed,
    )

    if args.kind == "size":
        points = sweep_cluster_size([int(v) for v in args.values], t=args.t)
        label = "N"
    elif args.kind == "repair":
        points = sweep_repair_speed(args.n, args.values, t=args.t)
        label = "repair-speed factor"
    else:
        points = sweep_failure_rate(args.n, args.values, t=args.t)
        label = "failure-rate factor"
    print(f"{label:>22s}  {'worst-case P':>14s}  {'states':>8s}  {'E':>8s}")
    for point in points:
        print(
            f"{point.parameter:22g}  {point.probability:14.6e}  "
            f"{point.states:8d}  {point.uniform_rate:8.4f}"
        )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import ReportScale, write_report

    scales = {
        "quick": ReportScale.quick(),
        "default": ReportScale(),
        "full": ReportScale.full(),
    }
    path = write_report(args.out, scales[args.scale])
    print(f"wrote {path}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.logic import check
    from repro.models.ftwc_direct import build_ctmc, build_ctmdp

    if args.ctmc:
        chain, _configs, goal = build_ctmc(args.n)
        model, mask = chain, goal
    else:
        built = build_ctmdp(args.n)
        model, mask = built.ctmdp, built.goal_mask
    labels = {"no_premium": mask, "premium": ~mask}
    result = check(
        args.query, model, labels, epsilon=args.epsilon,
        record_scheduler=bool(args.save_policy),
        precompute=args.precompute,
    )
    print(result)
    if result.certificate is not None:
        print(result.certificate.describe())
    if args.save_policy:
        code = _save_check_policy(args, result, model)
        if code != 0:
            return code
    if result.satisfied is None:
        # Quantitative queries (P=?) compute a value but no verdict; do
        # not conflate "no verdict" with "satisfied" (exit 0).
        return 3
    return 0 if result.satisfied else 1


def _save_check_policy(args: argparse.Namespace, result, model) -> int:
    """Persist the scheduler a ``repro check --save-policy`` run recorded."""
    from repro.engine import ModelRegistry, default_cache_dir
    from repro.engine.keys import model_key, normalize_spec
    from repro.errors import ReproError
    from repro.policy.artifact import PolicyArtifact
    from repro.policy.options import save_policy_artifacts

    solver_result = getattr(result, "solver_result", None)
    if solver_result is None or solver_result.decisions is None:
        print(
            "--save-policy: this query records no scheduler "
            "(CTMC model or untimed/steady-state query)",
            file=sys.stderr,
        )
        return 2
    spec = normalize_spec({"family": "ftwc", "n": args.n})
    path = result.query.path
    meta = {
        "model_key": model_key(spec),
        "model": dict(spec),
        "objective": solver_result.objective,
        "goal": path.goal.label,
        "t": solver_result.time_bound,
        "epsilon": args.epsilon,
        "value": result.value,
        "initial": int(model.initial),
    }
    safe = getattr(path, "safe", None)
    if safe is not None and not safe.is_true:
        meta["safe"] = safe.label
    artifact = PolicyArtifact(
        decisions=solver_result.decisions,
        meta=meta,
        certificate=solver_result.certificate,
    )
    registry = None
    if args.save_policy == "registry":
        registry = ModelRegistry(cache_dir=str(default_cache_dir()))
    try:
        records = save_policy_artifacts(args.save_policy, [artifact], registry)
    except (ReproError, OSError) as exc:
        print(f"--save-policy failed: {exc}", file=sys.stderr)
        return 2
    for record in records:
        print(f"saved policy {record['key'][:16]} -> {record['path']}", file=sys.stderr)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.lint import LintReport, lint_graph, lint_model, lint_path, lint_pipeline

    if not args.paths and args.model is None and not args.self_:
        print(
            "nothing to lint: pass model files, --model or --self",
            file=sys.stderr,
        )
        return 2

    reports: list[LintReport] = []
    if args.self_:
        from repro.tsan import lint_self

        reports.append(lint_self())
    for path in args.paths:
        try:
            reports.append(lint_path(path, graph=args.graph))
        except (ReproError, OSError, ValueError) as exc:
            print(f"cannot lint {path}: {exc}", file=sys.stderr)
            return 2

    if args.model is not None:
        from repro.models import ftwc, ftwc_direct

        target = f"{args.model}[n={args.n}]"
        if args.model == "ftwc":
            direct = ftwc_direct.build_ctmdp(args.n)
            report = LintReport(target=target, kind="ctmdp")
            report.extend(lint_model(direct.ctmdp, goal=direct.goal_mask))
            if args.graph:
                report.extend(lint_graph(direct.ctmdp, goal=direct.goal_mask))
        elif args.model == "ftwc-ctmc":
            chain, _configs, goal = ftwc_direct.build_ctmc(args.n)
            report = LintReport(target=target, kind="ctmc")
            report.extend(lint_model(chain, goal=goal))
            if args.graph:
                report.extend(lint_graph(chain, goal=goal))
        else:
            system = ftwc.build_system_imc(args.n)
            report = LintReport(target=target, kind="pipeline")
            report.extend(lint_pipeline(system.imc))
            if args.graph:
                report.extend(lint_graph(system.imc))
        reports.append(report)

    if args.format_ == "json":
        document = {
            "reports": [report.as_dict() for report in reports],
            "errors": sum(len(report.errors) for report in reports),
            "warnings": sum(len(report.warnings) for report in reports),
        }
        print(json.dumps(document, indent=1))
    else:
        print("\n".join(report.render_text() for report in reports))
    return max(report.exit_code(strict=args.strict) for report in reports)


def _cmd_analyze(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.errors import ReproError
    from repro.graph import analyze_model

    target = args.target
    goal = None
    try:
        if target in ("ftwc", "ftwc-ctmc", "ftwc-compositional"):
            from repro.models import ftwc, ftwc_direct

            mask = None
            if target == "ftwc":
                built = ftwc_direct.build_ctmdp(args.n)
                model, mask = built.ctmdp, built.goal_mask
            elif target == "ftwc-ctmc":
                model, _configs, mask = ftwc_direct.build_ctmc(args.n)
            else:
                model = ftwc.build_system_imc(args.n).imc
            if mask is not None:
                label = args.goal if args.goal is not None else "no_premium"
                labels = {"no_premium": mask, "premium": ~mask}
                if label not in labels:
                    print(
                        f"unknown goal label {label!r}; "
                        f"available: {sorted(labels)}",
                        file=sys.stderr,
                    )
                    return 2
                goal = labels[label]
            name = f"{target}[n={args.n}]"
        else:
            path = Path(target)
            if path.suffix == ".tra":
                from repro.io.tra import read_ctmc_tra, read_ctmdp_tra, scan_tra

                scan = scan_tra(path)
                model = (
                    read_ctmc_tra(path)
                    if scan.kind == "ctmc"
                    else read_ctmdp_tra(path)
                )
            elif path.suffix == ".json":
                from repro.io.json_io import load_model

                model = load_model(path)
            else:
                print(
                    f"cannot analyze {path}: unknown suffix {path.suffix!r} "
                    "(expected .tra/.json or a builtin family)",
                    file=sys.stderr,
                )
                return 2
            if args.goal is not None:
                from repro.io.tra import read_labels

                masks = read_labels(path.with_suffix(".lab"), model.num_states)
                if args.goal not in masks:
                    print(
                        f"no proposition {args.goal!r} in "
                        f"{path.with_suffix('.lab')}; "
                        f"declared: {sorted(masks)}",
                        file=sys.stderr,
                    )
                    return 2
                goal = masks[args.goal]
            else:
                from repro.lint import sibling_goal_mask

                goal = sibling_goal_mask(path, model.num_states)
            name = str(path)
    except (ReproError, OSError, ValueError) as exc:
        print(f"cannot analyze {target}: {exc}", file=sys.stderr)
        return 2

    analysis = analyze_model(model, goal=goal)
    if args.format_ == "json":
        document = {"target": name, **analysis.as_dict()}
        print(json.dumps(document, indent=1))
    else:
        print(f"{name}:")
        print(analysis.render_text())
    return 0


def _cmd_selfcheck(args: argparse.Namespace) -> int:
    from repro.analysis.validate import run_selfcheck

    outcomes = run_selfcheck()
    width = max(len(outcome.name) for outcome in outcomes)
    for outcome in outcomes:
        status = "PASS" if outcome.passed else "FAIL"
        print(f"[{status}] {outcome.name:<{width}}  {outcome.detail}")
    failed = sum(not outcome.passed for outcome in outcomes)
    print(f"{len(outcomes) - failed}/{len(outcomes)} checks passed")
    return 0 if failed == 0 else 1


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.io.dot import ctmdp_to_dot, write_dot
    from repro.io.tra import write_ctmdp_tra, write_labels
    from repro.models.ftwc_direct import build_ctmdp

    model = build_ctmdp(args.n)
    prefix = args.out_prefix
    write_ctmdp_tra(model.ctmdp, f"{prefix}.tra")
    write_labels(model.goal_mask, "no_premium", f"{prefix}.lab")
    if model.ctmdp.num_states <= 2000:
        write_dot(ctmdp_to_dot(model.ctmdp), f"{prefix}.dot")
    print(
        f"wrote {prefix}.tra ({model.ctmdp.num_states} states, "
        f"{model.ctmdp.num_transitions} transitions) and {prefix}.lab"
    )
    return 0


def _make_engine(args: argparse.Namespace):
    from repro.engine import QueryEngine, default_cache_dir

    if args.no_disk_cache:
        cache_dir = None
    elif args.cache_dir is not None:
        cache_dir = args.cache_dir
    else:
        cache_dir = str(default_cache_dir())
    return QueryEngine(
        cache_dir=cache_dir,
        workers=getattr(args, "workers", None),
        timeout=getattr(args, "timeout", None),
        precompute=getattr(args, "precompute", False),
        push_gateway=getattr(args, "push_gateway", None),
        instance=getattr(args, "instance", None),
    )


def _cmd_batch(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.errors import ModelError

    try:
        document = json.loads(Path(args.queries).read_text(encoding="utf-8"))
    except OSError as exc:
        print(f"cannot read {args.queries}: {exc}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"invalid JSON in {args.queries}: {exc}", file=sys.stderr)
        return 2
    if isinstance(document, list):
        records, defaults = document, None
    elif isinstance(document, dict) and isinstance(document.get("queries"), list):
        records, defaults = document["queries"], document.get("defaults")
    else:
        print(
            "batch file must be a JSON list of queries or an object with "
            "a 'queries' list (and optional 'defaults')",
            file=sys.stderr,
        )
        return 2

    engine = _make_engine(args)
    try:
        batch = engine.run_dicts(
            records, defaults=defaults, record_schedulers=bool(args.save_policy)
        )
    except ModelError as exc:
        print(f"invalid batch defaults: {exc}", file=sys.stderr)
        return 2
    document = batch.as_dict()
    if args.save_policy:
        from repro.errors import ReproError
        from repro.policy.options import save_policy_artifacts

        artifacts = [
            result.policy for result in batch.results if result.policy is not None
        ]
        try:
            stored = save_policy_artifacts(
                args.save_policy, artifacts, engine.registry
            )
        except (ReproError, OSError) as exc:
            print(f"--save-policy failed: {exc}", file=sys.stderr)
            return 2
        document["policies"] = stored
        print(f"stored {len(stored)} polic(y/ies)", file=sys.stderr)
    rendered = json.dumps(document, indent=1)
    if args.out:
        Path(args.out).write_text(rendered + "\n", encoding="utf-8")
        print(f"wrote {args.out} ({len(batch.results)} results)", file=sys.stderr)
    else:
        print(rendered)
    if batch.num_failed:
        print(f"{batch.num_failed} quer(y/ies) failed", file=sys.stderr)
        return 1
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.obs.profile import profile_query

    # Unlike batch/serve, profiling defaults to a memory-only registry so
    # the breakdown includes the build phase; pass --cache-dir to profile
    # the disk-load path instead.
    cache_dir = None if args.no_disk_cache else args.cache_dir
    try:
        report = profile_query(
            family=args.family,
            n=args.n,
            t=args.t,
            epsilon=args.epsilon,
            objective=args.objective,
            goal=args.goal,
            track_allocations=args.allocations,
            cache_dir=cache_dir,
            workers=args.workers,
            ns=args.ns,
        )
    except (ReproError, RuntimeError) as exc:
        print(f"profile failed: {exc}", file=sys.stderr)
        return 1
    print(report.render())
    if args.trace_out:
        report.tracer.write_jsonl(args.trace_out)
        print(f"wrote {args.trace_out} ({len(report.tracer.spans)} spans)", file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.engine import serve as engine_serve

    return engine_serve(
        engine=_make_engine(args),
        http_port=args.http_port,
        http_host=args.http_host,
    )


def _cmd_obs_server(args: argparse.Namespace) -> int:
    import time
    from pathlib import Path

    from repro.obs import tracing
    from repro.obs.http import SpanLog, TelemetryServer

    engine = _make_engine(args)
    span_log = SpanLog()
    try:
        server = TelemetryServer(
            engine.metrics, host=args.host, port=args.port, span_log=span_log
        )
    except OSError as exc:
        print(f"cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 1
    server.start()
    print(
        f"telemetry listening on {server.url} "
        "(endpoints: /metrics /healthz /traces)",
        file=sys.stderr,
    )
    try:
        if args.queries:
            try:
                document = json.loads(Path(args.queries).read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError) as exc:
                print(f"cannot read {args.queries}: {exc}", file=sys.stderr)
                return 2
            if isinstance(document, list):
                records, defaults = document, None
            elif isinstance(document, dict) and isinstance(document.get("queries"), list):
                records, defaults = document["queries"], document.get("defaults")
            else:
                print(f"{args.queries}: not a batch file", file=sys.stderr)
                return 2
            with tracing() as tracer:
                batch = engine.run_dicts(records, defaults=defaults)
            span_log.extend(tracer.as_dicts())
            print(
                f"answered {len(batch.results)} queries "
                f"({batch.num_failed} failed)",
                file=sys.stderr,
            )
        if args.duration is not None:
            time.sleep(max(0.0, args.duration))
        else:  # pragma: no cover - interactive path
            while True:
                time.sleep(3600.0)
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.stop()
    return 0


def _cmd_obs_agg(args: argparse.Namespace) -> int:
    import time

    from repro.obs.fleet import FleetAggregator, FleetStore, parse_target
    from repro.obs.http import TelemetryServer
    from repro.obs.metrics import MetricStore

    try:
        targets = [parse_target(spec) for spec in args.scrape]
    except ValueError as exc:
        print(f"bad --scrape target: {exc}", file=sys.stderr)
        return 2
    store = FleetStore(staleness_seconds=args.staleness)
    aggregator = FleetAggregator(
        targets,
        store=store,
        interval=args.interval,
        timeout=args.timeout,
    )
    try:
        server = TelemetryServer(
            MetricStore(),
            host=args.host,
            port=args.port,
            fleet=store,
            instance="gateway",
        )
    except OSError as exc:
        print(f"cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 1
    server.start()
    aggregator.start()
    scraped = ", ".join(instance for instance, _url in targets) or "none"
    print(
        f"fleet gateway listening on {server.url} "
        f"(scraping: {scraped}; POST {server.url}/push accepted)",
        file=sys.stderr,
    )
    try:
        if args.duration is not None:
            time.sleep(max(0.0, args.duration))
        else:  # pragma: no cover - interactive path
            while True:
                time.sleep(3600.0)
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        aggregator.stop()
        server.stop()
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.bench import DEFAULT_MIN_HISTORY, DEFAULT_THRESHOLD, LedgerError, analyze_ledgers

    if args.ledger:
        paths = [Path(spec) for spec in args.ledger]
    else:
        paths = sorted(Path.cwd().glob("BENCH_*.json"))
    if not paths:
        print("no ledgers found (looked for ./BENCH_*.json)", file=sys.stderr)
        return 2
    threshold = DEFAULT_THRESHOLD if args.threshold is None else args.threshold
    min_history = (
        DEFAULT_MIN_HISTORY if args.min_history is None else args.min_history
    )
    try:
        report = analyze_ledgers(paths, threshold=threshold, min_history=min_history)
    except LedgerError as exc:
        print(f"bench trend: {exc}", file=sys.stderr)
        return 2
    if args.json_:
        print(json.dumps(report.as_dict(), indent=1))
    else:
        print(report.render_text())
    return report.exit_code()


def _cmd_policy(args: argparse.Namespace) -> int:
    from repro.policy.cli import cmd_policy

    return cmd_policy(args)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Argument-parsing failures (including unknown subcommands) are
    reported via exit code 2, as is argparse convention; ``--version``
    and ``--help`` return 0.
    """
    try:
        args = build_parser().parse_args(argv)
    except SystemExit as exc:
        code = exc.code
        if code is None:
            return 0
        return code if isinstance(code, int) else 2
    handlers = {
        "table1": _cmd_table1,
        "figure4": _cmd_figure4,
        "compositional": _cmd_compositional,
        "export": _cmd_export,
        "sweep": _cmd_sweep,
        "report": _cmd_report,
        "check": _cmd_check,
        "selfcheck": _cmd_selfcheck,
        "lint": _cmd_lint,
        "analyze": _cmd_analyze,
        "batch": _cmd_batch,
        "profile": _cmd_profile,
        "serve": _cmd_serve,
        "obs-server": _cmd_obs_server,
        "obs-agg": _cmd_obs_agg,
        "bench": _cmd_bench,
        "policy": _cmd_policy,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
