"""``repro serve``: a JSON-lines query server over stdin/stdout.

One request per input line, one JSON response per output line (flushed
immediately), so the server composes with pipes, sockets via ``nc``, or
a supervising process.  The registry lives for the whole session:
the first query on a model builds it, every later query -- in the same
session or, with a disk cache, in any later one -- hits the cache.

Request shapes (the ``op`` field selects; a line without ``op`` is
treated as a single query):

``{"op": "query", "model": {...}, "t": 100.0, ...}``
    Answer one query; responds with the query's result record.
``{"op": "batch", "queries": [...], "defaults": {...}}``
    Answer a batch; responds with ``{"results": [...], "metrics": ...}``.
``{"op": "metrics"}``
    Snapshot of the session's engine metrics.  With
    ``"format": "prometheus"`` the snapshot is returned as
    ``{"text": ...}`` in the Prometheus exposition format.
``{"op": "ping"}``
    Liveness check; responds ``{"ok": true}``.
``{"op": "shutdown"}``
    Acknowledge and exit the loop.

Additionally, the literal request line ``/metrics`` (no JSON) answers
with the raw Prometheus text exposition -- it is self-terminating via
its ``# EOF`` marker -- so a scraper bridged onto the stream needs no
JSON handling at all.

Malformed input never terminates the loop: the offending line yields an
``{"error": ...}`` response and the server reads on.
"""

from __future__ import annotations

import json
import sys
from typing import Any, IO

from repro.engine.solver import QueryEngine

__all__ = ["serve"]


def _respond(stream: IO[str], payload: dict[str, Any]) -> None:
    stream.write(json.dumps(payload) + "\n")
    stream.flush()


def _handle(engine: QueryEngine, request: Any) -> tuple[dict[str, Any], bool]:
    """Process one request; returns ``(response, keep_running)``."""
    if not isinstance(request, dict):
        return {"error": "request must be a JSON object"}, True
    op = request.get("op", "query")
    if op == "ping":
        return {"ok": True}, True
    if op == "shutdown":
        return {"ok": True, "shutdown": True}, False
    if op == "metrics":
        if request.get("format") == "prometheus":
            return {"text": engine.metrics.prometheus()}, True
        return {"metrics": engine.metrics.as_dict()}, True
    if op == "batch":
        queries = request.get("queries")
        if not isinstance(queries, list):
            return {"error": "batch request needs a 'queries' list"}, True
        batch = engine.run_dicts(queries, defaults=request.get("defaults"))
        return batch.as_dict(), True
    if op == "query":
        record = {key: value for key, value in request.items() if key != "op"}
        batch = engine.run_dicts([record])
        return batch.results[0].as_dict(), True
    return {"error": f"unknown op {op!r}"}, True


def serve(
    engine: QueryEngine | None = None,
    input_stream: IO[str] | None = None,
    output_stream: IO[str] | None = None,
    http_port: int | None = None,
    http_host: str = "127.0.0.1",
) -> int:
    """Run the request loop until EOF or a ``shutdown`` request.

    Returns the process exit code (always 0; protocol-level errors are
    reported in-band so a misbehaving client cannot take the server
    down).

    With ``http_port`` set, a :class:`repro.obs.http.TelemetryServer`
    additionally exposes the session's metrics over HTTP (``/metrics``,
    ``/healthz``, ``/traces``) for the lifetime of the loop; ``0`` binds
    an ephemeral port.  The listener is shut down gracefully when the
    loop ends, whichever way it ends.
    """
    engine = engine if engine is not None else QueryEngine()
    source = input_stream if input_stream is not None else sys.stdin
    sink = output_stream if output_stream is not None else sys.stdout

    telemetry = None
    if http_port is not None:
        from repro.obs.http import TelemetryServer

        telemetry = TelemetryServer(
            engine.metrics, host=http_host, port=http_port
        ).start()
        print(f"telemetry listening on {telemetry.url}", file=sys.stderr)
    try:
        _serve_loop(engine, source, sink)
    finally:
        if telemetry is not None:
            telemetry.stop()
    return 0


def _serve_loop(engine: QueryEngine, source: IO[str], sink: IO[str]) -> None:
    for line in source:
        line = line.strip()
        if not line:
            continue
        if line == "/metrics":
            # Raw Prometheus exposition; scrapers detect completeness by
            # the trailing "# EOF" line, so no JSON framing is needed.
            sink.write(engine.metrics.prometheus())
            sink.flush()
            continue
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            _respond(sink, {"error": f"invalid JSON: {exc}"})
            continue
        try:
            response, keep_running = _handle(engine, request)
        except Exception as exc:  # pragma: no cover - defensive
            response, keep_running = {"error": f"{type(exc).__name__}: {exc}"}, True
        _respond(sink, response)
        if not keep_running:
            break
