"""Content-addressed model registry: build once, serve many queries.

The registry maps a model spec (see :mod:`repro.engine.keys`) to a
:class:`BuiltModel` carrying the constructed model, its goal mask, its
label dictionary and its transformation statistics.  Lookups resolve in
three stages:

1. **memory** -- an in-process dictionary keyed by the content address;
2. **disk** -- an optional cache directory holding a ``.tra`` round trip
   of the model (via :mod:`repro.io.tra`) plus a JSON sidecar with the
   spec, goal states and build statistics;
3. **build** -- the actual generator (:mod:`repro.models.ftwc_direct` or
   the compositional route through :func:`repro.models.ftwc.build_compositional`,
   which exercises ``imc.transform``).

Because the key is a hash of *all* construction parameters, a cache hit
is always sound: the cached model is byte-for-byte the model the spec
describes (the ``.tra`` format stores rates via ``repr`` and therefore
round-trips floats exactly), so analyses on cached and freshly built
models are bitwise-equal.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.core.ctmdp import CTMDP
from repro.ctmc.model import CTMC
from repro.engine.keys import canonical_json, model_key, normalize_spec
from repro.engine.metrics import EngineMetrics
from repro.errors import ModelError
from repro.io.tra import read_ctmc_tra, read_ctmdp_tra, write_ctmc_tra, write_ctmdp_tra
from repro.lint.sanitize import sanitize_enabled, sanitize_model
from repro.models import ftwc, ftwc_direct
from repro.obs import span
from repro.tsan.registry import guarded_by
from repro.tsan.runtime import monitored_lock

__all__ = ["BuiltModel", "ModelRegistry", "default_cache_dir", "describe_spec"]

_META_FORMAT = "repro-engine-cache"
_META_VERSION = 1


def default_cache_dir() -> Path:
    """The default on-disk cache location.

    ``$REPRO_CACHE_DIR`` wins if set; otherwise ``$XDG_CACHE_HOME/repro``
    or ``~/.cache/repro``.
    """
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


@dataclass
class BuiltModel:
    """A registry entry: the model plus everything queries need.

    Attributes
    ----------
    key:
        Content address of the generating spec.
    spec:
        The normalised spec the model was built from.
    kind:
        ``"ctmdp"`` or ``"ctmc"``.
    model:
        The built :class:`~repro.core.ctmdp.CTMDP` or
        :class:`~repro.ctmc.model.CTMC`.
    goal_mask:
        Boolean mask of the model's goal set (the non-premium states).
    labels:
        Named state sets queries may reference as their goal
        (``"no_premium"`` and ``"premium"`` for the FTWC families).
    stats:
        Transformation statistics: state/transition counts, the uniform
        rate where defined, and the seconds the original construction
        took (preserved across cache hits).
    source:
        Where this lookup was answered from: ``"build"``, ``"memory"``
        or ``"disk"``.
    """

    key: str
    spec: dict[str, Any]
    kind: str
    model: CTMDP | CTMC
    goal_mask: np.ndarray
    labels: dict[str, np.ndarray] = field(default_factory=dict)
    stats: dict[str, Any] = field(default_factory=dict)
    source: str = "build"

    def goal(self, label: str) -> np.ndarray:
        """The boolean mask of goal label ``label``."""
        try:
            return self.labels[label]
        except KeyError:
            known = ", ".join(sorted(self.labels)) or "<none>"
            raise ModelError(f"unknown goal label {label!r}; known labels: {known}") from None


@guarded_by("_lock", "_memory")
class ModelRegistry:
    """Two-level (memory, disk) content-addressed cache of built models.

    The in-process store is shared by ``repro serve``'s stdio loop and
    the telemetry endpoints' handler threads, so ``_memory`` is guarded
    by ``_lock``.  Builds and disk loads run *outside* the lock — they
    are slow, and the key is a content address, so a concurrent
    duplicate build resolves to an identical entry (last insert wins).
    """

    def __init__(
        self,
        cache_dir: str | Path | None = None,
        metrics: EngineMetrics | None = None,
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.metrics = metrics if metrics is not None else EngineMetrics()
        self._memory: dict[str, BuiltModel] = {}
        self._lock = monitored_lock("ModelRegistry._lock")

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, spec: Mapping[str, Any]) -> BuiltModel:
        """Resolve ``spec``: memory, then disk, then an actual build.

        With sanitization enabled (``REPRO_SANITIZE=1`` or the
        :func:`repro.lint.sanitizing` context manager), every entry
        crossing the registry boundary is re-linted; error findings
        raise :class:`~repro.errors.LintError`.  Memory hits are exempt
        -- they were checked when they entered the store.
        """
        normalized = normalize_spec(spec)
        key = model_key(normalized)
        with span("registry.get", family=normalized.get("family"), n=normalized.get("n")) as sp:
            with self._lock:
                cached = self._memory.get(key)
            if cached is not None:
                self.metrics.count("cache_hits_memory")
                cached.source = "memory"
                if sp is not None:
                    sp.annotate(source="memory", key=key)
                return cached
            loaded = self._load_from_disk(key)
            if loaded is not None:
                self.metrics.count("cache_hits_disk")
                self._sanitize(loaded)
                with self._lock:
                    self._memory[key] = loaded
                if sp is not None:
                    sp.annotate(source="disk", key=key)
                return loaded
            self.metrics.count("cache_misses")
            built = self._build(key, normalized)
            self._sanitize(built)
            with self._lock:
                self._memory[key] = built
            self._store_to_disk(built)
            if sp is not None:
                sp.annotate(source="build", key=key, states=built.model.num_states)
        return built

    def _sanitize(self, built: BuiltModel) -> None:
        """Opt-in lint gate for models entering the registry."""
        if not sanitize_enabled():
            return
        with self.metrics.timer("sanitize_seconds"):
            sanitize_model(
                built.model,
                goal=built.goal_mask,
                where=f"registry:{built.source}",
            )
        self.metrics.count("sanitize_checks")

    def __contains__(self, spec: Mapping[str, Any]) -> bool:
        key = model_key(spec)
        with self._lock:
            return key in self._memory

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def clear_memory(self) -> None:
        """Drop the in-process store (the disk cache is untouched)."""
        with self._lock:
            self._memory.clear()

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def _build(self, key: str, spec: dict[str, Any]) -> BuiltModel:
        family = spec["family"]
        params = ftwc_direct.FTWCParameters(n=spec["n"], **spec["params"])
        started = time.perf_counter()
        build_span = span("registry.build", family=family, n=spec["n"])
        with self.metrics.timer("build_seconds"), build_span:
            if family == "ftwc":
                direct = ftwc_direct.build_ctmdp(
                    spec["n"], params, quality_threshold=spec["quality_threshold"]
                )
                kind, model, goal = "ctmdp", direct.ctmdp, direct.goal_mask
            elif family == "ftwc-ctmc":
                chain, _configs, goal = ftwc_direct.build_ctmc(
                    spec["n"],
                    params,
                    gamma=spec["gamma"],
                    quality_threshold=spec["quality_threshold"],
                )
                kind, model = "ctmc", chain
            elif family == "ftwc-compositional":
                composed = ftwc.build_compositional(
                    spec["n"], params, minimize_intermediate=spec["minimize_intermediate"]
                )
                kind, model, goal = "ctmdp", composed.ctmdp, composed.goal_mask
            else:  # pragma: no cover - normalize_spec rejects unknown families
                raise ModelError(f"unknown model family {family!r}")
        build_seconds = time.perf_counter() - started
        self.metrics.count("models_built")

        stats: dict[str, Any] = {
            "states": model.num_states,
            "transitions": model.num_transitions,
            "build_seconds": build_seconds,
        }
        if kind == "ctmdp":
            stats["uniform_rate"] = float(model.uniform_rate())
        return BuiltModel(
            key=key,
            spec=spec,
            kind=kind,
            model=model,
            goal_mask=goal,
            labels={"no_premium": goal, "premium": ~goal},
            stats=stats,
            source="build",
        )

    # ------------------------------------------------------------------
    # Disk persistence
    # ------------------------------------------------------------------
    def _paths(self, key: str) -> tuple[Path, Path]:
        assert self.cache_dir is not None
        return self.cache_dir / f"{key}.tra", self.cache_dir / f"{key}.meta.json"

    def _store_to_disk(self, built: BuiltModel) -> None:
        if self.cache_dir is None:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        tra_path, meta_path = self._paths(built.key)
        with self.metrics.timer("disk_write_seconds"):
            if built.kind == "ctmdp":
                write_ctmdp_tra(built.model, tra_path)
            else:
                write_ctmc_tra(built.model, tra_path)
            meta = {
                "format": _META_FORMAT,
                "version": _META_VERSION,
                "key": built.key,
                "spec": built.spec,
                "kind": built.kind,
                "initial": int(built.model.initial),
                "num_states": int(built.model.num_states),
                "goal_states": [int(s) for s in np.flatnonzero(built.goal_mask)],
                "stats": built.stats,
            }
            meta_path.write_text(json.dumps(meta, indent=1), encoding="utf-8")
        self.metrics.count("disk_writes")

    def _load_from_disk(self, key: str) -> BuiltModel | None:
        if self.cache_dir is None:
            return None
        tra_path, meta_path = self._paths(key)
        if not (tra_path.exists() and meta_path.exists()):
            return None
        with self.metrics.timer("disk_load_seconds"):
            try:
                meta = json.loads(meta_path.read_text(encoding="utf-8"))
                if meta.get("format") != _META_FORMAT or meta.get("version") != _META_VERSION:
                    return None
                # Guard against hash collisions on truncated/corrupt sidecars.
                if model_key(meta["spec"]) != key:
                    return None
                if meta["kind"] == "ctmdp":
                    model: CTMDP | CTMC = read_ctmdp_tra(tra_path)
                else:
                    model = read_ctmc_tra(tra_path, initial=int(meta["initial"]))
                goal = np.zeros(int(meta["num_states"]), dtype=bool)
                goal[np.asarray(meta["goal_states"], dtype=np.int64)] = True
            except (ModelError, KeyError, ValueError, OSError, json.JSONDecodeError):
                # A corrupt cache entry degrades to a rebuild, never a crash.
                return None
        return BuiltModel(
            key=key,
            spec=meta["spec"],
            kind=meta["kind"],
            model=model,
            goal_mask=goal,
            labels={"no_premium": goal, "premium": ~goal},
            stats=dict(meta.get("stats", {})),
            source="disk",
        )

    # ------------------------------------------------------------------
    # Policy artifacts
    # ------------------------------------------------------------------
    # Extracted schedulers are content-addressed artifacts in their own
    # right (see :mod:`repro.policy.artifact`); the registry persists
    # them next to the models they were extracted from, under
    # ``<cache_dir>/policies/<policy_key>.rpol``.  Imports are lazy:
    # the policy package depends on the core solvers and most registry
    # users never touch policies.

    def _policy_dir(self) -> Path:
        if self.cache_dir is None:
            raise ModelError(
                "policy persistence needs a registry cache directory "
                "(this registry is memory-only)"
            )
        return self.cache_dir / "policies"

    def policy_path(self, key: str) -> Path:
        """Where the policy with content address ``key`` lives on disk."""
        return self._policy_dir() / f"{key}.rpol"

    def store_policy(self, artifact: "Any") -> Path:
        """Persist a :class:`~repro.policy.artifact.PolicyArtifact`.

        Returns the on-disk path.  Idempotent: the file is named after
        the artifact's content hash, so storing the same policy twice
        rewrites identical bytes.
        """
        from repro.policy.artifact import save_artifact

        path = self.policy_path(artifact.key)
        with self.metrics.timer("policy_write_seconds"):
            save_artifact(artifact, path)
        self.metrics.count("policies_stored")
        return path

    def load_policy(self, key: str) -> "Any":
        """Load a stored policy by content address (memory-mapped)."""
        from repro.policy.artifact import load_artifact

        path = self.policy_path(key)
        if not path.exists():
            raise ModelError(f"no stored policy with key {key!r}")
        with self.metrics.timer("policy_load_seconds"):
            artifact = load_artifact(path)
        self.metrics.count("policies_loaded")
        return artifact

    def list_policies(self) -> list[dict[str, Any]]:
        """Headers of every stored policy (cheap: no arrays are read)."""
        from repro.policy.artifact import read_header

        directory = self._policy_dir()
        if not directory.is_dir():
            return []
        records: list[dict[str, Any]] = []
        for path in sorted(directory.glob("*.rpol")):
            try:
                header = read_header(path)
            except ModelError:
                continue  # a corrupt artifact hides, it does not crash listings
            records.append({
                "key": path.stem,
                "path": str(path),
                "meta": header["meta"],
                "layout": header["layout"],
            })
        return records

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = str(self.cache_dir) if self.cache_dir is not None else "memory-only"
        return f"ModelRegistry({len(self)} in memory, cache={where})"


def describe_spec(spec: Mapping[str, Any]) -> str:
    """One-line human-readable rendering of a (normalised) spec."""
    return canonical_json(spec)
