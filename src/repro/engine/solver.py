"""Batched multi-query solver over the content-addressed registry.

:func:`run_batch` answers a list of :class:`~repro.engine.plan.Query`
records.  The batch is planned (grouped by shared ``(model, goal,
objective)`` setup, each group sorted by time bound), every group's
model is resolved through the registry (so repeated batches skip
construction entirely), and each group is answered against one prepared
solver: a single transition-matrix/goal-mask setup, one Fox-Glynn
computation per time bound.  Prepared solves are bitwise-identical to
independent :func:`repro.core.reachability.timed_reachability` calls --
batching changes the cost, never the answer.

Failure isolation: a query that raises (unknown goal label, numerical
failure, per-query timeout) produces an *error record*; the rest of the
batch is unaffected.  Groups over different models can fan out across a
process pool (``workers > 1``); each worker resolves its model through
the shared on-disk cache and ships its metrics back for aggregation.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.core.reachability import PreparedTimedReachability
from repro.ctmc.reachability import PreparedCTMCReachability
from repro.engine.metrics import EngineMetrics
from repro.engine.plan import Query, QueryGroup, plan_queries, query_from_dict
from repro.engine.registry import BuiltModel, ModelRegistry
from repro.lint.sanitize import sanitize_enabled, sanitize_model
from repro.numerics.foxglynn import poisson_right_truncation
from repro.obs import (
    NumericalCertificate,
    current_tracer,
    record_certificate,
    reset_subprocess_tracer,
    span,
    tracing,
)

__all__ = [
    "QueryResult",
    "BatchResult",
    "QueryTimeout",
    "run_batch",
    "run_batch_dicts",
    "QueryEngine",
]


class QueryTimeout(Exception):
    """A single query exceeded its wall-clock budget."""


@contextmanager
def _time_limit(seconds: float | None) -> Iterator[None]:
    """Raise :class:`QueryTimeout` if the body runs longer than ``seconds``.

    Implemented with ``SIGALRM``/``setitimer``, which only works on the
    main thread of a POSIX process; elsewhere (or with no limit) the
    body runs unguarded.  Process-pool workers execute tasks on their
    main thread, so per-query timeouts hold there too.
    """
    usable = (
        seconds is not None
        and seconds > 0.0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):  # pragma: no cover - trivial
        raise QueryTimeout()

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@dataclass
class QueryResult:
    """Outcome of one query, successful or failed.

    ``value`` is the probability from the model's initial state (``None``
    on failure); ``cache`` records where the model came from (``"build"``,
    ``"memory"`` or ``"disk"``); ``seconds`` is the solve wall-clock time
    of this query alone; ``certificate`` is the solver's numerical-health
    certificate (``None`` only for failed queries).
    """

    index: int
    query: Query | None
    value: float | None = None
    iterations: int | None = None
    seconds: float = 0.0
    model_key: str = ""
    cache: str | None = None
    error: str | None = None
    certificate: NumericalCertificate | None = None
    #: The extracted scheduler (a :class:`repro.policy.PolicyArtifact`)
    #: when the batch ran with ``record_schedulers``; ``None`` otherwise.
    policy: Any = None

    @property
    def ok(self) -> bool:
        """True iff the query produced a value."""
        return self.error is None

    def as_dict(self) -> dict[str, Any]:
        """JSON-compatible record (the shape ``repro batch`` emits).

        The ``policy`` key (the artifact's summary) appears only when a
        scheduler was recorded, keeping the historical record shape
        byte-stable for every other batch.
        """
        record = {
            "index": self.index,
            "query": self.query.as_dict() if self.query is not None else None,
            "value": self.value,
            "iterations": self.iterations,
            "seconds": self.seconds,
            "model_key": self.model_key,
            "cache": self.cache,
            "error": self.error,
            "certificate": (
                self.certificate.as_dict() if self.certificate is not None else None
            ),
        }
        if self.policy is not None:
            record["policy"] = self.policy.summary()
        return record


@dataclass
class BatchResult:
    """All results of one batch, in input order, plus engine metrics."""

    results: list[QueryResult]
    metrics: EngineMetrics = field(default_factory=EngineMetrics)

    def values(self) -> list[float | None]:
        """The per-query probabilities (``None`` where a query failed)."""
        return [result.value for result in self.results]

    @property
    def num_failed(self) -> int:
        return sum(not result.ok for result in self.results)

    def as_dict(self) -> dict[str, Any]:
        return {
            "results": [result.as_dict() for result in self.results],
            "metrics": self.metrics.as_dict(),
        }


def _error_results(
    group: QueryGroup, message: str, cache: str | None = None
) -> list[QueryResult]:
    return [
        QueryResult(
            index=index,
            query=query,
            model_key=group.model_key,
            cache=cache,
            error=message,
        )
        for index, query in group.members
    ]


def _policy_from_outcome(group, query, built, value, outcome, metrics):
    """Wrap a recorded scheduler into a provenance-carrying artifact.

    Also records the extraction metrics (``policies_extracted``,
    compressed/dense byte counters, the compression-ratio gauges) the
    observability glossary documents.
    """
    from repro.policy.artifact import PolicyArtifact

    decisions = outcome.decisions
    artifact = PolicyArtifact(
        decisions=decisions,
        meta={
            "model_key": group.model_key,
            "model": dict(group.spec),
            "objective": group.objective,
            "goal": group.goal,
            "t": query.t,
            "epsilon": query.epsilon,
            "value": value,
            "initial": int(built.model.initial),
        },
        certificate=outcome.certificate,
    )
    metrics.count("policies_extracted")
    nbytes = getattr(decisions, "nbytes", None)
    dense_nbytes = getattr(decisions, "dense_nbytes", None)
    if nbytes is not None and dense_nbytes is not None:
        metrics.count("policy_bytes_written", int(nbytes))
        metrics.count("policy_dense_bytes", int(dense_nbytes))
        ratio = float(decisions.compression_ratio)
        metrics.gauge("policy_last_compression_ratio", ratio)
        metrics.gauge("policy_compression_ratio_max", ratio)
    return artifact


def _solve_group(
    registry: ModelRegistry,
    group: QueryGroup,
    timeout: float | None,
    precompute: bool = False,
) -> list[QueryResult]:
    """Answer one group against a single prepared solver.

    ``precompute`` enables qualitative precomputation in the CTMDP
    solver (see :class:`PreparedTimedReachability`); CTMC groups ignore
    it.  Off by default so batched answers stay bitwise-identical to
    independent solver calls.
    """
    metrics = registry.metrics
    try:
        built = registry.get(group.spec)
    except Exception as exc:
        return _error_results(group, f"model build failed: {exc}")
    try:
        goal = built.goal(group.goal)
        if sanitize_enabled():
            with metrics.timer("sanitize_seconds"):
                sanitize_model(built.model, goal=goal, where="solver-prepare")
            metrics.count("sanitize_checks")
        with metrics.timer("prepare_seconds"), span(
            "solver.prepare", kind=built.kind, states=built.model.num_states
        ):
            if built.kind == "ctmdp":
                prepared: PreparedTimedReachability | PreparedCTMCReachability = (
                    PreparedTimedReachability(built.model, goal, precompute=precompute)
                )
            else:
                prepared = PreparedCTMCReachability(built.model, goal)
    except Exception as exc:
        return _error_results(group, f"{type(exc).__name__}: {exc}", cache=built.source)

    has_goal = bool(goal.any())
    results = []
    for index, query in group.members:
        started = time.perf_counter()
        policy = None
        try:
            with _time_limit(timeout), span(
                "solver.solve", t=query.t, objective=group.objective, kind=built.kind
            ):
                if built.kind == "ctmdp":
                    outcome = prepared.solve(
                        query.t,
                        query.epsilon,
                        group.objective,
                        record_scheduler=group.record_schedulers,
                    )
                    value = outcome.value(built.model.initial)
                    iterations = outcome.iterations
                    certificate = outcome.certificate
                    if group.record_schedulers and outcome.decisions is not None:
                        policy = _policy_from_outcome(
                            group, query, built, value, outcome, metrics
                        )
                else:
                    values = prepared.solve(query.t, query.epsilon)
                    value = float(values[built.model.initial])
                    iterations = (
                        poisson_right_truncation(prepared.e * query.t, query.epsilon)
                        if query.t > 0.0 and has_goal
                        else 0
                    )
                    certificate = prepared.last_certificate
            seconds = time.perf_counter() - started
            metrics.add_time("solve_seconds", seconds)
            metrics.count("foxglynn")
            metrics.count("iterations", iterations)
            if certificate is not None and certificate.states_eliminated:
                metrics.count(
                    "precompute_states_eliminated", certificate.states_eliminated
                )
            if certificate is not None:
                record_certificate(metrics, certificate)
            results.append(
                QueryResult(
                    index=index,
                    query=query,
                    value=value,
                    iterations=iterations,
                    seconds=seconds,
                    model_key=group.model_key,
                    cache=built.source,
                    certificate=certificate,
                    policy=policy,
                )
            )
        except QueryTimeout:
            results.append(
                QueryResult(
                    index=index,
                    query=query,
                    seconds=time.perf_counter() - started,
                    model_key=group.model_key,
                    cache=built.source,
                    error=f"query timed out after {timeout} s",
                )
            )
        except Exception as exc:
            results.append(
                QueryResult(
                    index=index,
                    query=query,
                    seconds=time.perf_counter() - started,
                    model_key=group.model_key,
                    cache=built.source,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
    return results


def _push_metrics(
    gateway: str,
    metrics: "EngineMetrics",
    instance: str | None = None,
    spans: Sequence[Mapping[str, Any]] | None = None,
) -> bool:
    """Push one snapshot to a fleet gateway; failures never propagate.

    The outcome is recorded in the *local* store (``fleet_pushes`` /
    ``fleet_push_failures``) so a scrape of the pushing process shows
    whether its gateway deliveries are getting through.
    """
    from repro.obs.fleet import push_snapshot

    ok = push_snapshot(gateway, metrics, instance=instance, spans=spans)
    metrics.count("fleet_pushes" if ok else "fleet_push_failures")
    return ok


def _worker_solve_group(
    group: QueryGroup,
    cache_dir: str | None,
    timeout: float | None,
    trace_id: str | None = None,
    precompute: bool = False,
    push_gateway: str | None = None,
) -> tuple[list[QueryResult], dict, dict | None]:
    """Process-pool entry point: solve one group in a fresh registry.

    The worker shares only the on-disk cache with the parent; its
    metrics snapshot is returned for aggregation.  When the parent runs
    under tracing it passes its ``trace_id``; the worker then records
    its own spans under that id and ships them back as the third tuple
    element (spans, the worker tracer's activation epoch, and the
    worker pid) for :meth:`Tracer.adopt` in the parent.  With a
    ``push_gateway`` the worker additionally pushes its own snapshot
    under its ``<hostname>-<pid>`` identity before returning, so a
    fleet gateway sees fan-out workers live instead of only the
    parent's post-merge aggregate.
    """
    # A fork-started worker inherits the parent's active tracer in the
    # module global; spans recorded there would vanish with the worker.
    reset_subprocess_tracer()
    # Under REPRO_SANITIZE the worker also inherits the parent's
    # observed lock-order graph (the monitor is a module singleton);
    # those edges were recorded by parent threads this process never
    # ran, and keeping them could report a T002 cycle no single process
    # observed.  Start the worker's observation from scratch, mirroring
    # the tracer reset above.
    if sanitize_enabled():
        from repro.tsan.runtime import lock_order_monitor

        lock_order_monitor().reset()
    registry = ModelRegistry(cache_dir=cache_dir)
    payload = None
    if trace_id is None:
        results = _solve_group(registry, group, timeout, precompute=precompute)
    else:
        with tracing(trace_id=trace_id) as tracer:
            results = _solve_group(registry, group, timeout, precompute=precompute)
            payload = {
                "spans": tracer.as_dicts(),
                "origin_epoch": tracer.origin_epoch,
                "pid": os.getpid(),
            }
    if push_gateway:
        _push_metrics(
            push_gateway,
            registry.metrics,
            spans=payload["spans"] if payload is not None else None,
        )
    return results, registry.metrics.as_dict(), payload


def run_batch(
    queries: Iterable[Query],
    registry: ModelRegistry | None = None,
    workers: int | None = None,
    timeout: float | None = None,
    record_schedulers: bool = False,
    precompute: bool = False,
    push_gateway: str | None = None,
    instance: str | None = None,
) -> BatchResult:
    """Answer a batch of queries; results come back in input order.

    Parameters
    ----------
    queries:
        The batch.  Order is preserved in ``BatchResult.results``.
    registry:
        Model cache to resolve specs through; a fresh memory-only
        registry by default.
    workers:
        With ``workers > 1`` and more than one model group, groups fan
        out over a process pool of that size.  Workers share the
        registry's *disk* cache (when configured) but not its memory.
    timeout:
        Optional per-query wall-clock budget in seconds; an overrunning
        query yields an error record, the batch continues.
    record_schedulers:
        Extract the optimal step scheduler of every CTMDP solve (in the
        compressed streaming format) and attach it to the result as a
        :class:`repro.policy.PolicyArtifact` under ``result.policy``.
    precompute:
        Run qualitative graph precomputation (Prob0 clamping) inside
        the CTMDP solver.  Off by default: clamped sweeps agree with
        the plain sweep only up to the solver epsilon, not bitwise.
    push_gateway:
        URL of a fleet push gateway (``repro obs-agg``); falls back to
        the ``REPRO_PUSH_GATEWAY`` environment variable.  When set, the
        batch's final metrics snapshot -- and, under fan-out, each
        worker's own snapshot -- is POSTed to the gateway's ``/push``
        so concurrent runs are observable live on one ``/metrics``.
        Delivery failures are counted locally, never raised.
    instance:
        Source identity for the push (default ``<hostname>-<pid>``).
    """
    if push_gateway is None:
        from repro.obs.fleet import push_gateway_from_env

        push_gateway = push_gateway_from_env()
    batch = list(queries)
    registry = registry if registry is not None else ModelRegistry()
    metrics = registry.metrics
    groups = plan_queries(batch, record_schedulers=record_schedulers)

    slots: list[QueryResult | None] = [None] * len(batch)
    if workers is not None and workers > 1 and len(groups) > 1:
        import concurrent.futures
        import multiprocessing

        cache_dir = str(registry.cache_dir) if registry.cache_dir is not None else None
        # Fork (where available) avoids re-importing __main__ in workers
        # and starts orders of magnitude faster; spawn is the fallback.
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
        pool_size = min(workers, len(groups))
        parent_tracer = current_tracer()
        trace_id = parent_tracer.trace_id if parent_tracer is not None else None
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=pool_size, mp_context=context
        ) as pool:
            futures = {
                pool.submit(
                    _worker_solve_group,
                    group,
                    cache_dir,
                    timeout,
                    trace_id,
                    precompute,
                    push_gateway,
                ): group
                for group in groups
            }
            for future in concurrent.futures.as_completed(futures):
                group = futures[future]
                try:
                    results, worker_metrics, trace_payload = future.result()
                    metrics.merge(worker_metrics)
                    if parent_tracer is not None and trace_payload is not None:
                        parent_tracer.adopt(
                            trace_payload["spans"],
                            origin_epoch=trace_payload["origin_epoch"],
                            attributes={"worker_pid": trace_payload["pid"]},
                        )
                except Exception as exc:
                    results = _error_results(group, f"worker failed: {exc}")
                for result in results:
                    slots[result.index] = result
    else:
        for group in groups:
            for result in _solve_group(registry, group, timeout, precompute=precompute):
                slots[result.index] = result

    results = [slot for slot in slots if slot is not None]
    metrics.count("queries_total", len(results))
    failed = sum(not result.ok for result in results)
    if failed:
        metrics.count("queries_failed", failed)
    if push_gateway:
        parent_tracer = current_tracer()
        _push_metrics(
            push_gateway,
            metrics,
            instance=instance,
            spans=parent_tracer.as_dicts() if parent_tracer is not None else None,
        )
    return BatchResult(results=results, metrics=metrics)


def run_batch_dicts(
    records: Sequence[Mapping[str, Any]],
    defaults: Mapping[str, Any] | None = None,
    registry: ModelRegistry | None = None,
    workers: int | None = None,
    timeout: float | None = None,
    record_schedulers: bool = False,
    precompute: bool = False,
    push_gateway: str | None = None,
    instance: str | None = None,
) -> BatchResult:
    """Like :func:`run_batch`, but over raw query dictionaries.

    Malformed records become error results at their batch position
    instead of aborting the batch -- the contract of the ``repro batch``
    and ``repro serve`` front-ends.
    """
    registry = registry if registry is not None else ModelRegistry()
    parsed: list[tuple[int, Query]] = []
    parse_errors: dict[int, str] = {}
    for index, record in enumerate(records):
        try:
            parsed.append((index, query_from_dict(record, defaults)))
        except Exception as exc:
            parse_errors[index] = f"invalid query: {exc}"

    inner = run_batch(
        [query for _index, query in parsed],
        registry=registry,
        workers=workers,
        timeout=timeout,
        record_schedulers=record_schedulers,
        precompute=precompute,
        push_gateway=push_gateway,
        instance=instance,
    )
    slots: list[QueryResult | None] = [None] * len(records)
    for (index, _query), result in zip(parsed, inner.results):
        result.index = index
        slots[index] = result
    for index, message in parse_errors.items():
        slots[index] = QueryResult(index=index, query=None, error=message)
    registry.metrics.count("queries_total", len(parse_errors))
    if parse_errors:
        registry.metrics.count("queries_failed", len(parse_errors))
    return BatchResult(
        results=[slot for slot in slots if slot is not None],
        metrics=registry.metrics,
    )


class QueryEngine:
    """Facade bundling a registry with batch execution defaults.

    The experiment harness and the CLI front-ends construct one engine
    and issue every query through it, so all entry points share the same
    cache and metrics stream::

        engine = QueryEngine()
        batch = engine.run([Query(model={"family": "ftwc", "n": 4}, t=100.0)])
        print(batch.results[0].value, engine.metrics.counter("cache_misses"))
    """

    def __init__(
        self,
        registry: ModelRegistry | None = None,
        cache_dir: str | None = None,
        workers: int | None = None,
        timeout: float | None = None,
        precompute: bool = False,
        push_gateway: str | None = None,
        instance: str | None = None,
    ) -> None:
        if registry is None:
            registry = ModelRegistry(cache_dir=cache_dir)
        self.registry = registry
        self.workers = workers
        self.timeout = timeout
        self.precompute = precompute
        self.push_gateway = push_gateway
        self.instance = instance

    @property
    def metrics(self) -> EngineMetrics:
        """The engine's shared metrics collector."""
        return self.registry.metrics

    def model(self, spec: Mapping[str, Any]) -> BuiltModel:
        """Resolve a model spec through the registry."""
        return self.registry.get(spec)

    def run(
        self, queries: Iterable[Query], record_schedulers: bool = False
    ) -> BatchResult:
        """Answer a batch of :class:`Query` records."""
        return run_batch(
            queries,
            registry=self.registry,
            workers=self.workers,
            timeout=self.timeout,
            record_schedulers=record_schedulers,
            precompute=self.precompute,
            push_gateway=self.push_gateway,
            instance=self.instance,
        )

    def run_dicts(
        self,
        records: Sequence[Mapping[str, Any]],
        defaults: Mapping[str, Any] | None = None,
        record_schedulers: bool = False,
    ) -> BatchResult:
        """Answer a batch of raw query dictionaries."""
        return run_batch_dicts(
            records,
            defaults=defaults,
            registry=self.registry,
            workers=self.workers,
            timeout=self.timeout,
            record_schedulers=record_schedulers,
            precompute=self.precompute,
            push_gateway=self.push_gateway,
            instance=self.instance,
        )
