"""Query-serving analysis engine over the reproduction pipeline.

The one-shot pipeline (build the FTWC, run Algorithm 1, print a number)
is wasteful the moment two queries touch the same model: a Figure-4
sweep asks eleven time bounds of one CTMDP, a service answers thousands.
This subsystem turns the pipeline into an engine:

* :mod:`repro.engine.keys` -- content-addressed model keys: every
  construction parameter is hashed into the model's address, so equal
  specs share work and unequal specs never collide.
* :mod:`repro.engine.registry` -- two-level (memory, disk) cache of
  built models with their goal masks and transformation statistics.
* :mod:`repro.engine.plan` -- query records and batch planning: group
  by shared ``(model, goal, objective)`` setup, sort each group by time
  bound.
* :mod:`repro.engine.solver` -- batched execution against prepared
  solvers, bitwise-equal to one-shot analysis, with process-pool
  fan-out, per-query timeouts and per-query error capture.
* :mod:`repro.engine.metrics` -- counters and timers surfaced on every
  batch and dumpable as JSON.
* :mod:`repro.engine.serve` -- the JSON-lines request loop behind
  ``repro serve``.

Typical usage::

    from repro.engine import Query, QueryEngine

    engine = QueryEngine()          # add cache_dir=... for a disk cache
    spec = {"family": "ftwc", "n": 4}
    batch = engine.run([Query(model=spec, t=float(t)) for t in range(0, 501, 50)])
    print(batch.values(), engine.metrics.as_dict())
"""

from repro.engine.keys import canonical_json, model_key, normalize_spec
from repro.engine.metrics import EngineMetrics
from repro.engine.plan import Query, QueryGroup, plan_queries, query_from_dict
from repro.engine.registry import BuiltModel, ModelRegistry, default_cache_dir
from repro.engine.serve import serve
from repro.engine.solver import (
    BatchResult,
    QueryEngine,
    QueryResult,
    QueryTimeout,
    run_batch,
    run_batch_dicts,
)

__all__ = [
    "BatchResult",
    "BuiltModel",
    "EngineMetrics",
    "ModelRegistry",
    "Query",
    "QueryEngine",
    "QueryGroup",
    "QueryResult",
    "QueryTimeout",
    "canonical_json",
    "default_cache_dir",
    "model_key",
    "normalize_spec",
    "plan_queries",
    "query_from_dict",
    "run_batch",
    "run_batch_dicts",
    "serve",
]
