"""Query records and batch planning for the multi-query solver.

A :class:`Query` asks for one timed-reachability probability: *on this
model* (a spec for :mod:`repro.engine.registry`), *for this goal label*,
*within this time bound*, *under this objective*, *at this precision*.
:func:`plan_queries` turns a flat batch of queries into an execution
plan: queries are grouped by ``(model key, goal, objective)`` -- the
setup those queries can share -- and each group is sorted by time bound,
so a Figure-4-style sweep over one model becomes a single group answered
against one prepared solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.engine.keys import model_key, normalize_spec
from repro.errors import ModelError

__all__ = ["Query", "QueryGroup", "query_from_dict", "plan_queries"]

_OBJECTIVES = ("max", "min")

#: Fields a query dictionary may carry (``model`` may also come from the
#: batch-level defaults).
_QUERY_FIELDS = ("model", "t", "goal", "objective", "epsilon")


@dataclass(frozen=True)
class Query:
    """One timed-reachability question against a registered model.

    ``objective`` distinguishes worst-case (``"max"``) from best-case
    (``"min"``) scheduling; it is ignored for CTMC models, which have no
    scheduler.  ``goal`` names a label of the built model
    (``"no_premium"``/``"premium"`` for the FTWC families).
    """

    model: Mapping[str, Any]
    t: float
    goal: str = "no_premium"
    objective: str = "max"
    epsilon: float = 1e-6

    def __post_init__(self) -> None:
        normalized = normalize_spec(self.model)
        object.__setattr__(self, "model", normalized)
        if not isinstance(self.t, (int, float)) or isinstance(self.t, bool) or self.t < 0.0:
            raise ModelError(f"query time bound must be a non-negative number, got {self.t!r}")
        object.__setattr__(self, "t", float(self.t))
        if self.objective not in _OBJECTIVES:
            raise ModelError(f"objective must be 'max' or 'min', got {self.objective!r}")
        if not isinstance(self.goal, str) or not self.goal:
            raise ModelError(f"goal must be a non-empty label, got {self.goal!r}")
        try:
            eps = float(self.epsilon)
        except (TypeError, ValueError):
            raise ModelError(f"epsilon must be a number, got {self.epsilon!r}") from None
        if not 0.0 < eps < 1.0:
            raise ModelError(f"epsilon must lie in (0, 1), got {eps}")
        object.__setattr__(self, "epsilon", eps)

    def model_key(self) -> str:
        """Content address of this query's model spec."""
        return model_key(self.model)

    def as_dict(self) -> dict[str, Any]:
        """JSON-compatible form (the normalised spec, all fields explicit)."""
        return {
            "model": dict(self.model),
            "t": self.t,
            "goal": self.goal,
            "objective": self.objective,
            "epsilon": self.epsilon,
        }


def query_from_dict(
    data: Mapping[str, Any], defaults: Mapping[str, Any] | None = None
) -> Query:
    """Parse one query dictionary, filling omitted fields from ``defaults``.

    Unknown fields are rejected so typos fail loudly rather than being
    silently ignored.
    """
    if not isinstance(data, Mapping):
        raise ModelError(f"a query must be a JSON object, got {type(data).__name__}")
    unknown = set(data) - set(_QUERY_FIELDS)
    if unknown:
        raise ModelError(f"unknown query field(s): {', '.join(sorted(unknown))}")
    merged: dict[str, Any] = dict(defaults or {})
    merged.update(data)
    if "model" not in merged:
        raise ModelError("query needs a 'model' spec (inline or via batch defaults)")
    if "t" not in merged:
        raise ModelError("query needs a time bound 't'")
    return Query(
        model=merged["model"],
        t=merged["t"],
        goal=merged.get("goal", "no_premium"),
        objective=merged.get("objective", "max"),
        epsilon=merged.get("epsilon", 1e-6),
    )


@dataclass
class QueryGroup:
    """Queries sharing one ``(model, goal, objective)`` setup.

    ``members`` holds ``(batch index, query)`` pairs sorted by time
    bound, so the group is answered as an ascending sweep.
    """

    model_key: str
    spec: dict[str, Any]
    goal: str
    objective: str
    members: list[tuple[int, Query]] = field(default_factory=list)
    #: Record each CTMDP solve's optimal step scheduler (compressed) and
    #: attach it to the query result as a policy artifact.
    record_schedulers: bool = False

    @property
    def time_bounds(self) -> list[float]:
        """The group's time bounds in solve order."""
        return [query.t for _index, query in self.members]


def plan_queries(
    queries: Iterable[Query] | Sequence[Query],
    record_schedulers: bool = False,
) -> list[QueryGroup]:
    """Group a batch by shared setup and sort each group by time bound.

    The returned groups are ordered deterministically (by model key,
    goal, objective); each group's members are sorted ascending by
    ``(t, batch index)``.  Batch indices refer to positions in the input
    iterable, letting callers restore the original order of results.
    With ``record_schedulers`` every group asks its CTMDP solves to
    extract the optimal step scheduler alongside the probability.
    """
    groups: dict[tuple[str, str, str], QueryGroup] = {}
    for index, query in enumerate(queries):
        key = query.model_key()
        group_id = (key, query.goal, query.objective)
        group = groups.get(group_id)
        if group is None:
            group = QueryGroup(
                model_key=key,
                spec=dict(query.model),
                goal=query.goal,
                objective=query.objective,
                record_schedulers=record_schedulers,
            )
            groups[group_id] = group
        group.members.append((index, query))
    for group in groups.values():
        group.members.sort(key=lambda member: (member[1].t, member[0]))
    return [groups[group_id] for group_id in sorted(groups)]
