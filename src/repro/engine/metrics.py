"""Instrumentation for the query engine: counters and wall-clock timers.

Every registry and solver operation records what it did -- cache hits
and misses, seconds spent building, loading, preparing and solving,
Fox-Glynn computations and backward-iteration counts.  The collected
metrics are surfaced on every batch result and are dumpable as JSON, so
a service operator can watch hit rates and solve latencies without
instrumenting anything herself.

Counter and timer names used by the engine (see ``docs/engine.md``):

=====================  =====================================================
counter                meaning
=====================  =====================================================
``models_built``       models constructed from scratch (cache misses)
``cache_hits_memory``  registry lookups answered from the in-memory store
``cache_hits_disk``    registry lookups answered from the on-disk cache
``cache_misses``       registry lookups that had to build
``disk_writes``        models persisted to the on-disk cache
``queries_total``      queries answered (including failed ones)
``queries_failed``     queries that produced an error record
``foxglynn``           Fox-Glynn truncation-point/weight computations
``iterations``         total backward value-iteration steps
=====================  =====================================================

Timers (seconds, accumulated): ``build_seconds``, ``disk_load_seconds``,
``disk_write_seconds``, ``prepare_seconds``, ``solve_seconds``.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Iterator, Mapping

__all__ = ["EngineMetrics"]


class EngineMetrics:
    """A bag of named counters and accumulated wall-clock timers."""

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.timers: dict[str, float] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def count(self, name: str, increment: int = 1) -> None:
        """Increment the counter ``name`` (created at zero on first use)."""
        self.counters[name] = self.counters.get(name, 0) + increment

    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` onto the timer ``name``."""
        self.timers[name] = self.timers.get(name, 0.0) + seconds

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Context manager timing its body into ``name``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - started)

    def merge(self, other: "EngineMetrics | Mapping") -> None:
        """Fold another metrics object (or its ``as_dict`` form) into this one.

        Used to aggregate the metrics of process-pool workers into the
        parent's collector.
        """
        if isinstance(other, EngineMetrics):
            counters, timers = other.counters, other.timers
        else:
            counters = other.get("counters", {})
            timers = other.get("timers", {})
        for name, value in counters.items():
            self.count(name, int(value))
        for name, value in timers.items():
            self.add_time(name, float(value))

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (zero if never incremented)."""
        return self.counters.get(name, 0)

    def seconds(self, name: str) -> float:
        """Accumulated seconds of timer ``name`` (zero if never used)."""
        return self.timers.get(name, 0.0)

    def as_dict(self) -> dict:
        """JSON-compatible snapshot ``{"counters": ..., "timers": ...}``."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "timers": {name: float(value) for name, value in sorted(self.timers.items())},
        }

    def dumps(self, indent: int | None = None) -> str:
        """The snapshot serialised as a JSON string."""
        return json.dumps(self.as_dict(), indent=indent)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EngineMetrics(counters={self.counters}, timers={self.timers})"
