"""Instrumentation for the query engine: counters and wall-clock timers.

Every registry and solver operation records what it did -- cache hits
and misses, seconds spent building, loading, preparing and solving,
Fox-Glynn computations and backward-iteration counts.  The collected
metrics are surfaced on every batch result, dumpable as JSON, and
exposed in the Prometheus text format by ``repro serve`` (a literal
``/metrics`` request line), so a service operator can watch hit rates
and solve latencies without instrumenting anything herself.

The mechanics live in :class:`repro.obs.MetricStore`; this module only
keeps the engine's historical name for it.  The counter/timer name
glossary lives in ``docs/observability.md``.
"""

from __future__ import annotations

from repro.obs.metrics import MetricStore

__all__ = ["EngineMetrics"]


class EngineMetrics(MetricStore):
    """The engine's counter/timer store (see ``docs/observability.md``)."""
