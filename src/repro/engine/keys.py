"""Content-addressed keys for model-construction specifications.

A *model spec* is a plain JSON dictionary naming a model family and its
construction parameters, e.g.::

    {"family": "ftwc", "n": 4}
    {"family": "ftwc-ctmc", "n": 4, "gamma": 10.0}
    {"family": "ftwc-compositional", "n": 2}

Specs are *normalised* -- every omitted parameter is filled in with its
default, so two spellings of the same model produce the same canonical
form -- and then hashed (SHA-256 over the canonical JSON encoding) into
the model's *key*.  The key is the address of the model in the registry:
two queries agree on a model if and only if their keys agree, and the
on-disk cache files are named after it.  Construction parameters that
change the built model (rates, the quality threshold, the CTMC race
rate ``gamma``) are all part of the spec, so a cached model can never be
served for parameters it was not built with.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any, Mapping

from repro.errors import ModelError

__all__ = [
    "MODEL_FAMILIES",
    "RATE_PARAMETERS",
    "normalize_spec",
    "canonical_json",
    "model_key",
]

#: Supported model families: the direct uCTMDP generator, the CTMC
#: approximation of [13], and the compositional (IMC) route.
MODEL_FAMILIES = ("ftwc", "ftwc-ctmc", "ftwc-compositional")

#: The six FTWC rate parameters with their defaults (cf.
#: :class:`repro.models.ftwc_direct.FTWCParameters`).
RATE_PARAMETERS: dict[str, float] = {
    "ws_fail": 1.0 / 500.0,
    "sw_fail": 1.0 / 4000.0,
    "bb_fail": 1.0 / 5000.0,
    "ws_repair": 2.0,
    "sw_repair": 0.25,
    "bb_repair": 0.125,
}


def _positive_int(spec: Mapping[str, Any], field: str) -> int:
    if field not in spec:
        raise ModelError(f"model spec is missing the required field {field!r}")
    value = spec[field]
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise ModelError(f"model spec field {field!r} must be a positive integer, got {value!r}")
    return int(value)


def _finite_positive_float(value: Any, field: str) -> float:
    try:
        number = float(value)
    except (TypeError, ValueError):
        raise ModelError(f"model spec field {field!r} must be a number, got {value!r}") from None
    if not math.isfinite(number) or number <= 0.0:
        raise ModelError(f"model spec field {field!r} must be finite and positive, got {value!r}")
    return number


def normalize_spec(spec: Mapping[str, Any]) -> dict[str, Any]:
    """Return the canonical form of ``spec`` with all defaults filled in.

    Raises :class:`~repro.errors.ModelError` on unknown families, unknown
    fields, and out-of-range parameters.  The result is a new dictionary
    whose JSON encoding (via :func:`canonical_json`) is deterministic.
    """
    if not isinstance(spec, Mapping):
        raise ModelError(f"model spec must be a mapping, got {type(spec).__name__}")
    family = spec.get("family")
    if family not in MODEL_FAMILIES:
        raise ModelError(
            f"unknown model family {family!r}; supported: {', '.join(MODEL_FAMILIES)}"
        )

    allowed = {"family", "n", "params", "quality_threshold"}
    if family == "ftwc-ctmc":
        allowed |= {"gamma"}
    if family == "ftwc-compositional":
        allowed |= {"minimize_intermediate"}
        allowed -= {"quality_threshold"}  # goal comes from the premium flags
    unknown = set(spec) - allowed
    if unknown:
        raise ModelError(
            f"unknown model spec field(s) for family {family!r}: {', '.join(sorted(unknown))}"
        )

    n = _positive_int(spec, "n")
    params_in = spec.get("params") or {}
    if not isinstance(params_in, Mapping):
        raise ModelError("model spec field 'params' must be a mapping of rate names")
    unknown_rates = set(params_in) - set(RATE_PARAMETERS)
    if unknown_rates:
        raise ModelError(f"unknown rate parameter(s): {', '.join(sorted(unknown_rates))}")
    params = {
        name: _finite_positive_float(params_in.get(name, default), name)
        for name, default in RATE_PARAMETERS.items()
    }

    normalized: dict[str, Any] = {"family": family, "n": n, "params": params}

    if family in ("ftwc", "ftwc-ctmc"):
        threshold = spec.get("quality_threshold")
        if threshold is not None:
            if isinstance(threshold, bool) or not isinstance(threshold, int):
                raise ModelError("quality_threshold must be an integer or null")
            if not 0 < threshold <= 2 * n:
                raise ModelError(f"quality_threshold must lie in 1..{2 * n}, got {threshold}")
        normalized["quality_threshold"] = threshold
    if family == "ftwc-ctmc":
        normalized["gamma"] = _finite_positive_float(spec.get("gamma", 10.0), "gamma")
    if family == "ftwc-compositional":
        normalized["minimize_intermediate"] = bool(spec.get("minimize_intermediate", True))

    return normalized


def canonical_json(spec: Mapping[str, Any]) -> str:
    """Deterministic JSON encoding of the normalised spec.

    Keys are sorted and separators fixed; floats use Python's shortest
    round-trip representation, so equal parameter values always encode
    identically.
    """
    return json.dumps(normalize_spec(spec), sort_keys=True, separators=(",", ":"))


def model_key(spec: Mapping[str, Any]) -> str:
    """The content address of ``spec``: SHA-256 of its canonical JSON."""
    return hashlib.sha256(canonical_json(spec).encode("ascii")).hexdigest()
