"""Discrete-time Markov chains and Markov decision processes.

The paper's background section places CTMDPs in the landscape of
DTMC/DTMDP models; internally, the timed-reachability algorithm for
uniform CTMDPs is a Poisson-weighted value iteration over exactly the
embedded DTMDP built here.  The module therefore serves both as the
discrete-time substrate of the library and as an independent
implementation the tests cross-check against.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

import numpy as np
import scipy.sparse as sp

from repro.errors import ModelError

__all__ = ["DTMC", "DTMDP"]


class DTMC:
    """A discrete-time Markov chain with a sparse stochastic matrix."""

    def __init__(
        self, probabilities: sp.spmatrix | np.ndarray, initial: int = 0
    ) -> None:
        matrix = sp.csr_matrix(probabilities, dtype=np.float64)
        n = matrix.shape[0]
        if matrix.shape != (n, n):
            raise ModelError("probability matrix must be square")
        if matrix.nnz and matrix.data.min() < 0.0:
            raise ModelError("probabilities must be non-negative")
        row_sums = np.asarray(matrix.sum(axis=1)).ravel()
        if not np.allclose(row_sums, 1.0, atol=1e-9):
            raise ModelError("every row must sum to one")
        if not 0 <= initial < n:
            raise ModelError("initial state out of range")
        self.probabilities = matrix
        self.initial = initial

    @property
    def num_states(self) -> int:
        """Number of states."""
        return self.probabilities.shape[0]

    def distribution_after(self, steps: int, initial: np.ndarray | None = None) -> np.ndarray:
        """State distribution after ``steps`` transitions."""
        if steps < 0:
            raise ModelError("step count must be non-negative")
        if initial is None:
            vec = np.zeros(self.num_states)
            vec[self.initial] = 1.0
        else:
            vec = np.asarray(initial, dtype=np.float64)
        for _ in range(steps):
            vec = vec @ self.probabilities
        return vec

    def bounded_reachability(self, goal: Iterable[int], steps: int) -> np.ndarray:
        """Probability, per state, to visit ``goal`` within ``steps`` steps."""
        mask = np.zeros(self.num_states, dtype=bool)
        for g in goal:
            mask[g] = True
        q = mask.astype(np.float64)
        for _ in range(steps):
            q = self.probabilities @ q
            q[mask] = 1.0
        return q


class DTMDP:
    """A discrete-time MDP with per-transition sparse branching.

    Storage mirrors :class:`repro.core.ctmdp.CTMDP`: one row of the
    ``T x S`` probability matrix per (state, action) pair, rows sorted by
    source state.
    """

    def __init__(
        self,
        num_states: int,
        sources: np.ndarray,
        actions: list[str],
        probabilities: sp.csr_matrix,
        initial: int = 0,
    ) -> None:
        if probabilities.shape != (len(actions), num_states):
            raise ModelError("probability matrix shape mismatch")
        row_sums = np.asarray(probabilities.sum(axis=1)).ravel()
        if len(actions) and not np.allclose(row_sums, 1.0, atol=1e-9):
            raise ModelError("every transition row must sum to one")
        if len(actions) and (np.diff(sources) < 0).any():
            raise ModelError("transitions must be sorted by source")
        if not 0 <= initial < num_states:
            raise ModelError("initial state out of range")
        self.num_states = num_states
        self.sources = sources.astype(np.int64)
        self.actions = actions
        self.probabilities = sp.csr_matrix(probabilities, dtype=np.float64)
        self.initial = initial
        counts = np.bincount(self.sources, minlength=num_states)
        self.choice_ptr = np.concatenate(([0], np.cumsum(counts)))

    @classmethod
    def from_transitions(
        cls,
        num_states: int,
        transitions: Iterable[tuple[int, str, Mapping[int, float]]],
        initial: int = 0,
    ) -> "DTMDP":
        """Build from ``(source, action, {target: probability})`` triples."""
        triples = sorted(transitions, key=lambda item: item[0])
        rows, cols, data = [], [], []
        sources, actions = [], []
        for row, (src, action, dist) in enumerate(triples):
            mass = sum(dist.values())
            if not math.isfinite(mass) or abs(mass - 1.0) > 1e-9:
                raise ModelError(f"distribution of ({src}, {action}) does not sum to one")
            sources.append(src)
            actions.append(action)
            for dst, p in dist.items():
                if not math.isfinite(p) or p < 0.0:
                    raise ModelError("probabilities must be non-negative and finite")
                if p > 0.0:
                    rows.append(row)
                    cols.append(dst)
                    data.append(float(p))
        matrix = sp.csr_matrix(
            (data, (rows, cols)), shape=(len(actions), num_states), dtype=np.float64
        )
        return cls(num_states, np.array(sources, dtype=np.int64), actions, matrix, initial)

    @property
    def num_transitions(self) -> int:
        """Number of (state, action) pairs."""
        return len(self.actions)

    def num_choices(self, state: int) -> int:
        """Number of actions available in ``state``."""
        return int(self.choice_ptr[state + 1] - self.choice_ptr[state])
