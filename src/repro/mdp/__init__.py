"""Discrete-time substrate: DTMC, DTMDP, value iteration."""

from repro.mdp.model import DTMC, DTMDP
from repro.mdp.value_iteration import bounded_reachability, unbounded_reachability

__all__ = ["DTMC", "DTMDP", "bounded_reachability", "unbounded_reachability"]
