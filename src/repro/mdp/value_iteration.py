"""Value iteration for discrete-time MDPs.

Step-bounded and unbounded reachability.  The step-bounded variant is
the discrete skeleton of Algorithm 1: the continuous-time algorithm is
this recursion with each step weighted by a Poisson probability.  The
per-state optimisation is the shared segmented reduction of
:mod:`repro.core.segments`.
"""

from __future__ import annotations

from time import perf_counter
from typing import Iterable

import numpy as np

from repro.core.segments import SegmentIndex, segment_reduce, validate_objective
from repro.errors import ModelError
from repro.mdp.model import DTMDP
from repro.obs import sweep_span

__all__ = ["bounded_reachability", "unbounded_reachability"]


def _mask(mdp: DTMDP, goal: Iterable[int] | np.ndarray) -> np.ndarray:
    if isinstance(goal, np.ndarray) and goal.dtype == bool:
        if goal.shape != (mdp.num_states,):
            raise ModelError("goal mask shape mismatch")
        return goal
    mask = np.zeros(mdp.num_states, dtype=bool)
    for g in goal:  # type: ignore[union-attr]
        mask[g] = True
    return mask


def bounded_reachability(
    mdp: DTMDP, goal: Iterable[int] | np.ndarray, steps: int, objective: str = "max"
) -> np.ndarray:
    """Optimal probability to reach ``goal`` within ``steps`` steps.

    States without actions are absorbing with value zero (unless they
    are goal states, which always carry value one).
    """
    validate_objective(objective)
    if steps < 0:
        raise ModelError("step bound must be non-negative")
    mask = _mask(mdp, goal)
    segments = SegmentIndex.from_choice_ptr(mdp.choice_ptr)

    with sweep_span(
        "vi.sweep", objective=objective, states=mdp.num_states,
        iterations=steps, kind="bounded",
    ) as recorder:
        record_steps = recorder.enabled
        q = mask.astype(np.float64)
        for _ in range(steps):
            step_started = perf_counter() if record_steps else 0.0
            values = mdp.probabilities @ q
            new_q = np.zeros(mdp.num_states)
            new_q[segments.nonempty] = segment_reduce(values, segments, objective)
            new_q[mask] = 1.0
            q = new_q
            if record_steps:
                recorder.record(perf_counter() - step_started)
    return q


def unbounded_reachability(
    mdp: DTMDP,
    goal: Iterable[int] | np.ndarray,
    objective: str = "max",
    tol: float = 1e-12,
    max_iterations: int = 1_000_000,
    precompute: bool = False,
) -> np.ndarray:
    """Optimal probability to ever reach ``goal`` (value iteration).

    With ``precompute=True`` the qualitative zero and one sets of the
    objective are clamped before iterating (sound for the unbounded
    objective: membership decides the value exactly), which removes the
    slowest-converging states from the iteration.
    """
    validate_objective(objective)
    mask = _mask(mdp, goal)
    segments = SegmentIndex.from_choice_ptr(mdp.choice_ptr)

    zero: np.ndarray | None = None
    one: np.ndarray | None = None
    if precompute:
        from repro.graph.qualitative import (
            prob0_exists,
            prob0_forall,
            prob1_exists,
            prob1_forall,
        )
        from repro.graph.structure import TransitionGraph

        graph = TransitionGraph.from_dtmdp(mdp)
        if objective == "max":
            zero = prob0_forall(graph, mask)
            one = prob1_exists(graph, mask)
        else:
            zero = np.asarray(prob0_exists(graph, mask))
            one = prob1_forall(graph, mask)

    with sweep_span(
        "vi.sweep", objective=objective, states=mdp.num_states, kind="unbounded"
    ) as recorder:
        record_steps = recorder.enabled
        q = mask.astype(np.float64)
        if one is not None:
            q[one] = 1.0
        for _ in range(max_iterations):
            step_started = perf_counter() if record_steps else 0.0
            values = mdp.probabilities @ q
            new_q = np.zeros(mdp.num_states)
            new_q[segments.nonempty] = segment_reduce(values, segments, objective)
            new_q[mask] = 1.0
            if one is not None:
                new_q[one] = 1.0
            if zero is not None:
                new_q[zero] = 0.0
            if record_steps:
                recorder.record(perf_counter() - step_started)
            if np.max(np.abs(new_q - q)) < tol:
                return new_q
            q = new_q
    return q
