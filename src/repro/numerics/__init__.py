"""Numerical substrates: Fox-Glynn Poisson weights and sparse helpers."""

from repro.numerics.foxglynn import (
    FoxGlynn,
    fox_glynn,
    poisson_pmf,
    poisson_right_truncation,
)

__all__ = ["FoxGlynn", "fox_glynn", "poisson_pmf", "poisson_right_truncation"]
