"""Fox-Glynn computation of Poisson probabilities.

The timed-reachability algorithm for uniform CTMDPs (Algorithm 1 of the
paper, originally from Baier/Haverkort/Hermanns/Katoen, TCS 2005) weights
each backward value-iteration step ``i`` with the Poisson probability

    psi(i) = e^{-E t} (E t)^i / i!

of observing exactly ``i`` jumps of a Poisson process with rate ``E``
within ``t`` time units.  Summing the recursion up to a *right truncation
point* ``R`` chosen such that the neglected tail mass is below the
requested precision turns the infinite sum into a finite one; a *left
truncation point* ``L`` additionally identifies the indices whose weight
is negligibly small.

This module implements the classical algorithm of

    B. L. Fox and P. W. Glynn, "Computing Poisson probabilities",
    Communications of the ACM 31(4):440-445, 1988,

in the formulation popularised by the probabilistic model checkers ETMCC,
PRISM and MRMC: the *finder* determines ``(L, R)`` from tail bounds, the
*weighter* evaluates the (unnormalised) weights by the stable two-sided
recurrence starting from the mode, and the total weight ``W`` is returned
so callers can normalise lazily (``psi(i) = weights[i - L] / W``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import NumericalError
from repro.obs import span

__all__ = ["FoxGlynn", "fox_glynn", "poisson_pmf", "poisson_right_truncation"]

#: Scale of the seed weight placed at the mode.  Following Fox and Glynn,
#: the seed is chosen huge so that the *smallest* retained weight stays
#: comfortably above the underflow threshold even for very peaked
#: distributions; normalisation by the total weight removes the scale.
_SEED_WEIGHT = 1.0e+280

#: sqrt(2 pi), used by the normal-tail bounds of the finder.
_SQRT_2PI = math.sqrt(2.0 * math.pi)

#: Below this parameter the finder walks the pmf directly instead of
#: using the normal-approximation corollaries, whose ``max(lam, 400)``
#: evaluation point wildly over-covers small parameters.
_SMALL_LAM = 400.0

#: Safety factor applied to the admissible tail mass in the direct
#: small-``lam`` finder.  The geometric bound is nearly sharp, so without
#: slack the retained mass would sit exactly at ``1 - epsilon/2`` and
#: downstream accumulated-error arguments (and the paper's "error below
#: epsilon" claim) would have no margin.  The factor costs only a couple
#: of extra indices per window.
_TAIL_SAFETY = 1.0e-4


@dataclass(frozen=True)
class FoxGlynn:
    """Result of the Fox-Glynn computation for a Poisson parameter ``lam``.

    Attributes
    ----------
    lam:
        The Poisson parameter ``E * t``.
    left, right:
        Left and right truncation points.  Indices ``i`` outside
        ``[left, right]`` carry total probability mass below the requested
        accuracy and are treated as zero.
    weights:
        Unnormalised weights for indices ``left .. right`` (inclusive);
        ``weights[i - left] / total_weight`` approximates the Poisson
        probability of ``i``.
    total_weight:
        Sum of all stored weights; the normalisation constant.
    """

    lam: float
    left: int
    right: int
    weights: np.ndarray
    total_weight: float

    def probability(self, i: int) -> float:
        """Return the (normalised) Poisson probability of index ``i``.

        Indices outside the truncation window yield ``0.0``.
        """
        if i < self.left or i > self.right:
            return 0.0
        return float(self.weights[i - self.left]) / self.total_weight

    def probabilities(self) -> np.ndarray:
        """Return the array of normalised probabilities for ``left..right``."""
        return self.weights / self.total_weight

    def __len__(self) -> int:
        return self.right - self.left + 1


def _right_tail_k(lam_for_bound: float, epsilon: float) -> float:
    """Find the smallest ``k`` bounding the right Poisson tail by ``epsilon/2``.

    This is Corollary 1 of Fox-Glynn: with
    ``a_lam = (1 + 1/lam) e^{1/16} sqrt(2)`` the tail beyond
    ``m + k sqrt(2 lam) + 3/2`` is at most

        a_lam d(k) e^{-k^2/2} / (k sqrt(2 pi))

    where ``d(k) = 1 / (1 - e^{-(2/9)(k sqrt(2 lam) + 3/2)})``.
    """
    a_lam = (1.0 + 1.0 / lam_for_bound) * math.exp(1.0 / 16.0) * math.sqrt(2.0)
    k = 3.0
    while True:
        d_k = 1.0 / (1.0 - math.exp(-(2.0 / 9.0) * (k * math.sqrt(2.0 * lam_for_bound) + 1.5)))
        bound = a_lam * d_k * math.exp(-k * k / 2.0) / (k * _SQRT_2PI)
        if bound <= epsilon / 2.0:
            return k
        k += 1.0
        if k > 1.0e6:  # pragma: no cover - defensive, cannot trigger for epsilon > 0
            raise NumericalError("Fox-Glynn right-tail search diverged")


def _left_tail_k(lam: float, epsilon: float) -> float:
    """Find the smallest ``k`` bounding the left Poisson tail by ``epsilon/2``.

    Corollary 2 of Fox-Glynn: with ``b_lam = (1 + 1/lam) e^{1/(8 lam)}``
    the mass below ``m - k sqrt(lam) - 3/2`` is at most
    ``b_lam e^{-k^2/2} / (k sqrt(2 pi))``.  Only valid for ``lam >= 25``.
    """
    b_lam = (1.0 + 1.0 / lam) * math.exp(1.0 / (8.0 * lam))
    k = 1.0
    while True:
        bound = b_lam * math.exp(-k * k / 2.0) / (k * _SQRT_2PI)
        if bound <= epsilon / 2.0:
            return k
        k += 1.0
        if k > 1.0e6:  # pragma: no cover - defensive
            raise NumericalError("Fox-Glynn left-tail search diverged")


def _small_lambda_right(lam: float, epsilon: float) -> int:
    """Direct right truncation point for ``lam < 400``.

    Walks the pmf upward from the mode and stops at the first index
    whose remaining tail is provably below the admissible mass: since
    ``p(j+1)/p(j) = lam/(j+1) <= r := lam/(i+1)`` for all ``j >= i``,
    the tail beyond ``i`` is bounded by the geometric sum

        sum_{j > i} p(j)  <=  p(i) * r / (1 - r).

    The bound avoids the cancellation trap of a ``1 - cdf`` walk (which
    cannot resolve tails below ~1e-16) and is essentially sharp, unlike
    the normal-approximation corollary evaluated at ``max(lam, 400)``
    which inflates small-``lam`` windows by an order of magnitude.
    """
    target = (epsilon / 2.0) * _TAIL_SAFETY
    mode = int(math.floor(lam))
    # Walk the pmf up from 0; e^{-lam} is representable for lam < 400
    # (e^{-400} ~ 1e-174) so the running pmf never underflows prematurely.
    p = math.exp(-lam)
    for i in range(1, mode + 1):
        p *= lam / i
    i = mode
    while True:
        ratio = lam / (i + 1.0)
        if ratio < 1.0 and p * ratio / (1.0 - ratio) <= target:
            return i
        p *= ratio
        i += 1
        if i > mode + 10_000_000:  # pragma: no cover - defensive
            raise NumericalError("Fox-Glynn small-lambda finder diverged")


def fox_glynn(lam: float, epsilon: float = 1.0e-6) -> FoxGlynn:
    """Compute Poisson truncation points and weights for parameter ``lam``.

    Parameters
    ----------
    lam:
        Poisson parameter (``E * t`` in the timed-reachability setting).
        Must be non-negative.
    epsilon:
        Total admissible truncation error.  The mass of all indices
        outside ``[left, right]`` is below ``epsilon``.

    Returns
    -------
    FoxGlynn
        Truncation points and unnormalised weights.

    Raises
    ------
    NumericalError
        If ``lam`` is negative, ``epsilon`` is out of ``(0, 1)``, or the
        weight recurrence underflows.
    """
    if lam < 0.0 or not math.isfinite(lam):
        raise NumericalError(f"Poisson parameter must be finite and >= 0, got {lam}")
    if not 0.0 < epsilon < 1.0:
        raise NumericalError(f"epsilon must lie in (0, 1), got {epsilon}")

    if lam == 0.0:
        # Degenerate distribution: all mass at zero jumps.
        return FoxGlynn(lam=0.0, left=0, right=0, weights=np.array([1.0]), total_weight=1.0)

    with span("foxglynn", lam=lam, epsilon=epsilon) as sp:
        result = _fox_glynn(lam, epsilon)
        if sp is not None:
            sp.annotate(left=result.left, right=result.right, window=len(result))
    return result


def _fox_glynn(lam: float, epsilon: float) -> FoxGlynn:
    mode = int(math.floor(lam))

    # --- Finder: right truncation point. -------------------------------
    # Fox-Glynn evaluate the right-tail bound at max(lam, 400), which is
    # wildly conservative below 400; there the direct pmf walk applies.
    if lam < _SMALL_LAM:
        right = _small_lambda_right(lam, epsilon)
    else:
        k_right = _right_tail_k(lam, epsilon)
        right = int(math.ceil(mode + k_right * math.sqrt(2.0 * lam) + 1.5))

    # --- Finder: left truncation point. --------------------------------
    if lam < 25.0:
        # For small parameters the left tail is not truncated; the
        # normal-approximation bound is invalid there.
        left = 0
    else:
        k_left = _left_tail_k(lam, epsilon)
        left = int(math.floor(mode - k_left * math.sqrt(lam) - 1.5))
        left = max(left, 0)

    if lam < 25.0:
        # Tiny parameters: evaluate the pmf directly.  With a total
        # weight of one, each stored probability is pointwise exact (to
        # machine precision) and the deficit of the window sum equals
        # the truncated tail mass, well below epsilon.
        indices = np.arange(left, right + 1)
        weights = np.array([poisson_pmf(int(i), lam) for i in indices])
        return FoxGlynn(lam=lam, left=left, right=right, weights=weights, total_weight=1.0)

    # --- Weighter: two-sided recurrence from the mode. ------------------
    size = right - left + 1
    weights = np.empty(size, dtype=np.float64)
    weights[mode - left] = _SEED_WEIGHT
    # Downward recurrence: w(i-1) = (i / lam) * w(i).
    for i in range(mode, left, -1):
        weights[i - 1 - left] = (i / lam) * weights[i - left]
    # Upward recurrence: w(i+1) = (lam / (i+1)) * w(i).
    for i in range(mode, right):
        weights[i + 1 - left] = (lam / (i + 1.0)) * weights[i - left]

    total = _kahan_sum_smallest_first(weights)
    if total <= 0.0 or not math.isfinite(total):
        raise NumericalError(
            f"Fox-Glynn weighter over/underflowed for lam={lam}, epsilon={epsilon}"
        )
    return FoxGlynn(lam=lam, left=left, right=right, weights=weights, total_weight=total)


def _kahan_sum_smallest_first(weights: np.ndarray) -> float:
    """Sum the weights adding small terms first, as prescribed by Fox-Glynn.

    The weights are unimodal (increasing up to the mode, decreasing
    after), so summing simultaneously from both ends towards the mode adds
    numbers of similar magnitude and limits round-off.
    """
    lo, hi = 0, len(weights) - 1
    total = 0.0
    while lo < hi:
        if weights[lo] <= weights[hi]:
            total += float(weights[lo])
            lo += 1
        else:
            total += float(weights[hi])
            hi -= 1
    total += float(weights[lo])
    return total


def poisson_pmf(i: int, lam: float) -> float:
    """Directly evaluate the Poisson pmf ``e^{-lam} lam^i / i!`` stably.

    Used for cross-checking the Fox-Glynn weights in tests and for tiny
    parameters where the full machinery is unnecessary.
    """
    if i < 0:
        return 0.0
    if lam == 0.0:
        return 1.0 if i == 0 else 0.0
    return math.exp(-lam + i * math.log(lam) - math.lgamma(i + 1.0))


def poisson_right_truncation(lam: float, epsilon: float = 1.0e-6) -> int:
    """Return only the right truncation point ``k(epsilon, E, t)``.

    This is the number of value-iteration steps Algorithm 1 performs; the
    paper reports it in the "# Iterations" columns of Table 1.
    """
    return fox_glynn(lam, epsilon).right
