"""Strongly connected components and maximal end components.

Tarjan's algorithm is implemented iteratively (explicit stack) so that
models with long chains -- the fault-tolerant workstation cluster grows
linearly in ``N`` -- never hit Python's recursion limit.  Component ids
are emitted in *reverse topological order* of the condensation: if the
condensation has an edge ``a -> b`` then ``a``'s id is strictly larger
than ``b``'s, which downstream code exploits for single-pass sweeps.

Maximal end components (MECs) follow the classical fixpoint of de
Alfaro: alternate SCC decomposition with the removal of choice rows
that leak mass outside their component, until nothing changes.  A
*closed* MEC additionally has every original choice row of every member
confined to the component -- no scheduler can leave it, which makes a
goal-free closed MEC a genuine probability trap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.graph.structure import TransitionGraph

__all__ = [
    "SCCDecomposition",
    "EndComponent",
    "strongly_connected_components",
    "condensation_edges",
    "bottom_components",
    "maximal_end_components",
]


@dataclass(frozen=True)
class SCCDecomposition:
    """Result of Tarjan's algorithm on a transition graph.

    Attributes
    ----------
    component:
        Per state, the id of its SCC.  Ids are in reverse topological
        order of the condensation DAG.
    num_components:
        Number of SCCs.
    """

    component: np.ndarray
    num_components: int

    def members(self, scc: int) -> np.ndarray:
        """States belonging to component ``scc``."""
        return np.flatnonzero(self.component == scc)

    def sizes(self) -> np.ndarray:
        """Per component, the number of member states."""
        return np.bincount(self.component, minlength=self.num_components)


def strongly_connected_components(graph: TransitionGraph) -> SCCDecomposition:
    """Iterative Tarjan SCC decomposition over the union adjacency."""
    return _tarjan(graph.union_adjacency, graph.num_states)


def _tarjan(adjacency: sp.csr_matrix, n: int) -> SCCDecomposition:
    indptr, indices = adjacency.indptr, adjacency.indices

    UNVISITED = -1
    index = np.full(n, UNVISITED, dtype=np.int64)
    lowlink = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    component = np.full(n, UNVISITED, dtype=np.int64)
    stack: list[int] = []
    next_index = 0
    next_component = 0

    for root in range(n):
        if index[root] != UNVISITED:
            continue
        # Each work item is (state, position into its successor slice).
        work: list[tuple[int, int]] = [(root, 0)]
        while work:
            state, pos = work.pop()
            if pos == 0:
                index[state] = lowlink[state] = next_index
                next_index += 1
                stack.append(state)
                on_stack[state] = True
            descended = False
            successors = indices[indptr[state]: indptr[state + 1]]
            while pos < len(successors):
                target = int(successors[pos])
                pos += 1
                if index[target] == UNVISITED:
                    work.append((state, pos))
                    work.append((target, 0))
                    descended = True
                    break
                if on_stack[target]:
                    lowlink[state] = min(lowlink[state], index[target])
            if descended:
                continue
            # All successors done: close the state.
            if lowlink[state] == index[state]:
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component[member] = next_component
                    if member == state:
                        break
                next_component += 1
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[state])
    return SCCDecomposition(component=component, num_components=next_component)


def condensation_edges(
    graph: TransitionGraph, scc: SCCDecomposition
) -> set[tuple[int, int]]:
    """Edges of the condensation DAG (between distinct components)."""
    adjacency = graph.union_adjacency.tocoo()
    src = scc.component[adjacency.row]
    dst = scc.component[adjacency.col]
    cross = src != dst
    return set(zip(src[cross].tolist(), dst[cross].tolist()))


def bottom_components(graph: TransitionGraph, scc: SCCDecomposition) -> list[int]:
    """Component ids without outgoing condensation edges.

    A bottom SCC can never be left; deadlock singletons qualify too.
    """
    has_exit = np.zeros(scc.num_components, dtype=bool)
    for a, _ in condensation_edges(graph, scc):
        has_exit[a] = True
    return [c for c in range(scc.num_components) if not has_exit[c]]


@dataclass(frozen=True)
class EndComponent:
    """A maximal end component of a nondeterministic model.

    Attributes
    ----------
    states:
        Sorted member states.
    rows:
        Choice rows (global row indices) staying inside the component.
    closed:
        True iff *every* original choice row of every member state stays
        inside -- no scheduler can leave the component.
    """

    states: np.ndarray
    rows: np.ndarray
    closed: bool = field(default=False)

    @property
    def num_states(self) -> int:
        """Number of member states."""
        return len(self.states)


def maximal_end_components(graph: TransitionGraph) -> list[EndComponent]:
    """MEC decomposition by iterated SCC refinement.

    Starts from all states carrying at least one choice row, repeatedly
    removes rows whose support leaves the row's current component and
    states left without rows, until stable.  Every surviving component
    is a maximal end component; singleton components survive only with
    a self-loop row.
    """
    n = graph.num_states
    num_rows = graph.num_rows
    row_sources = graph.row_sources
    indices = graph.support.indices
    entry_rows = np.repeat(np.arange(num_rows, dtype=np.int64), graph.row_degrees)
    # Empty rows (CTMC absorbing states) are not genuine choices.
    alive_rows = graph.row_degrees > 0
    alive_states = ~graph.deadlocks

    while True:
        scc = _tarjan(_restricted_adjacency(graph, alive_states, alive_rows), n)
        # An entry leaks if its target is dead or lives in a different
        # component than the row's source.
        leak = alive_rows[entry_rows] & (
            ~alive_states[indices]
            | (scc.component[indices] != scc.component[row_sources[entry_rows]])
        )
        next_rows = alive_rows & alive_states[row_sources]
        if leak.any():
            next_rows &= np.bincount(entry_rows[leak], minlength=num_rows) == 0
        has_row = np.zeros(n, dtype=bool)
        if next_rows.any():
            has_row[row_sources[next_rows]] = True
        next_states = alive_states & has_row
        if (next_rows == alive_rows).all() and (next_states == alive_states).all():
            break
        alive_rows, alive_states = next_rows, next_states

    mecs: list[EndComponent] = []
    if not alive_states.any():
        return mecs
    final = _tarjan(_restricted_adjacency(graph, alive_states, alive_rows), n)
    open_rows = np.flatnonzero(
        np.bincount(
            entry_rows[~alive_states[indices]], minlength=num_rows
        ).astype(bool)
    )
    # A state with any original row leaving the final member set makes
    # its component open (states dropped entirely keep the row count
    # honest: their rows all target outside by construction).
    open_sources = np.zeros(n, dtype=bool)
    open_sources[row_sources[open_rows]] = True
    for cid in np.unique(final.component[alive_states]):
        members = np.flatnonzero((final.component == cid) & alive_states)
        member_mask = np.zeros(n, dtype=bool)
        member_mask[members] = True
        rows = np.flatnonzero(alive_rows & member_mask[row_sources])
        if len(rows) == 0:
            continue
        closed = _is_closed(graph, member_mask, entry_rows)
        mecs.append(EndComponent(states=members, rows=rows, closed=closed))
    mecs.sort(key=lambda mec: int(mec.states[0]))
    return mecs


def _is_closed(
    graph: TransitionGraph, member_mask: np.ndarray, entry_rows: np.ndarray
) -> bool:
    """Whether no original choice row of any member leaves ``member_mask``."""
    escaping = member_mask[graph.row_sources[entry_rows]] & ~member_mask[
        graph.support.indices
    ]
    return not escaping.any()


def _restricted_adjacency(
    graph: TransitionGraph, states: np.ndarray, rows: np.ndarray
) -> sp.csr_matrix:
    """Union adjacency keeping only alive states and choice rows."""
    n = graph.num_states
    entry_rows = np.repeat(
        np.arange(graph.num_rows, dtype=np.int64), graph.row_degrees
    )
    sources = graph.row_sources[entry_rows]
    targets = graph.support.indices
    keep = rows[entry_rows] & states[sources] & states[targets]
    adjacency = sp.csr_matrix(
        (np.ones(int(keep.sum()), dtype=bool), (sources[keep], targets[keep])),
        shape=(n, n),
        dtype=bool,
    )
    adjacency.sum_duplicates()
    return adjacency
