"""Whole-model graph analysis: SCCs, end components, qualitative sets.

The quantitative pipeline of the paper answers *how probable*; this
package answers, on the support graph alone, *whether at all* and
*whether certainly* -- questions that are decidable without a single
floating-point operation.  Three consumers build on it:

* ``repro lint --graph`` turns structural defects into stable ``Qxxx``
  diagnostics (see :mod:`repro.lint.graph`);
* the solvers clamp known-zero states before value iteration and
  restrict their sweeps to the undecided set
  (:mod:`repro.core.reachability` and friends);
* ``repro analyze`` prints the condensation / MEC / qualitative summary
  for any builtin family or model file.
"""

from repro.graph.analyze import GraphAnalysis, analyze_model
from repro.graph.components import (
    EndComponent,
    SCCDecomposition,
    bottom_components,
    condensation_edges,
    maximal_end_components,
    strongly_connected_components,
)
from repro.graph.qualitative import (
    QualitativeAnalysis,
    as_state_mask,
    prob0_exists,
    prob0_forall,
    prob1_exists,
    prob1_forall,
    qualitative_analysis,
)
from repro.graph.structure import TransitionGraph, graph_of

__all__ = [
    "EndComponent",
    "GraphAnalysis",
    "QualitativeAnalysis",
    "SCCDecomposition",
    "TransitionGraph",
    "analyze_model",
    "as_state_mask",
    "bottom_components",
    "condensation_edges",
    "graph_of",
    "maximal_end_components",
    "prob0_exists",
    "prob0_forall",
    "prob1_exists",
    "prob1_forall",
    "qualitative_analysis",
    "strongly_connected_components",
]
