"""The full qualitative family Prob0E/Prob0A/Prob1E/Prob1A.

Each function answers a quantifier pair over schedulers on the support
graph alone -- no rates, no iteration towards a numeric fixpoint:

* :func:`prob0_forall` -- ``Pmax = 0``: *every* scheduler misses the
  goal (no path at all through safe states);
* :func:`prob0_exists` -- ``Pmin = 0``: *some* scheduler misses the
  goal with certainty (greatest fixpoint of goal-avoiding closedness);
* :func:`prob1_exists` -- ``Pmax = 1``: *some* scheduler hits the goal
  almost surely (the classical nested Prob1E fixpoint);
* :func:`prob1_forall` -- ``Pmin = 1``: *every* scheduler hits the goal
  almost surely (complement of the adversary's escape region).

All four accept an optional ``safe`` mask giving until semantics
``safe U goal``: states outside ``safe | goal`` are *blocked* -- their
value is 0 under every scheduler, so they enlarge the zero sets and
shrink the one sets.  The inner loops are vectorised: one boolean
sparse mat-vec per fixpoint round classifies every choice row at once
(`all targets in X` / `some target in X`), and a segmented reduction
over ``choice_ptr`` lifts rows back to states, making each round
O(transitions) instead of O(states * transitions).

The solver layer clamps these sets before value iteration
(see ``docs/qualitative.md`` for why only zero sets are sound clamps
for *time-bounded* objectives).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.graph.structure import TransitionGraph, graph_of

__all__ = [
    "QualitativeAnalysis",
    "prob0_forall",
    "prob0_exists",
    "prob1_exists",
    "prob1_forall",
    "qualitative_analysis",
    "as_state_mask",
]


def as_state_mask(
    graph: TransitionGraph, states: Iterable[int] | np.ndarray
) -> np.ndarray:
    """Coerce an index iterable or boolean mask to a boolean state mask."""
    array = (
        np.asarray(states)
        if isinstance(states, np.ndarray)
        else np.asarray(list(states), dtype=np.int64)
    )
    if array.dtype == bool:
        if array.shape != (graph.num_states,):
            raise ValueError(
                f"boolean mask has shape {array.shape}, "
                f"expected ({graph.num_states},)"
            )
        return array.copy()
    mask = np.zeros(graph.num_states, dtype=bool)
    mask[array.astype(np.int64)] = True
    return mask


def _row_counts(graph: TransitionGraph, x: np.ndarray) -> np.ndarray:
    """Per choice row, how many of its targets lie in ``x``."""
    return graph.support @ x.astype(np.int64)


def _state_any(graph: TransitionGraph, row_flags: np.ndarray) -> np.ndarray:
    """Per state, whether any of its choice rows is flagged."""
    result = np.zeros(graph.num_states, dtype=bool)
    nonempty = np.flatnonzero(np.diff(graph.choice_ptr) > 0)
    if len(nonempty) == 0:
        return result
    starts = graph.choice_ptr[nonempty]
    result[nonempty] = np.maximum.reduceat(row_flags, starts)
    return result


def _resolve_safe(
    graph: TransitionGraph, goal: np.ndarray, safe: np.ndarray | None
) -> np.ndarray:
    """The allowed (non-blocked) non-goal states."""
    if safe is None:
        return ~goal
    return as_state_mask(graph, safe) & ~goal


def prob0_forall(
    graph: TransitionGraph,
    goal: Iterable[int] | np.ndarray,
    safe: np.ndarray | None = None,
) -> np.ndarray:
    """States with ``Pmax(safe U goal) = 0`` (no scheduler reaches goal).

    Complement of backward reachability from the goal through allowed
    states: a state counts iff no path touches the goal before leaving
    ``safe``.
    """
    goal_mask = as_state_mask(graph, goal)
    allowed = _resolve_safe(graph, goal_mask, safe)
    reached = graph.backward_reachable(goal_mask, through=allowed)
    return ~reached


def prob0_exists(
    graph: TransitionGraph,
    goal: Iterable[int] | np.ndarray,
    safe: np.ndarray | None = None,
    *,
    with_witness: bool = False,
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """States with ``Pmin(safe U goal) = 0`` (some scheduler avoids goal).

    Greatest fixpoint of ``Z``: a non-goal state stays in ``Z`` iff it
    is blocked (outside ``safe``), has no choice at all, or has a choice
    whose entire support remains inside ``Z``.

    With ``with_witness=True`` additionally returns, per state in the
    set, the *local* index of one such goal-avoiding choice (-1 where
    none exists or none is needed: blocked, deadlocked, or outside the
    set).
    """
    goal_mask = as_state_mask(graph, goal)
    allowed = _resolve_safe(graph, goal_mask, safe)
    blocked = ~allowed & ~goal_mask
    degrees = graph.row_degrees
    absorbing = graph.deadlocks

    z = ~goal_mask
    while True:
        in_z = _row_counts(graph, z)
        row_stays = (in_z == degrees) & (degrees > 0)
        closed_choice = _state_any(graph, row_stays)
        new_z = ~goal_mask & (blocked | absorbing | closed_choice)
        if (new_z == z).all():
            break
        z = new_z

    if not with_witness:
        return z
    witness = np.full(graph.num_states, -1, dtype=np.int64)
    in_z = _row_counts(graph, z)
    row_stays = (in_z == degrees) & (degrees > 0)
    for state in np.flatnonzero(z & ~absorbing & ~blocked):
        lo, hi = graph.choice_ptr[state], graph.choice_ptr[state + 1]
        local = np.flatnonzero(row_stays[lo:hi])
        if len(local):
            witness[state] = int(local[0])
    return z, witness


def prob1_exists(
    graph: TransitionGraph,
    goal: Iterable[int] | np.ndarray,
    safe: np.ndarray | None = None,
) -> np.ndarray:
    """States with ``Pmax(safe U goal) = 1`` (some scheduler hits a.s.).

    The classical nested fixpoint: the outer loop shrinks a candidate
    set ``u``, the inner loop grows within ``u`` the states owning a
    choice that stays inside ``u`` while making progress towards the
    current ``v``.
    """
    goal_mask = as_state_mask(graph, goal)
    allowed = _resolve_safe(graph, goal_mask, safe)
    degrees = graph.row_degrees

    u = np.ones(graph.num_states, dtype=bool)
    while True:
        v = goal_mask.copy()
        while True:
            in_u = _row_counts(graph, u)
            in_v = _row_counts(graph, v)
            row_good = (in_u == degrees) & (in_v > 0) & (degrees > 0)
            grown = v | (allowed & _state_any(graph, row_good))
            if (grown == v).all():
                break
            v = grown
        if (v == u).all():
            return u
        u = v


def prob1_forall(
    graph: TransitionGraph,
    goal: Iterable[int] | np.ndarray,
    safe: np.ndarray | None = None,
) -> np.ndarray:
    """States with ``Pmin(safe U goal) = 1`` (every scheduler hits a.s.).

    The adversary keeps positive avoiding probability iff it can reach,
    moving through non-goal states, a region it can never be forced out
    of: the greatest fixpoint of goal-free closedness, with blocked and
    deadlocked states closed by definition (their value is 0 < 1).
    """
    goal_mask = as_state_mask(graph, goal)
    # The escape core is exactly the Pmin = 0 region: states where some
    # scheduler stays goal-free forever (blocked and deadlocked states
    # included -- their value is 0 under every scheduler).
    core = np.asarray(prob0_exists(graph, goal_mask, safe))
    avoid = graph.backward_reachable(core, through=~goal_mask)
    return ~avoid


@dataclass(frozen=True)
class QualitativeAnalysis:
    """The four qualitative sets of one (model, goal[, safe]) query."""

    prob0_forall: np.ndarray
    prob0_exists: np.ndarray
    prob1_exists: np.ndarray
    prob1_forall: np.ndarray

    def counts(self) -> dict[str, int]:
        """Cardinality of each set."""
        return {
            "prob0_forall": int(self.prob0_forall.sum()),
            "prob0_exists": int(self.prob0_exists.sum()),
            "prob1_exists": int(self.prob1_exists.sum()),
            "prob1_forall": int(self.prob1_forall.sum()),
        }


def qualitative_analysis(
    model: object,
    goal: Iterable[int] | np.ndarray,
    safe: np.ndarray | None = None,
) -> QualitativeAnalysis:
    """All four qualitative sets of ``model`` w.r.t. ``goal`` (and ``safe``)."""
    graph = graph_of(model)
    return QualitativeAnalysis(
        prob0_forall=prob0_forall(graph, goal, safe),
        prob0_exists=prob0_exists(graph, goal, safe),
        prob1_exists=prob1_exists(graph, goal, safe),
        prob1_forall=prob1_forall(graph, goal, safe),
    )
