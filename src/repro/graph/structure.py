"""A uniform transition-graph view over every model class.

Qualitative analysis (SCCs, end components, Prob0/Prob1 sets) only needs
the *support* of the transition relation -- which targets each choice
can move to -- never the actual rates or probabilities.  This module
projects each model class onto one shared shape:

* ``choice_ptr`` maps a state to its contiguous range of choice rows
  (CTMDP/DTMDP convention; CTMCs get exactly one row per state);
* ``support`` is a boolean ``rows x states`` CSR matrix whose row ``r``
  marks the possible targets of choice ``r``;
* states whose row range is empty are *deadlocks* (no behaviour at all).

IMCs are projected under the **closed** interpretation (urgency):
states with interactive transitions contribute one single-target row
per interactive transition and their Markov transitions are preempted;
stable Markov states contribute their Markov distribution as one row.
This matches how a complete IMC behaves and makes interactive cycles
(`Zeno` divergence candidates) visible as ordinary graph cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Any

import numpy as np
import scipy.sparse as sp

from repro.errors import ModelError

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from repro.core.ctmdp import CTMDP
    from repro.ctmc.model import CTMC
    from repro.imc.model import IMC
    from repro.mdp.model import DTMDP

__all__ = ["TransitionGraph", "graph_of"]


@dataclass(frozen=True)
class TransitionGraph:
    """Support graph of a stochastic model (rates erased).

    Attributes
    ----------
    num_states:
        Size of the state space.
    choice_ptr:
        ``num_states + 1`` offsets into the rows of ``support``: the
        choices of state ``s`` are rows ``choice_ptr[s]`` (inclusive) to
        ``choice_ptr[s + 1]`` (exclusive).
    support:
        Boolean CSR matrix of shape ``(num_rows, num_states)``; entry
        ``(r, t)`` is set iff choice ``r`` can move to state ``t``.
    initial:
        Index of the initial state.
    kind:
        The originating model class (``"ctmdp"``, ``"ctmc"``,
        ``"dtmdp"``, ``"imc"``).
    """

    num_states: int
    choice_ptr: np.ndarray
    support: sp.csr_matrix
    initial: int
    kind: str

    @property
    def num_rows(self) -> int:
        """Number of choice rows."""
        return self.support.shape[0]

    def rows_of(self, state: int) -> range:
        """The row range of ``state``."""
        return range(int(self.choice_ptr[state]), int(self.choice_ptr[state + 1]))

    def row_targets(self, row: int) -> np.ndarray:
        """Target states of choice row ``row``."""
        return self.support.indices[self.support.indptr[row]: self.support.indptr[row + 1]]

    @cached_property
    def row_sources(self) -> np.ndarray:
        """Source state of every choice row."""
        counts = np.diff(self.choice_ptr)
        return np.repeat(np.arange(self.num_states, dtype=np.int64), counts)

    @cached_property
    def row_degrees(self) -> np.ndarray:
        """Number of targets of every choice row."""
        return np.diff(self.support.indptr).astype(np.int64)

    @cached_property
    def deadlocks(self) -> np.ndarray:
        """Boolean mask of states without any outgoing edge.

        Covers both states without choice rows (CTMDP deadlocks) and
        states whose rows are all empty (CTMC absorbing states project
        to one empty row).
        """
        out_degree = np.bincount(
            self.row_sources, weights=self.row_degrees, minlength=self.num_states
        )
        return out_degree == 0

    @cached_property
    def union_adjacency(self) -> sp.csr_matrix:
        """Boolean state-to-state adjacency (union over all choices)."""
        n = self.num_states
        if self.num_rows == 0:
            return sp.csr_matrix((n, n), dtype=bool)
        rows = np.repeat(self.row_sources, self.row_degrees)
        cols = self.support.indices
        data = np.ones(len(cols), dtype=bool)
        adjacency = sp.csr_matrix((data, (rows, cols)), shape=(n, n), dtype=bool)
        adjacency.sum_duplicates()
        return adjacency

    @cached_property
    def reverse_adjacency(self) -> sp.csr_matrix:
        """Transpose of :attr:`union_adjacency` (predecessor lookups)."""
        return sp.csr_matrix(self.union_adjacency.T)

    def reachable_from(self, start: int | None = None) -> np.ndarray:
        """Forward-reachable set (boolean mask) from ``start`` (default initial)."""
        adjacency = self.union_adjacency
        seen = np.zeros(self.num_states, dtype=bool)
        origin = self.initial if start is None else int(start)
        seen[origin] = True
        stack = [origin]
        indptr, indices = adjacency.indptr, adjacency.indices
        while stack:
            state = stack.pop()
            for target in indices[indptr[state]: indptr[state + 1]]:
                if not seen[target]:
                    seen[target] = True
                    stack.append(int(target))
        return seen

    def backward_reachable(
        self, targets: np.ndarray, through: np.ndarray | None = None
    ) -> np.ndarray:
        """States with a path into ``targets``.

        ``through`` restricts the *intermediate* states that may be
        expanded: a state outside ``through`` (and outside ``targets``)
        is never added to the reached set.
        """
        reverse = self.reverse_adjacency
        reached = np.asarray(targets, dtype=bool).copy()
        stack = list(np.flatnonzero(reached))
        indptr, indices = reverse.indptr, reverse.indices
        while stack:
            state = stack.pop()
            for pred in indices[indptr[state]: indptr[state + 1]]:
                if reached[pred]:
                    continue
                if through is not None and not through[pred]:
                    continue
                reached[pred] = True
                stack.append(int(pred))
        return reached

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_ctmdp(cls, ctmdp: "CTMDP") -> "TransitionGraph":
        """Support view of a CTMDP (one row per state-action pair)."""
        support = _boolean_csr(ctmdp.rate_matrix)
        return cls(
            num_states=ctmdp.num_states,
            choice_ptr=np.asarray(ctmdp.choice_ptr, dtype=np.int64),
            support=support,
            initial=ctmdp.initial,
            kind="ctmdp",
        )

    @classmethod
    def from_dtmdp(cls, dtmdp: "DTMDP") -> "TransitionGraph":
        """Support view of a DTMDP (same storage convention as CTMDP)."""
        support = _boolean_csr(dtmdp.probabilities)
        return cls(
            num_states=dtmdp.num_states,
            choice_ptr=np.asarray(dtmdp.choice_ptr, dtype=np.int64),
            support=support,
            initial=dtmdp.initial,
            kind="dtmdp",
        )

    @classmethod
    def from_ctmc(cls, ctmc: "CTMC") -> "TransitionGraph":
        """Support view of a CTMC: exactly one choice row per state."""
        support = _boolean_csr(ctmc.rates)
        return cls(
            num_states=ctmc.num_states,
            choice_ptr=np.arange(ctmc.num_states + 1, dtype=np.int64),
            support=support,
            initial=ctmc.initial,
            kind="ctmc",
        )

    @classmethod
    def from_imc(cls, imc: "IMC") -> "TransitionGraph":
        """Support view of an IMC under the closed (urgency) interpretation.

        Each interactive transition of a state becomes its own
        single-target row (the environment -- here: the scheduler --
        resolves the nondeterminism); Markov transitions of states with
        interactive behaviour are preempted and contribute nothing.
        """
        rows: list[int] = []
        cols: list[int] = []
        sources: list[int] = []
        row = 0
        for state in range(imc.num_states):
            inter = imc.interactive_successors(state)
            if inter:
                for _, target in inter:
                    rows.append(row)
                    cols.append(target)
                    sources.append(state)
                    row += 1
                continue
            markov = imc.markov_successors(state)
            if markov:
                for _, target in markov:
                    rows.append(row)
                    cols.append(target)
                sources.append(state)
                row += 1
        counts = np.bincount(
            np.asarray(sources, dtype=np.int64), minlength=imc.num_states
        )
        support = sp.csr_matrix(
            (np.ones(len(cols), dtype=bool), (rows, cols)),
            shape=(row, imc.num_states),
            dtype=bool,
        )
        support.sum_duplicates()
        return cls(
            num_states=imc.num_states,
            choice_ptr=np.concatenate(([0], np.cumsum(counts))).astype(np.int64),
            support=support,
            initial=imc.initial,
            kind="imc",
        )


def _boolean_csr(matrix: sp.spmatrix) -> sp.csr_matrix:
    """Boolean support copy of a sparse value matrix."""
    csr = sp.csr_matrix(matrix)
    support = sp.csr_matrix(
        (np.ones(csr.nnz, dtype=bool), csr.indices.copy(), csr.indptr.copy()),
        shape=csr.shape,
        dtype=bool,
    )
    return support


def graph_of(model: Any) -> TransitionGraph:
    """Dispatch ``model`` to the matching :class:`TransitionGraph` builder."""
    from repro.core.ctmdp import CTMDP
    from repro.ctmc.model import CTMC
    from repro.imc.model import IMC
    from repro.mdp.model import DTMDP

    if isinstance(model, TransitionGraph):
        return model
    if isinstance(model, CTMDP):
        return TransitionGraph.from_ctmdp(model)
    if isinstance(model, CTMC):
        return TransitionGraph.from_ctmc(model)
    if isinstance(model, DTMDP):
        return TransitionGraph.from_dtmdp(model)
    if isinstance(model, IMC):
        return TransitionGraph.from_imc(model)
    raise ModelError(
        f"no transition-graph view for model type {type(model).__name__!r}"
    )
