"""Whole-model graph analysis: one call, one structured summary.

:func:`analyze_model` runs the complete static pipeline -- reachable
set, SCC condensation, MEC decomposition, deadlock detection and (when
a goal is known) the four qualitative sets -- and packages the result
for the ``repro analyze`` CLI, the graph lint pass and ad-hoc use.
Every stage runs under a tracer span (``graph.scc``, ``graph.mec``,
``graph.qualitative``) and reports counters into a metric store when
one is supplied, mirroring the conventions of the solver layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np

from repro.graph.components import (
    EndComponent,
    SCCDecomposition,
    bottom_components,
    maximal_end_components,
    strongly_connected_components,
)
from repro.graph.qualitative import (
    QualitativeAnalysis,
    as_state_mask,
    qualitative_analysis,
)
from repro.graph.structure import TransitionGraph, graph_of
from repro.obs import span

__all__ = ["GraphAnalysis", "analyze_model"]


@dataclass(frozen=True)
class GraphAnalysis:
    """Structural summary of one model (plus optional goal query)."""

    kind: str
    num_states: int
    num_rows: int
    num_edges: int
    initial: int
    reachable: np.ndarray
    scc: SCCDecomposition
    bottom_sccs: list[int]
    mecs: list[EndComponent]
    deadlocks: np.ndarray
    goal: np.ndarray | None = None
    qualitative: QualitativeAnalysis | None = field(default=None)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def num_reachable(self) -> int:
        """Number of states reachable from the initial state."""
        return int(self.reachable.sum())

    def closed_mecs(self) -> list[EndComponent]:
        """End components no scheduler can leave."""
        return [mec for mec in self.mecs if mec.closed]

    def trap_mecs(self) -> list[EndComponent]:
        """Reachable, goal-free, closed end components (probability traps)."""
        if self.goal is None:
            return []
        traps = []
        for mec in self.closed_mecs():
            if self.goal[mec.states].any():
                continue
            if not self.reachable[mec.states].any():
                continue
            traps.append(mec)
        return traps

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready summary document."""
        sizes = self.scc.sizes()
        document: dict[str, Any] = {
            "kind": self.kind,
            "states": self.num_states,
            "choice_rows": self.num_rows,
            "edges": self.num_edges,
            "initial": self.initial,
            "reachable_states": self.num_reachable,
            "deadlock_states": [int(s) for s in np.flatnonzero(self.deadlocks)],
            "scc": {
                "count": self.scc.num_components,
                "largest": int(sizes.max()) if len(sizes) else 0,
                "bottom": len(self.bottom_sccs),
                "trivial": int((sizes == 1).sum()),
            },
            "mec": {
                "count": len(self.mecs),
                "closed": len(self.closed_mecs()),
                "largest": max((mec.num_states for mec in self.mecs), default=0),
                "components": [
                    {
                        "states": [int(s) for s in mec.states],
                        "rows": len(mec.rows),
                        "closed": bool(mec.closed),
                    }
                    for mec in self.mecs
                ],
            },
        }
        if self.goal is not None and self.qualitative is not None:
            document["goal_states"] = int(self.goal.sum())
            document["qualitative"] = self.qualitative.counts()
            document["trap_mecs"] = [
                [int(s) for s in mec.states] for mec in self.trap_mecs()
            ]
        return document

    def render_text(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"model kind       {self.kind}",
            f"states           {self.num_states} "
            f"({self.num_reachable} reachable from {self.initial})",
            f"choice rows      {self.num_rows}",
            f"edges            {self.num_edges}",
            f"deadlock states  {int(self.deadlocks.sum())}",
        ]
        sizes = self.scc.sizes()
        lines.append(
            f"SCCs             {self.scc.num_components} "
            f"(largest {int(sizes.max()) if len(sizes) else 0}, "
            f"{len(self.bottom_sccs)} bottom, "
            f"{int((sizes == 1).sum())} trivial)"
        )
        lines.append(
            f"MECs             {len(self.mecs)} "
            f"({len(self.closed_mecs())} closed, largest "
            f"{max((mec.num_states for mec in self.mecs), default=0)})"
        )
        if self.goal is not None and self.qualitative is not None:
            counts = self.qualitative.counts()
            lines.append(f"goal states      {int(self.goal.sum())}")
            lines.append(
                "qualitative      "
                f"Prob0A={counts['prob0_forall']} "
                f"Prob0E={counts['prob0_exists']} "
                f"Prob1E={counts['prob1_exists']} "
                f"Prob1A={counts['prob1_forall']}"
            )
            traps = self.trap_mecs()
            if traps:
                lines.append(
                    f"trap MECs        {len(traps)} "
                    f"(e.g. states {[int(s) for s in traps[0].states[:6]]})"
                )
            else:
                lines.append("trap MECs        0")
        return "\n".join(lines)


def analyze_model(
    model: object,
    goal: Iterable[int] | np.ndarray | None = None,
    safe: np.ndarray | None = None,
    metrics: Any = None,
) -> GraphAnalysis:
    """Run the full static analysis pipeline on ``model``.

    ``goal`` (state indices or a boolean mask) switches on the
    qualitative family; ``safe`` refines it to until semantics.
    ``metrics`` is an optional :class:`repro.obs.MetricStore`.
    """
    graph: TransitionGraph = graph_of(model)
    with span("graph.build", kind=graph.kind, states=graph.num_states):
        reachable = graph.reachable_from()
        deadlocks = graph.deadlocks.copy()
    with span("graph.scc", states=graph.num_states):
        scc = strongly_connected_components(graph)
        bottom = bottom_components(graph, scc)
    with span("graph.mec", states=graph.num_states):
        mecs = maximal_end_components(graph)
    goal_mask: np.ndarray | None = None
    qualitative: QualitativeAnalysis | None = None
    if goal is not None:
        goal_mask = as_state_mask(graph, goal)
        with span("graph.qualitative", goal_states=int(goal_mask.sum())):
            qualitative = qualitative_analysis(graph, goal_mask, safe)
    if metrics is not None:
        metrics.count("graph_analyses")
        metrics.gauge("graph_scc_count", scc.num_components)
        metrics.gauge("graph_mec_count", len(mecs))
        metrics.gauge("graph_deadlock_count", int(deadlocks.sum()))
    return GraphAnalysis(
        kind=graph.kind,
        num_states=graph.num_states,
        num_rows=graph.num_rows,
        num_edges=int(graph.support.nnz),
        initial=graph.initial,
        reachable=reachable,
        scc=scc,
        bottom_sccs=bottom,
        mecs=mecs,
        deadlocks=deadlocks,
        goal=goal_mask,
        qualitative=qualitative,
    )
