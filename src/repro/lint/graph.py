"""Whole-model graph diagnostics (the ``Qxxx`` code family).

Where the per-model analyzers of :mod:`repro.lint.analyzers` inspect
local structure (rates, rows, masks), this pass runs the global graph
machinery of :mod:`repro.graph` -- reachability, maximal end components
and the qualitative Prob0/Prob1 sets -- and reports *model-level*
defects that no local check can see:

* ``Q001`` -- the goal set is entirely unreachable from the initial
  state: every probability query against it is trivially zero, which
  almost always means a mislabelled model;
* ``Q002`` -- a reachable, goal-free *closed* end component: once
  entered, (some scheduler of) the model can circulate there forever,
  so maximal reachability saturates below one (a probability trap);
* ``Q003`` -- a reachable deadlock state (no outgoing behaviour at
  all); goal states are exempt when a goal is known, since absorbing
  goals are the standard modelling idiom;
* ``Q004`` -- a cycle of interactive transitions in an IMC: under the
  closed-world urgency assumption the cycle is traversed in zero time
  (Zeno divergence), and the vanishing-state elimination of the
  uniform-CTMDP transformation cannot terminate on it.

The pass accepts every model class :func:`repro.graph.graph_of` knows
(CTMDP, CTMC, DTMDP, IMC) and degrades gracefully: goal-relative codes
(``Q001``, ``Q002``) are only produced when a goal set is supplied.
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np

from repro.graph.components import maximal_end_components
from repro.graph.qualitative import as_state_mask
from repro.graph.structure import TransitionGraph, graph_of
from repro.lint.diagnostics import Diagnostic, make_diagnostic

__all__ = ["lint_graph"]

#: How many offending states a diagnostic names explicitly.
_MAX_LISTED = 12


def _clip(states: np.ndarray) -> tuple[int, ...]:
    return tuple(int(s) for s in states[:_MAX_LISTED])


def _interactive_cycles(imc: Any) -> list[tuple[int, ...]]:
    """Cycles purely over interactive transitions, one per offending SCC.

    Built as a one-row-per-state support graph of the interactive
    relation alone, so the SCC decomposition of :mod:`repro.graph`
    applies directly: a vanishing cycle is a nontrivial component or an
    interactive self-loop.
    """
    import scipy.sparse as sp

    from repro.graph.components import strongly_connected_components

    n = imc.num_states
    sources = []
    targets = []
    for src, _action, dst in imc.interactive:
        sources.append(src)
        targets.append(dst)
    support = sp.csr_matrix(
        (np.ones(len(sources), dtype=bool), (sources, targets)),
        shape=(n, n),
        dtype=bool,
    )
    support.sum_duplicates()
    graph = TransitionGraph(
        num_states=n,
        choice_ptr=np.arange(n + 1, dtype=np.int64),
        support=support,
        initial=imc.initial,
        kind="imc",
    )
    scc = strongly_connected_components(graph)
    self_loops = np.zeros(n, dtype=bool)
    diagonal = support.diagonal()
    if diagonal.size:
        self_loops = np.asarray(diagonal, dtype=bool)
    cycles = []
    for component in range(scc.num_components):
        members = scc.members(component)
        if len(members) > 1 or self_loops[members[0]]:
            cycles.append(tuple(int(s) for s in members))
    return cycles


def lint_graph(
    model: Any,
    goal: Iterable[int] | np.ndarray | None = None,
    location: str = "",
) -> list[Diagnostic]:
    """Collect whole-model graph diagnostics for ``model``.

    Parameters
    ----------
    model:
        Any model with a transition-graph view (CTMDP, CTMC, DTMDP,
        IMC), or a :class:`~repro.graph.TransitionGraph` directly.
    goal:
        Optional goal set (mask or indices).  Without it the
        goal-relative codes ``Q001``/``Q002`` are skipped and ``Q003``
        reports every reachable deadlock.
    location:
        Tag recorded on each finding (e.g. a pipeline stage).
    """
    graph = graph_of(model)
    findings: list[Diagnostic] = []
    reachable = graph.reachable_from()

    goal_mask: np.ndarray | None = None
    if goal is not None:
        goal_mask = as_state_mask(graph, goal)

    # --- Q001: goal unreachable from the initial state -----------------
    if goal_mask is not None and goal_mask.any():
        if not bool((goal_mask & reachable).any()):
            findings.append(
                make_diagnostic(
                    "Q001",
                    f"none of the {int(goal_mask.sum())} goal state(s) is "
                    f"reachable from the initial state {graph.initial}: "
                    "every reachability probability is trivially zero",
                    states=_clip(np.flatnonzero(goal_mask)),
                    location=location,
                )
            )

    # --- Q003: reachable deadlock states -------------------------------
    dead = graph.deadlocks & reachable
    if goal_mask is not None:
        dead = dead & ~goal_mask
    if dead.any():
        dead_idx = np.flatnonzero(dead)
        suffix = " (non-goal)" if goal_mask is not None else ""
        findings.append(
            make_diagnostic(
                "Q003",
                f"{len(dead_idx)} reachable{suffix} deadlock state(s) with "
                "no outgoing behaviour; paths entering them stop forever",
                states=_clip(dead_idx),
                location=location,
            )
        )

    # --- Q004: interactive (vanishing-state) cycles in IMCs ------------
    if graph.kind == "imc" and hasattr(model, "interactive"):
        for cycle in _interactive_cycles(model):
            if not any(reachable[s] for s in cycle):
                continue
            findings.append(
                make_diagnostic(
                    "Q004",
                    f"interactive transitions cycle through "
                    f"{len(cycle)} state(s): traversed in zero time under "
                    "urgency (Zeno), vanishing-state elimination diverges",
                    states=_clip(np.asarray(cycle)),
                    location=location,
                )
            )

    # --- Q002: reachable goal-free closed end components ----------------
    if goal_mask is not None and goal_mask.any():
        for mec in maximal_end_components(graph):
            if not mec.closed:
                continue
            members = np.asarray(mec.states)
            if goal_mask[members].any() or not reachable[members].any():
                continue
            findings.append(
                make_diagnostic(
                    "Q002",
                    f"reachable closed end component of {len(members)} "
                    "state(s) contains no goal state: probability mass "
                    "entering it never reaches the goal",
                    states=_clip(members),
                    location=location,
                )
            )
    return findings
