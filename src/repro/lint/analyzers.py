"""Per-model-class static analyzers.

Each ``lint_*`` function collects *all* problems of one model in one
pass -- unlike the constructors, which reject bad models with exceptions
at the point of failure -- and returns them as sorted
:class:`~repro.lint.diagnostics.Diagnostic` lists (errors first).  The
analyzers are deliberately defensive: they re-check properties the
constructors already enforce (index ranges, positivity), because models
reach them through mutation, pickling and on-disk round trips, not only
through the constructors.

The IMC analyzer is the successor of the original ``repro.imc.checks``
linter; its legacy slug codes map onto the stable code space as

====================  ======
legacy slug           code
====================  ======
``zeno-cycle``        A001
``deadlock``          A002
``non-uniform``       U001
``visible-actions``   S003
``unreachable``       S001
====================  ======
"""

from __future__ import annotations

import math

import numpy as np
import scipy.sparse as sp

from repro.core.ctmdp import CTMDP
from repro.ctmc.model import CTMC
from repro.imc.model import IMC, TAU, StateClass
from repro.lint.diagnostics import Diagnostic, make_diagnostic, sort_diagnostics
from repro.mdp.model import DTMDP

__all__ = [
    "lint_imc",
    "lint_lts",
    "lint_ctmc",
    "lint_ctmdp",
    "lint_dtmdp",
    "lint_generator",
    "lint_strict_alternation",
    "lint_model",
]

#: Relative tolerance for uniformity comparisons (matches the models').
_UNIFORM_TOL = 1e-9


def _bad_rate(rate: float) -> bool:
    """True for rates no model may carry: NaN, inf, zero or negative."""
    return not (math.isfinite(rate) and rate > 0.0)


def _csr_numeric_findings(
    matrix: sp.csr_matrix, what: str, location: str = ""
) -> list[Diagnostic]:
    """N002/N003 findings over raw CSR data (shared by CTMC/CTMDP/DTMDP)."""
    findings: list[Diagnostic] = []
    data = matrix.data
    if data.size:
        finite = np.isfinite(data)
        if not finite.all():
            bad_rows = np.unique(_rows_of(matrix, np.flatnonzero(~finite)))
            findings.append(
                make_diagnostic(
                    "N002",
                    f"{int((~finite).sum())} non-finite entr(y/ies) in {what}",
                    states=bad_rows,
                    location=location,
                )
            )
        negative = finite & (data < 0.0)
        if negative.any():
            bad_rows = np.unique(_rows_of(matrix, np.flatnonzero(negative)))
            findings.append(
                make_diagnostic(
                    "N002",
                    f"{int(negative.sum())} negative entr(y/ies) in {what}",
                    states=bad_rows,
                    location=location,
                )
            )
        explicit_zero = finite & (data == 0.0)
        if explicit_zero.any():
            findings.append(
                make_diagnostic(
                    "N003",
                    f"{int(explicit_zero.sum())} explicitly stored zero(s) in "
                    f"{what}; call eliminate_zeros()",
                    location=location,
                )
            )
    if matrix.nnz and not matrix.has_canonical_format:
        findings.append(
            make_diagnostic(
                "N003",
                f"{what} is not in canonical CSR form (unsorted or duplicate "
                "column indices); call sum_duplicates()",
                location=location,
            )
        )
    if matrix.nnz:
        indices = matrix.indices
        out = (indices < 0) | (indices >= matrix.shape[1])
        if out.any():
            findings.append(
                make_diagnostic(
                    "S002",
                    f"{int(out.sum())} column ind(ex/ices) of {what} outside "
                    f"0..{matrix.shape[1] - 1}",
                    location=location,
                )
            )
    return findings


def _rows_of(matrix: sp.csr_matrix, data_positions: np.ndarray) -> np.ndarray:
    """Map positions in ``matrix.data`` to their CSR row indices."""
    return np.searchsorted(matrix.indptr, data_positions, side="right") - 1


# ---------------------------------------------------------------------------
# IMC (and LTS)
# ---------------------------------------------------------------------------
def _interactive_cycle(imc: IMC, reachable: set[int]) -> tuple[int, ...] | None:
    """Find a cycle of interactive transitions among reachable states."""
    colour: dict[int, int] = {}
    stack_trace: list[int] = []

    def visit(state: int) -> tuple[int, ...] | None:
        colour[state] = 1
        stack_trace.append(state)
        for _action, target in imc.interactive_successors(state):
            if target not in reachable:
                continue
            mark = colour.get(target, 0)
            if mark == 1:
                cycle_start = stack_trace.index(target)
                return tuple(stack_trace[cycle_start:])
            if mark == 0:
                found = visit(target)
                if found is not None:
                    return found
        colour[state] = 2
        stack_trace.pop()
        return None

    for state in sorted(reachable):
        if colour.get(state, 0) == 0:
            found = visit(state)
            if found is not None:
                return found
    return None


def _imc_numeric_findings(imc: IMC, location: str = "") -> list[Diagnostic]:
    """N002/S002 findings over the raw transition lists of an IMC."""
    findings: list[Diagnostic] = []
    bad_rates = sorted(
        {src for src, rate, _dst in imc.markov if _bad_rate(rate)}
    )
    if bad_rates:
        findings.append(
            make_diagnostic(
                "N002",
                f"{len(bad_rates)} state(s) carry NaN/inf/non-positive Markov "
                "rates",
                states=bad_rates,
                location=location,
            )
        )
    dangling = sorted(
        {
            src
            for src, _a, dst in imc.interactive
            if not (0 <= src < imc.num_states and 0 <= dst < imc.num_states)
        }
        | {
            src
            for src, _r, dst in imc.markov
            if not (0 <= src < imc.num_states and 0 <= dst < imc.num_states)
        }
    )
    if dangling:
        findings.append(
            make_diagnostic(
                "S002",
                f"transitions reference states outside 0..{imc.num_states - 1}",
                states=[s for s in dangling if 0 <= s < imc.num_states],
                location=location,
            )
        )
    return findings


def lint_imc(imc: IMC, closed: bool = True, location: str = "") -> list[Diagnostic]:
    """Collect diagnostics for an IMC.

    Parameters
    ----------
    imc:
        The model to check.
    closed:
        Analyse under the closed-system view (urgency); this is the view
        of the transformation pipeline.
    location:
        Optional location tag attached to every finding.

    Returns
    -------
    list[Diagnostic]
        All findings, errors first.
    """
    findings = _imc_numeric_findings(imc, location)
    if any(f.code == "S002" for f in findings):
        # Dangling indices make reachability undefined; report what we
        # have rather than crash on out-of-range successors.
        return sort_diagnostics(findings)
    reachable = set(imc.reachable_states(closed=closed))

    cycle = _interactive_cycle(imc, reachable)
    if cycle is not None:
        names = " -> ".join(imc.name_of(s) for s in cycle)
        findings.append(
            make_diagnostic(
                "A001",
                f"interactive cycle ({names}): Zeno under urgency",
                states=cycle,
                location=location,
            )
        )

    dead = tuple(
        s for s in sorted(reachable) if imc.state_class(s) is StateClass.ABSORBING
    )
    if dead:
        findings.append(
            make_diagnostic(
                "A002",
                f"{len(dead)} reachable state(s) without outgoing "
                "transitions; the transformation assumes none",
                states=dead,
                location=location,
            )
        )

    stable_rates = {
        s: imc.exit_rate(s) for s in sorted(reachable) if imc.is_stable(s)
    }
    if stable_rates:
        rates = sorted(set(round(r, 9) for r in stable_rates.values()))
        if len(rates) > 1:
            offenders = tuple(
                s for s, r in stable_rates.items() if round(r, 9) != rates[-1]
            )
            findings.append(
                make_diagnostic(
                    "U001",
                    f"stable exit rates span {rates[0]:g}..{rates[-1]:g}; "
                    "Algorithm 1 requires a uniform model",
                    states=offenders,
                    location=location,
                )
            )

    if closed:
        visible = sorted(
            {
                action
                for s in reachable
                for action, _t in imc.interactive_successors(s)
                if action != TAU
            }
        )
        if visible:
            findings.append(
                make_diagnostic(
                    "S003",
                    f"visible actions remain ({', '.join(visible[:5])}"
                    f"{', ...' if len(visible) > 5 else ''}); under the "
                    "closed view they are urgent like tau",
                    location=location,
                )
            )

    unreachable = tuple(s for s in range(imc.num_states) if s not in reachable)
    if unreachable:
        findings.append(
            make_diagnostic(
                "S001",
                f"{len(unreachable)} state(s) unreachable; they are ignored",
                states=unreachable,
                location=location,
            )
        )

    return sort_diagnostics(findings)


def lint_lts(imc: IMC, location: str = "") -> list[Diagnostic]:
    """Diagnostics for an LTS (an IMC expected to carry no Markov part).

    Open LTSs legitimately contain action cycles (every FTWC component
    is one), so no Zeno finding is emitted; deadlocks are reported at
    warning level because composition may still resolve them.
    """
    findings = _imc_numeric_findings(imc, location)
    if imc.markov:
        findings.append(
            make_diagnostic(
                "A003",
                f"{len(imc.markov)} Markov transition(s) in a supposed LTS",
                states=sorted({src for src, _r, _d in imc.markov}),
                location=location,
            )
        )
    if any(f.code == "S002" for f in findings):
        return sort_diagnostics(findings)
    reachable = set(imc.reachable_states(closed=False))
    dead = tuple(
        s for s in sorted(reachable) if not imc.interactive_successors(s)
    )
    if dead:
        findings.append(
            make_diagnostic(
                "S006",
                f"{len(dead)} reachable deadlock state(s); composition may "
                "still unblock them",
                states=dead,
                location=location,
            )
        )
    unreachable = tuple(s for s in range(imc.num_states) if s not in reachable)
    if unreachable:
        findings.append(
            make_diagnostic(
                "S001",
                f"{len(unreachable)} state(s) unreachable; they are ignored",
                states=unreachable,
                location=location,
            )
        )
    return sort_diagnostics(findings)


def lint_strict_alternation(imc: IMC, location: str = "") -> list[Diagnostic]:
    """A003 findings: is ``imc`` strictly alternating (Section 4.1)?

    Strict alternation requires: no hybrid states, every Markov
    transition ends in an interactive state, every interactive
    transition ends in a Markov state, and no absorbing states.
    """
    findings: list[Diagnostic] = []
    classes = [imc.state_class(s) for s in range(imc.num_states)]

    hybrid = [s for s, c in enumerate(classes) if c is StateClass.HYBRID]
    if hybrid:
        findings.append(
            make_diagnostic(
                "A003",
                f"{len(hybrid)} hybrid state(s); step 1 (urgency cut) was "
                "not applied",
                states=hybrid,
                location=location,
            )
        )
    markov_to_markov = sorted(
        {
            src
            for src, _rate, dst in imc.markov
            if classes[dst] in (StateClass.MARKOV, StateClass.HYBRID)
        }
    )
    if markov_to_markov:
        findings.append(
            make_diagnostic(
                "A003",
                "Markov transitions lead into Markov states; step 2 "
                "(Markov alternation) was not applied",
                states=markov_to_markov,
                location=location,
            )
        )
    inter_to_inter = sorted(
        {
            src
            for src, _a, dst in imc.interactive
            if classes[dst] is not StateClass.MARKOV
        }
    )
    if inter_to_inter:
        findings.append(
            make_diagnostic(
                "A003",
                "interactive transitions do not end in Markov states; step 3 "
                "(word compression) was not applied",
                states=inter_to_inter,
                location=location,
            )
        )
    absorbing = [s for s, c in enumerate(classes) if c is StateClass.ABSORBING]
    if absorbing:
        findings.append(
            make_diagnostic(
                "A003",
                f"{len(absorbing)} absorbing state(s) in a strictly "
                "alternating IMC",
                states=absorbing,
                location=location,
            )
        )
    return sort_diagnostics(findings)


# ---------------------------------------------------------------------------
# CTMC
# ---------------------------------------------------------------------------
def lint_ctmc(
    ctmc: CTMC,
    goal: np.ndarray | None = None,
    expect_uniform: bool = False,
    location: str = "",
) -> list[Diagnostic]:
    """Collect diagnostics for a CTMC.

    Parameters
    ----------
    ctmc:
        The chain to check.
    goal:
        Optional boolean goal mask; enables the goal-set checks
        (``G001``/``G002``/``G003``).
    expect_uniform:
        Check uniformity of exit rates (``U001``); off by default since
        uniformization handles arbitrary chains.
    location:
        Optional location tag attached to every finding.
    """
    findings = _csr_numeric_findings(ctmc.rates, "the rate matrix", location)

    n = ctmc.num_states
    exits = ctmc.exit_rates()
    if expect_uniform and np.isfinite(exits).all():
        positive = exits[exits > 0.0]
        if positive.size == 0:
            findings.append(
                make_diagnostic(
                    "U002",
                    "no state carries outgoing rate mass; the uniform rate "
                    "is undefined",
                    location=location,
                )
            )
        else:
            reference = float(positive.max())
            off = np.flatnonzero(
                np.abs(exits - reference) > _UNIFORM_TOL * max(1.0, reference)
            )
            if off.size:
                findings.append(
                    make_diagnostic(
                        "U001",
                        f"exit rates span {float(exits.min()):g}.."
                        f"{float(exits.max()):g}; a uniform chain was expected",
                        states=off,
                        location=location,
                    )
                )

    reachable = _ctmc_reachable(ctmc)
    unreachable = np.flatnonzero(~reachable)
    if unreachable.size:
        findings.append(
            make_diagnostic(
                "S001",
                f"{unreachable.size} state(s) unreachable; they are ignored",
                states=unreachable,
                location=location,
            )
        )

    if goal is not None:
        mask = np.asarray(goal, dtype=bool)
        if mask.shape != (n,):
            findings.append(
                make_diagnostic(
                    "G002",
                    f"goal mask has shape {mask.shape}, expected ({n},)",
                    location=location,
                )
            )
        elif not mask.any():
            findings.append(
                make_diagnostic(
                    "G001",
                    "the goal set is empty; every reachability probability "
                    "is zero",
                    location=location,
                )
            )
        else:
            leaky = [
                s
                for s in np.flatnonzero(mask)
                if any(not mask[t] for t, _r in ctmc.successors(int(s)))
            ]
            if leaky:
                findings.append(
                    make_diagnostic(
                        "G003",
                        f"{len(leaky)} goal state(s) carry rates back into "
                        "non-goal states; reachability analyses treat goal "
                        "hits as absorbing",
                        states=leaky,
                        location=location,
                    )
                )
    return sort_diagnostics(findings)


def _ctmc_reachable(ctmc: CTMC) -> np.ndarray:
    """Boolean mask of states reachable from the initial state."""
    n = ctmc.num_states
    seen = np.zeros(n, dtype=bool)
    frontier = [ctmc.initial]
    seen[ctmc.initial] = True
    indptr, indices = ctmc.rates.indptr, ctmc.rates.indices
    while frontier:
        state = frontier.pop()
        for target in indices[indptr[state] : indptr[state + 1]]:
            if not seen[target]:
                seen[target] = True
                frontier.append(int(target))
    return seen


def lint_generator(generator: np.ndarray, location: str = "") -> list[Diagnostic]:
    """Diagnostics for an infinitesimal generator matrix ``Q``.

    Checks N002 (non-finite entries, negative off-diagonals) and N001
    (rows not summing to zero -- the "generator row-sum drift" that
    accumulates when generators are assembled numerically).
    """
    findings: list[Diagnostic] = []
    q = np.asarray(generator, dtype=np.float64)
    if q.ndim != 2 or q.shape[0] != q.shape[1]:
        findings.append(
            make_diagnostic(
                "S005",
                f"generator must be square, got shape {q.shape}",
                location=location,
            )
        )
        return findings
    bad = ~np.isfinite(q)
    if bad.any():
        findings.append(
            make_diagnostic(
                "N002",
                f"{int(bad.sum())} non-finite generator entr(y/ies)",
                states=np.unique(np.nonzero(bad)[0]),
                location=location,
            )
        )
        return sort_diagnostics(findings)
    off = q.copy()
    np.fill_diagonal(off, 0.0)
    negative_rows = np.unique(np.nonzero(off < 0.0)[0])
    if negative_rows.size:
        findings.append(
            make_diagnostic(
                "N002",
                f"negative off-diagonal generator entr(y/ies) in "
                f"{negative_rows.size} row(s)",
                states=negative_rows,
                location=location,
            )
        )
    drift = q.sum(axis=1)
    scale = np.maximum(1.0, np.abs(np.diag(q)))
    drifting = np.flatnonzero(np.abs(drift) > 1e-9 * scale)
    if drifting.size:
        worst = float(np.abs(drift).max())
        findings.append(
            make_diagnostic(
                "N001",
                f"{drifting.size} generator row(s) do not sum to zero "
                f"(worst drift {worst:.3g})",
                states=drifting,
                location=location,
            )
        )
    return sort_diagnostics(findings)


# ---------------------------------------------------------------------------
# CTMDP
# ---------------------------------------------------------------------------
def lint_ctmdp(
    ctmdp: CTMDP,
    goal: np.ndarray | None = None,
    expect_uniform: bool = True,
    location: str = "",
) -> list[Diagnostic]:
    """Collect diagnostics for a CTMDP.

    Checks the CSR storage (``N002``/``N003``/``S002``), the hyperedge
    well-formedness (``S004`` empty rate functions, ``S005`` source/
    choice-pointer inconsistencies), uniformity (``U001``/``U002``,
    Algorithm 1's precondition, on by default), reachability (``S001``)
    and optionally the goal mask (``G001``/``G002``).
    """
    findings = _csr_numeric_findings(ctmdp.rate_matrix, "the rate matrix", location)

    n, t = ctmdp.num_states, ctmdp.num_transitions
    sources = ctmdp.sources
    if sources.shape != (t,):
        findings.append(
            make_diagnostic(
                "S005",
                f"{t} transitions but {sources.shape[0]} source entries",
                location=location,
            )
        )
        return sort_diagnostics(findings)
    out_of_range = (sources < 0) | (sources >= n)
    if out_of_range.any():
        findings.append(
            make_diagnostic(
                "S002",
                f"{int(out_of_range.sum())} transition source(s) outside "
                f"0..{n - 1}",
                location=location,
            )
        )
        return sort_diagnostics(findings)
    if t and (np.diff(sources) < 0).any():
        findings.append(
            make_diagnostic(
                "S005",
                "transitions are not sorted by source state; per-state "
                "maximisation would read wrong segments",
                location=location,
            )
        )

    empty_rows = np.flatnonzero(np.diff(ctmdp.rate_matrix.indptr) == 0)
    if empty_rows.size:
        findings.append(
            make_diagnostic(
                "S004",
                f"{empty_rows.size} transition(s) have an empty rate "
                "function (a transition must lead somewhere)",
                states=np.unique(sources[empty_rows]),
                location=location,
            )
        )

    exits = ctmdp.exit_rates()
    if expect_uniform and t == 0:
        findings.append(
            make_diagnostic(
                "U002",
                "CTMDP has no transitions; the uniform rate is undefined",
                location=location,
            )
        )
    elif expect_uniform and np.isfinite(exits).all() and not empty_rows.size:
        reference = float(exits[0])
        off = np.flatnonzero(
            np.abs(exits - reference) > _UNIFORM_TOL * max(1.0, abs(reference))
        )
        if off.size:
            findings.append(
                make_diagnostic(
                    "U001",
                    f"transition exit rates span {float(exits.min()):g}.."
                    f"{float(exits.max()):g}; Algorithm 1 requires a uniform "
                    "CTMDP",
                    states=np.unique(sources[off]),
                    location=location,
                )
            )

    absorbing = ctmdp.states_without_choices()
    reachable = _ctmdp_reachable(ctmdp)
    unreachable = np.flatnonzero(~reachable)
    if unreachable.size:
        findings.append(
            make_diagnostic(
                "S001",
                f"{unreachable.size} state(s) unreachable; they are ignored",
                states=unreachable,
                location=location,
            )
        )
    reachable_absorbing = [int(s) for s in absorbing if reachable[s]]
    if reachable_absorbing:
        findings.append(
            make_diagnostic(
                "S006",
                f"{len(reachable_absorbing)} reachable state(s) offer no "
                "choice; the uIMC transformation never produces such states",
                states=reachable_absorbing,
                location=location,
            )
        )

    if goal is not None:
        mask = np.asarray(goal, dtype=bool)
        if mask.shape != (n,):
            findings.append(
                make_diagnostic(
                    "G002",
                    f"goal mask has shape {mask.shape}, expected ({n},)",
                    location=location,
                )
            )
        elif not mask.any():
            findings.append(
                make_diagnostic(
                    "G001",
                    "the goal set is empty; every reachability probability "
                    "is zero",
                    location=location,
                )
            )
    return sort_diagnostics(findings)


def _ctmdp_reachable(ctmdp: CTMDP) -> np.ndarray:
    """Boolean mask of states reachable (under any scheduler)."""
    n = ctmdp.num_states
    seen = np.zeros(n, dtype=bool)
    seen[ctmdp.initial] = True
    frontier = [ctmdp.initial]
    matrix = ctmdp.rate_matrix
    choice_ptr = ctmdp.choice_ptr
    while frontier:
        state = frontier.pop()
        lo, hi = choice_ptr[state], choice_ptr[state + 1]
        begin, end = matrix.indptr[lo], matrix.indptr[hi]
        for target in matrix.indices[begin:end]:
            if 0 <= target < n and not seen[target]:
                seen[target] = True
                frontier.append(int(target))
    return seen


# ---------------------------------------------------------------------------
# DTMDP
# ---------------------------------------------------------------------------
def lint_dtmdp(dtmdp: DTMDP, location: str = "") -> list[Diagnostic]:
    """Collect diagnostics for a discrete-time MDP.

    The probabilistic analogue of :func:`lint_ctmdp`: CSR sanity plus
    per-row distribution mass (``N001``), the check that matters for the
    Poisson-weighted value iteration built on top.
    """
    findings = _csr_numeric_findings(
        dtmdp.probabilities, "the probability matrix", location
    )
    data = dtmdp.probabilities.data
    if data.size and np.isfinite(data).all():
        row_sums = np.asarray(dtmdp.probabilities.sum(axis=1)).ravel()
        drifting = np.flatnonzero(np.abs(row_sums - 1.0) > 1e-9)
        if drifting.size:
            worst = float(np.abs(row_sums - 1.0).max())
            findings.append(
                make_diagnostic(
                    "N001",
                    f"{drifting.size} transition row(s) do not sum to one "
                    f"(worst drift {worst:.3g})",
                    states=np.unique(dtmdp.sources[drifting]),
                    location=location,
                )
            )
    return sort_diagnostics(findings)


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------
def lint_model(
    model: IMC | CTMC | CTMDP | DTMDP,
    goal: np.ndarray | None = None,
    location: str = "",
    **options: bool,
) -> list[Diagnostic]:
    """Dispatch to the analyzer matching the model's class.

    ``options`` are forwarded (e.g. ``closed=False`` for IMCs,
    ``expect_uniform=True`` for CTMCs).  LTSs -- IMCs without Markov
    transitions -- are linted with :func:`lint_lts`.
    """
    if isinstance(model, CTMDP):
        return lint_ctmdp(model, goal=goal, location=location, **options)
    if isinstance(model, CTMC):
        return lint_ctmc(model, goal=goal, location=location, **options)
    if isinstance(model, DTMDP):
        return lint_dtmdp(model, location=location)
    if isinstance(model, IMC):
        if model.is_lts():
            return lint_lts(model, location=location)
        return lint_imc(model, location=location, **options)
    raise TypeError(f"no analyzer for {type(model).__name__}")
