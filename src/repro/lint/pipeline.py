"""The pipeline invariant pass: Lemmas 1-3 and strict alternation, checked.

The paper's analysis trajectory -- compose, hide, minimise, transform --
is correct because each step *preserves uniformity* (Lemmas 1-3) and the
Section 4.1 transform establishes *strict alternation*.  The library
maintains these invariants by construction; this module re-derives them
on a concrete model and reports any drift as ``Pxxx`` diagnostics.  Use
it when touching :mod:`repro.imc.composition`,
:mod:`repro.imc.transform` or :mod:`repro.bisim`, or when a cached model
round-trips through disk and "still uniform, still alternating" should
be a checked fact rather than an assumption.

Stages are tagged via the ``location`` field: ``input``, ``hiding``,
``bisim``, ``alternating``, ``ctmdp``.
"""

from __future__ import annotations

from repro.bisim.branching import branching_minimize
from repro.errors import ReproError
from repro.imc.composition import hide_all_but, parallel
from repro.imc.model import IMC
from repro.imc.transform import imc_to_ctmdp
from repro.lint.analyzers import (
    _UNIFORM_TOL,
    lint_ctmdp,
    lint_imc,
    lint_strict_alternation,
)
from repro.lint.diagnostics import Diagnostic, make_diagnostic, sort_diagnostics

__all__ = ["lint_pipeline", "check_hiding_invariant", "check_composition_invariant"]


def _rates_agree(left: float, right: float) -> bool:
    return abs(left - right) <= _UNIFORM_TOL * max(1.0, abs(left), abs(right))


def check_hiding_invariant(imc: IMC, keep: tuple[str, ...] = ()) -> list[Diagnostic]:
    """Lemma 1: hiding preserves uniformity.

    Hides every visible action of ``imc`` except ``keep`` and verifies
    the result is still uniform with the same rate.  A ``P004`` finding
    means the hiding operator (or the uniformity judgement) has drifted
    from the paper's semantics.
    """
    if not imc.is_uniform(closed=False):
        return []  # the lemma presupposes a uniform input
    rate = imc.uniform_rate(closed=False)
    hidden = hide_all_but(imc, keep)
    if not hidden.is_uniform(closed=False):
        return [
            make_diagnostic(
                "P004",
                "hiding the alphabet broke uniformity although Lemma 1 "
                "guarantees preservation",
                location="hiding",
            )
        ]
    hidden_rate = hidden.uniform_rate(closed=False)
    if not _rates_agree(rate, hidden_rate):
        return [
            make_diagnostic(
                "P004",
                f"hiding changed the uniform rate from {rate:g} to "
                f"{hidden_rate:g}",
                location="hiding",
            )
        ]
    return []


def check_composition_invariant(
    left: IMC, right: IMC, sync: tuple[str, ...] = ()
) -> list[Diagnostic]:
    """Lemma 2: parallel composition of uniform IMCs is uniform, rates adding.

    A ``P005`` finding means the product construction has drifted: some
    stable product state fails to combine a stable left state with a
    stable right state, or rates no longer accumulate.
    """
    if not (left.is_uniform(closed=False) and right.is_uniform(closed=False)):
        return []
    expected = left.uniform_rate(closed=False) + right.uniform_rate(closed=False)
    product = parallel(left, right, sync=sync)
    if not product.is_uniform(closed=False):
        return [
            make_diagnostic(
                "P005",
                "the parallel product of two uniform IMCs is not uniform "
                "although Lemma 2 guarantees it",
                location="composition",
            )
        ]
    actual = product.uniform_rate(closed=False)
    if not _rates_agree(expected, actual):
        return [
            make_diagnostic(
                "P005",
                f"product uniform rate is {actual:g}, expected "
                f"E_left + E_right = {expected:g} (Lemma 2)",
                location="composition",
            )
        ]
    return []


def lint_pipeline(imc: IMC, max_words_per_state: int = 1_000_000) -> list[Diagnostic]:
    """Check the invariant chain on a closed IMC, end to end.

    Runs, in order:

    1. the IMC analyzer on the input (``location="input"``);
    2. Lemma 1 on the input's alphabet (``hiding``);
    3. Lemma 3 via the branching-bisimulation quotient (``bisim``);
    4. the Section 4.1 transform, checking that its output is strictly
       alternating and uniformity-preserving (``alternating``) and that
       the resulting CTMDP lints clean with the same uniform rate
       (``ctmdp``).

    Stages that presuppose properties the input lacks (a non-uniform or
    Zeno input cannot be transformed) are skipped; the input findings
    already explain why.
    """
    findings = list(lint_imc(imc, closed=True, location="input"))
    fatal = {f.code for f in findings} & {"A001", "A002", "U001", "N002", "S002"}

    findings.extend(check_hiding_invariant(imc))

    uniform_input = imc.is_uniform(closed=True)
    rate = imc.uniform_rate(closed=True) if uniform_input else None

    # --- Lemma 3: the quotient stays uniform with the same rate. -------
    if not fatal:
        try:
            quotient, _partition = branching_minimize(imc)
        except ReproError as exc:
            findings.append(
                make_diagnostic(
                    "P003",
                    f"branching minimisation failed: {exc}",
                    location="bisim",
                )
            )
        else:
            if uniform_input and not quotient.is_uniform(closed=True):
                findings.append(
                    make_diagnostic(
                        "P003",
                        "the branching-bisimulation quotient of a uniform "
                        "IMC is not uniform although Lemma 3 guarantees it",
                        location="bisim",
                    )
                )
            elif uniform_input and rate is not None:
                quotient_rate = quotient.uniform_rate(closed=True)
                if not _rates_agree(rate, quotient_rate):
                    findings.append(
                        make_diagnostic(
                            "P003",
                            f"minimisation changed the uniform rate from "
                            f"{rate:g} to {quotient_rate:g}",
                            location="bisim",
                        )
                    )

    # --- Section 4.1: strictly alternating form and the uCTMDP. --------
    if not fatal:
        try:
            result = imc_to_ctmdp(imc, max_words_per_state=max_words_per_state)
        except ReproError as exc:
            findings.append(
                make_diagnostic(
                    "P001",
                    f"transformation failed: {exc}",
                    location="alternating",
                )
            )
        else:
            findings.extend(
                lint_strict_alternation(result.alternation.imc, location="alternating")
            )
            if uniform_input and rate is not None:
                alt_rate = (
                    result.alternation.imc.uniform_rate(closed=True)
                    if result.alternation.imc.is_uniform(closed=True)
                    else None
                )
                if alt_rate is None or not _rates_agree(rate, alt_rate):
                    findings.append(
                        make_diagnostic(
                            "P002",
                            "the strictly alternating IMC is not uniform at "
                            f"the input rate {rate:g}",
                            location="alternating",
                        )
                    )
            ctmdp = result.ctmdp
            findings.extend(
                lint_ctmdp(ctmdp, expect_uniform=uniform_input, location="ctmdp")
            )
            if uniform_input and rate is not None and ctmdp.is_uniform():
                ctmdp_rate = ctmdp.uniform_rate()
                if not _rates_agree(rate, ctmdp_rate):
                    findings.append(
                        make_diagnostic(
                            "P002",
                            f"the CTMDP's uniform rate is {ctmdp_rate:g}, the "
                            f"input IMC's is {rate:g}; Theorem 1 preserves it",
                            location="ctmdp",
                        )
                    )
    return sort_diagnostics(findings)
