"""Linting of on-disk model files (``.tra`` and ``.json``).

The strict loaders in :mod:`repro.io` *refuse* pathological input; this
module *diagnoses* it.  ``.tra`` files are scanned leniently (via
:func:`repro.io.tra.scan_tra`) so NaN rates and dangling indices become
``N002``/``S002`` diagnostics instead of a single exception, and only a
file that scans clean of errors is then constructed and run through the
full model analyzer.  ``.json`` model documents (whose schema already
guarantees shape) are loaded and linted directly.
"""

from __future__ import annotations

import math
from pathlib import Path

import numpy as np

from repro.errors import ModelError
from repro.io.json_io import load_model
from repro.io.tra import TraScan, read_ctmc_tra, read_ctmdp_tra, read_labels, scan_tra
from repro.lint.analyzers import lint_model
from repro.lint.diagnostics import Diagnostic, LintReport, make_diagnostic

__all__ = ["lint_path", "lint_tra_scan", "sibling_goal_mask"]


def lint_tra_scan(scan: TraScan) -> list[Diagnostic]:
    """Value-level diagnostics over a raw ``.tra`` scan.

    Emits ``N002`` for NaN/inf/non-positive rates, ``S002`` for state
    indices outside the declared range and ``S005`` for header counts or
    row metadata that contradict the body.
    """
    findings: list[Diagnostic] = []
    n = scan.num_states

    if scan.kind == "ctmc":
        entries = [(src, dst, rate) for src, dst, rate in scan.ctmc_entries]
        found = len(entries)
        what = "transitions"
    else:
        entries = [(src, dst, rate) for _row, _a, src, dst, rate in scan.ctmdp_entries]
        found = len({row for row, *_rest in scan.ctmdp_entries})
        what = "choices"

    if found != scan.declared:
        findings.append(
            make_diagnostic(
                "S005",
                f"header announced {scan.declared} {what}, found {found}",
            )
        )

    bad_rate_sources = sorted(
        {
            src
            for src, _dst, rate in entries
            if not (math.isfinite(rate) and rate > 0.0)
        }
    )
    if bad_rate_sources:
        findings.append(
            make_diagnostic(
                "N002",
                f"{len(bad_rate_sources)} state(s) carry NaN/inf/non-positive "
                "rates",
                states=[s for s in bad_rate_sources if 0 <= s < n],
            )
        )

    dangling = sorted(
        {
            src
            for src, dst, _rate in entries
            if not (0 <= src < n and 0 <= dst < n)
        }
    )
    if dangling:
        findings.append(
            make_diagnostic(
                "S002",
                f"transitions reference states outside 1..{n} (1-based)",
                states=[s for s in dangling if 0 <= s < n],
            )
        )

    if scan.kind == "ctmdp":
        if not 0 <= scan.initial < n:
            findings.append(
                make_diagnostic(
                    "S002",
                    f"initial state {scan.initial + 1} outside 1..{n} (1-based)",
                )
            )
        meta: dict[int, tuple[int, str]] = {}
        inconsistent = []
        for row, action, src, _dst, _rate in scan.ctmdp_entries:
            previous = meta.setdefault(row, (src, action))
            if previous != (src, action):
                inconsistent.append(row)
        if inconsistent:
            findings.append(
                make_diagnostic(
                    "S005",
                    f"{len(set(inconsistent))} transition row(s) carry "
                    "inconsistent source/action metadata",
                )
            )
    return findings


def sibling_goal_mask(path: str | Path, num_states: int) -> np.ndarray | None:
    """The goal mask of the ``.lab`` file next to a model file, if any.

    Prefers a proposition literally named ``"goal"``; otherwise the
    first declared proposition serves.  Returns ``None`` when no
    sibling ``.lab`` exists or it declares nothing.
    """
    lab = Path(path).with_suffix(".lab")
    if not lab.exists():
        return None
    masks = read_labels(lab, num_states)
    if not masks:
        return None
    if "goal" in masks:
        return masks["goal"]
    first = next(iter(masks))
    return masks[first]


def lint_path(path: str | Path, graph: bool = False, **options: bool) -> LintReport:
    """Lint one model file; returns a report tagged with the file path.

    With ``graph=True`` the whole-model graph pass
    (:func:`repro.lint.graph.lint_graph`, the ``Qxxx`` codes) runs as
    well; its goal set is resolved from a sibling ``.lab`` file when
    one exists (proposition ``"goal"`` preferred, else the first
    declared one).

    Raises
    ------
    ModelError
        When the file cannot be parsed at all (missing headers, wrong
        field counts, unknown suffix) -- a usage error, not a finding.
    OSError
        When the file cannot be read.
    """
    path = Path(path)
    if path.suffix == ".py":
        # Source files route to the concurrency/numerics self-lint
        # (``Txxx`` codes) -- this is how the planted defect fixtures
        # under ``tests/fixtures/tsan/`` are linted individually.
        from repro.tsan.static import lint_source

        report = LintReport(target=str(path), kind="python")
        report.extend(lint_source([path]))
        return report
    if path.suffix == ".tra":
        scan = scan_tra(path)
        report = LintReport(target=str(path), kind=scan.kind)
        report.extend(lint_tra_scan(scan))
        if not report.has_errors:
            model = (
                read_ctmc_tra(path) if scan.kind == "ctmc" else read_ctmdp_tra(path)
            )
            report.extend(lint_model(model, **options))
            if graph:
                report.extend(_graph_findings(model, path))
        return report
    if path.suffix == ".json":
        model = load_model(path)
        report = LintReport(
            target=str(path), kind=type(model).__name__.lower()
        )
        report.extend(lint_model(model, **options))
        if graph:
            report.extend(_graph_findings(model, path))
        return report
    raise ModelError(
        f"cannot lint {path}: unknown suffix {path.suffix!r} "
        "(expected .tra, .json or .py)"
    )


def _graph_findings(model, path: Path) -> list[Diagnostic]:
    from repro.lint.graph import lint_graph

    goal = sibling_goal_mask(path, model.num_states)
    return lint_graph(model, goal=goal)
