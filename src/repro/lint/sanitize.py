"""Opt-in sanitizer hooks: re-lint models at trust boundaries.

The engine cache (PR 1) round-trips models through disk, and the solver
prepares matrices straight from whatever the registry hands it.  Both
are *trust boundaries*: a corrupted cache entry, a hand-edited ``.tra``
file or a buggy builder would flow into analysis silently.  With
sanitizing enabled, the engine re-lints every model at

* registry resolution (memory hit, disk load, fresh build), and
* solver preparation (just before matrices are extracted),

and refuses error-level findings by raising :class:`~repro.errors.LintError`.

Sanitizing is off by default (it costs a full model pass per boundary).
Enable it globally with ``REPRO_SANITIZE=1`` in the environment, or
locally::

    from repro.lint import sanitizing

    with sanitizing():
        engine.run(queries)   # every model crossing a boundary is linted
"""

from __future__ import annotations

import os
import warnings
from contextlib import contextmanager
from typing import Iterator, Union

import numpy as np

from repro.core.ctmdp import CTMDP
from repro.ctmc.model import CTMC
from repro.errors import LintError
from repro.imc.model import IMC
from repro.lint.analyzers import lint_model
from repro.lint.diagnostics import Diagnostic, Severity
from repro.mdp.model import DTMDP

__all__ = ["env_flag", "sanitize_enabled", "sanitizing", "sanitize_model"]

#: Accepted boolean spellings for repro environment toggles, after
#: whitespace stripping and lowercasing.  Anything else is *not*
#: silently coerced: see :func:`env_flag`.
TRUTHY_VALUES = frozenset({"1", "true", "yes", "on"})
FALSY_VALUES = frozenset({"", "0", "false", "no", "off"})

#: Nesting depth of active ``sanitizing()`` context managers.
_forced_depth = 0


def env_flag(name: str, default: bool = False) -> bool:
    """Parse the boolean environment variable ``name``.

    Accepted values (case-insensitive, surrounding whitespace ignored):
    ``1``/``true``/``yes``/``on`` enable, ``0``/``false``/``no``/``off``
    and the empty string disable; an unset variable yields ``default``.
    Any other value raises a :class:`UserWarning` and counts as
    *enabled* — for the sanitizer flags guarding correctness checks,
    failing safe means checking more, not less.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    value = raw.strip().lower()
    if value in TRUTHY_VALUES:
        return True
    if value in FALSY_VALUES:
        return False
    warnings.warn(
        f"unrecognised value {raw!r} for ${name}; expected one of "
        f"1/true/yes/on or 0/false/no/off -- treating it as enabled",
        stacklevel=2,
    )
    return True


def sanitize_enabled() -> bool:
    """True iff sanitizer hooks should run.

    Either the ``REPRO_SANITIZE`` environment variable is set to a
    truthy value (``1``/``true``/``yes``/``on``; ``0``/``false``/``no``/
    ``off``/unset disable — see :func:`env_flag`), or the calling thread
    is inside a :func:`sanitizing` context.
    """
    if _forced_depth > 0:
        return True
    return env_flag("REPRO_SANITIZE")


@contextmanager
def sanitizing(enabled: bool = True) -> Iterator[None]:
    """Force sanitizer hooks on (or, with ``enabled=False``, leave them
    to the environment) for the duration of the block."""
    global _forced_depth
    if not enabled:
        yield
        return
    _forced_depth += 1
    try:
        yield
    finally:
        _forced_depth -= 1


def sanitize_model(
    model: Union[IMC, CTMC, CTMDP, DTMDP],
    goal: "np.ndarray | None" = None,
    where: str = "",
    **options: bool,
) -> list[Diagnostic]:
    """Lint ``model`` and raise :class:`~repro.errors.LintError` on errors.

    Returns the (possibly empty) list of warning-level findings when the
    model passes.  ``where`` names the boundary for the error message
    (e.g. ``"registry:disk"``, ``"solver-prepare"``).
    """
    findings = lint_model(model, goal=goal, location=where, **options)
    errors = [f for f in findings if f.severity is Severity.ERROR]
    if errors:
        rendered = "; ".join(str(f) for f in errors[:5])
        more = f" (+{len(errors) - 5} more)" if len(errors) > 5 else ""
        boundary = f" at {where}" if where else ""
        raise LintError(
            f"sanitizer rejected {type(model).__name__}{boundary}: "
            f"{rendered}{more}"
        )
    return [f for f in findings if f.severity is not Severity.ERROR]
