"""The unified diagnostic vocabulary of the ``repro.lint`` subsystem.

Every analyzer in this package reports problems as :class:`Diagnostic`
records carrying a *stable code* (``U001``, ``A003``, ``N002``, ...), a
severity, a human-readable message and the offending state indices.
Stable codes make findings machine-checkable: CI can assert "the FTWC
lints clean", a test can assert "this defect fixture yields exactly
``U001`` and ``N002``", and suppression lists survive message rewording.

The code space is partitioned by concern:

* ``Uxxx`` -- uniformity (the paper's central invariant, Definition 4);
* ``Axxx`` -- alternation and interactive structure (Zeno cycles,
  deadlocks, strict-alternation violations of Section 4.1);
* ``Nxxx`` -- numerics (NaN/inf/negative rates, distribution mass and
  generator row-sum drift, sparse-storage anomalies);
* ``Sxxx`` -- structure (dangling indices, unreachable states, empty
  rate functions, inconsistent internal storage);
* ``Gxxx`` -- goal-set plumbing (empty or ill-shaped goal masks);
* ``Pxxx`` -- pipeline invariants (Lemmas 1-3 and the strictly
  alternating transform);
* ``Qxxx`` -- whole-model graph analysis (qualitative reachability,
  end-component traps, deadlocks, vanishing-state cycles; see
  :mod:`repro.lint.graph` and :mod:`repro.graph`).

:class:`LintReport` aggregates diagnostics across several targets (a
model, a file, a pipeline stage) and renders them as text or JSON; its
:meth:`LintReport.exit_code` implements the CLI contract (0 clean,
1 findings, callers map load failures to 2).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

__all__ = [
    "Severity",
    "Diagnostic",
    "LintReport",
    "CODES",
    "code_title",
    "make_diagnostic",
    "render_code_table",
    "sort_diagnostics",
]


class Severity(enum.Enum):
    """How bad a finding is."""

    ERROR = "error"  #: the transformation/analysis will fail or be unsound
    WARNING = "warning"  #: suspicious but well-defined

    @property
    def rank(self) -> int:
        """Sort key: errors first."""
        return 0 if self is Severity.ERROR else 1


#: The registry of stable diagnostic codes: code -> (default severity, title).
#: ``docs/lint.md`` renders this table; tests assert the two stay in sync.
CODES: dict[str, tuple[Severity, str]] = {
    # --- Uniformity -----------------------------------------------------
    "U001": (Severity.ERROR, "non-uniform exit rates"),
    "U002": (Severity.WARNING, "uniform rate undefined (no rate-bearing states)"),
    # --- Alternation / interactive structure ----------------------------
    "A001": (Severity.ERROR, "interactive cycle (Zeno under urgency)"),
    "A002": (Severity.ERROR, "interactive deadlock (reachable absorbing state)"),
    "A003": (Severity.ERROR, "strict-alternation violation"),
    # --- Numerics -------------------------------------------------------
    "N001": (Severity.ERROR, "distribution mass / generator row-sum drift"),
    "N002": (Severity.ERROR, "NaN/inf/negative rate"),
    "N003": (Severity.WARNING, "sparse-storage anomaly (duplicates, explicit zeros)"),
    # --- Structure ------------------------------------------------------
    "S001": (Severity.WARNING, "unreachable states"),
    "S002": (Severity.ERROR, "dangling state index"),
    "S003": (Severity.WARNING, "visible actions in a closed model"),
    "S004": (Severity.ERROR, "empty rate function"),
    "S005": (Severity.ERROR, "inconsistent internal storage"),
    "S006": (Severity.WARNING, "absorbing states"),
    # --- Goal plumbing --------------------------------------------------
    "G001": (Severity.WARNING, "empty goal set"),
    "G002": (Severity.ERROR, "goal mask shape mismatch"),
    "G003": (Severity.WARNING, "goal states are not absorbing"),
    # --- Pipeline invariants (Lemmas 1-3, Section 4.1) ------------------
    "P001": (Severity.ERROR, "transformation to strictly alternating form failed"),
    "P002": (Severity.ERROR, "uniform rate not preserved by the transformation"),
    "P003": (Severity.ERROR, "bisimulation quotient broke uniformity (Lemma 3)"),
    "P004": (Severity.ERROR, "hiding broke uniformity (Lemma 1)"),
    "P005": (Severity.ERROR, "parallel composition broke rate additivity (Lemma 2)"),
    "P006": (Severity.ERROR, "quotient block members disagree on cumulative rates"),
    # --- Whole-model graph analysis --------------------------------------
    "Q001": (Severity.ERROR, "goal unreachable from the initial state"),
    "Q002": (Severity.WARNING, "goal-free absorbing end component (probability trap)"),
    "Q003": (Severity.ERROR, "reachable deadlock state"),
    "Q004": (Severity.ERROR, "vanishing-state cycle (interactive SCC)"),
    # --- Concurrency / numeric self-lint (repro.tsan) ---------------------
    "T001": (Severity.ERROR, "guarded attribute accessed without its lock"),
    "T002": (Severity.ERROR, "lock-order cycle (potential deadlock)"),
    "T003": (Severity.ERROR, "lock attribute without @guarded_by declaration"),
    "T004": (Severity.ERROR, "bare float equality comparison"),
    "T005": (Severity.ERROR, "order-dependent sum() over rates"),
}


def code_title(code: str) -> str:
    """The registered one-line title of ``code``."""
    return CODES[code][1]


def render_code_table() -> str:
    """The :data:`CODES` registry as a GitHub-flavoured markdown table.

    ``docs/lint.md`` embeds exactly this rendering between the
    ``<!-- codes:begin -->`` / ``<!-- codes:end -->`` markers; the drift
    test in ``tests/lint/test_diagnostics.py`` regenerates the table and
    fails when a code is added without refreshing the docs (run
    ``python -m repro.lint.diagnostics`` to print a fresh table).
    """
    lines = [
        "| code | severity | meaning |",
        "|------|----------|---------|",
    ]
    for code in sorted(CODES):
        severity, title = CODES[code]
        lines.append(f"| {code} | {severity.value} | {title} |")
    return "\n".join(lines)


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static analyzer.

    Attributes
    ----------
    code:
        Stable diagnostic code from :data:`CODES` (e.g. ``"U001"``).
    severity:
        :class:`Severity` of this occurrence (usually the code's default).
    message:
        Human-readable explanation with concrete numbers and names.
    states:
        Offending state indices, if localisable.
    location:
        Which target or pipeline stage produced the finding (e.g.
        ``"imc"``, ``"transform"``, ``"registry:disk"``); empty for
        single-model lints.
    """

    code: str
    severity: Severity
    message: str
    states: tuple[int, ...] = ()
    location: str = ""

    @property
    def title(self) -> str:
        """The registered title of this diagnostic's code."""
        return code_title(self.code)

    def as_dict(self) -> dict[str, Any]:
        """JSON-compatible record."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "title": self.title,
            "message": self.message,
            "states": list(self.states),
            "location": self.location,
        }

    def __str__(self) -> str:
        where = f" [{self.location}]" if self.location else ""
        return f"[{self.severity.value}] {self.code}{where}: {self.message}"


def make_diagnostic(
    code: str,
    message: str,
    states: Iterable[int] = (),
    location: str = "",
    severity: Severity | None = None,
) -> Diagnostic:
    """Build a :class:`Diagnostic`, defaulting severity from :data:`CODES`.

    Unknown codes are rejected so analyzers cannot silently invent
    undocumented codes.
    """
    if code not in CODES:
        raise KeyError(f"unregistered diagnostic code {code!r}")
    return Diagnostic(
        code=code,
        severity=severity if severity is not None else CODES[code][0],
        message=message,
        states=tuple(int(s) for s in states),
        location=location,
    )


def sort_diagnostics(diagnostics: Iterable[Diagnostic]) -> list[Diagnostic]:
    """Deterministic order: errors first, then by code, location, states."""
    return sorted(
        diagnostics,
        key=lambda d: (d.severity.rank, d.code, d.location, d.states),
    )


@dataclass
class LintReport:
    """Diagnostics for one lint run, possibly spanning several targets.

    ``target`` names what was linted (a file path, a builtin model spec,
    a pipeline description); ``kind`` its model class where known.
    """

    target: str = ""
    kind: str = ""
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        """Append findings (re-sorted lazily at render time)."""
        self.diagnostics.extend(diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(sort_diagnostics(self.diagnostics))

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> list[Diagnostic]:
        """Error-level findings."""
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        """Warning-level findings."""
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        return bool(self.errors)

    def codes(self) -> set[str]:
        """The set of distinct codes present."""
        return {d.code for d in self.diagnostics}

    def exit_code(self, strict: bool = False) -> int:
        """CLI exit code: 0 clean, 1 errors (or warnings under ``strict``)."""
        if self.has_errors or (strict and self.warnings):
            return 1
        return 0

    def summary(self) -> dict[str, int]:
        """Finding counts by severity."""
        return {"errors": len(self.errors), "warnings": len(self.warnings)}

    def as_dict(self) -> dict[str, Any]:
        """JSON document: the shape ``repro lint --format json`` emits."""
        return {
            "target": self.target,
            "kind": self.kind,
            "diagnostics": [d.as_dict() for d in self],
            "summary": self.summary(),
        }

    def render_text(self) -> str:
        """Human-readable rendering, one finding per line."""
        header = self.target if self.target else "<model>"
        if self.kind:
            header = f"{header} ({self.kind})"
        lines = [f"{header}: {self._verdict()}"]
        for diagnostic in self:
            lines.append(f"  {diagnostic}")
        return "\n".join(lines)

    def render_json(self) -> str:
        """JSON rendering (stable field order, indented)."""
        return json.dumps(self.as_dict(), indent=1)

    def _verdict(self) -> str:
        counts = self.summary()
        if not self.diagnostics:
            return "clean"
        parts = []
        if counts["errors"]:
            parts.append(f"{counts['errors']} error(s)")
        if counts["warnings"]:
            parts.append(f"{counts['warnings']} warning(s)")
        return ", ".join(parts)


if __name__ == "__main__":  # pragma: no cover - doc regeneration helper
    print(render_code_table())
