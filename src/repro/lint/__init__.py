"""Static analysis for stochastic models (``repro.lint``).

A unified diagnostic framework over all model classes of the library:

* :mod:`repro.lint.diagnostics` -- the vocabulary: stable codes
  (``U001`` non-uniform exit rates, ``A003`` alternation violation,
  ``N002`` NaN/inf/negative rate, ...), :class:`Severity`,
  :class:`Diagnostic` and :class:`LintReport` with text/JSON renderers;
* :mod:`repro.lint.analyzers` -- per-model-class analyzers for LTS, IMC,
  CTMC, generator matrices, MDP and CTMDP, plus the :func:`lint_model`
  dispatcher;
* :mod:`repro.lint.pipeline` -- the invariant pass checking Lemmas 1-3
  and strict alternation across the composition -> transform ->
  bisimulation -> uCTMDP pipeline;
* :mod:`repro.lint.files` -- linting of on-disk ``.tra`` / ``.json``
  model files;
* :mod:`repro.lint.graph` -- the whole-model graph pass (``Qxxx``):
  goal reachability, end-component traps, deadlocks and vanishing
  cycles, computed with :mod:`repro.graph` (``repro lint --graph``);
* :mod:`repro.lint.sanitize` -- opt-in sanitizer hooks (the
  ``REPRO_SANITIZE=1`` environment variable or the :func:`sanitizing`
  context manager) that re-lint models at engine trust boundaries.

The command-line entry point is ``repro lint`` (see :mod:`repro.cli`).
"""

from __future__ import annotations

from repro.lint.analyzers import (
    lint_ctmc,
    lint_ctmdp,
    lint_dtmdp,
    lint_generator,
    lint_imc,
    lint_lts,
    lint_model,
    lint_strict_alternation,
)
from repro.lint.diagnostics import (
    CODES,
    Diagnostic,
    LintReport,
    Severity,
    code_title,
    make_diagnostic,
    render_code_table,
    sort_diagnostics,
)
from repro.lint.files import lint_path, lint_tra_scan, sibling_goal_mask
from repro.lint.graph import lint_graph
from repro.lint.pipeline import (
    check_composition_invariant,
    check_hiding_invariant,
    lint_pipeline,
)
from repro.lint.sanitize import env_flag, sanitize_enabled, sanitize_model, sanitizing

__all__ = [
    "CODES",
    "Diagnostic",
    "LintReport",
    "Severity",
    "code_title",
    "make_diagnostic",
    "render_code_table",
    "sort_diagnostics",
    "lint_ctmc",
    "lint_ctmdp",
    "lint_dtmdp",
    "lint_generator",
    "lint_imc",
    "lint_lts",
    "lint_model",
    "lint_strict_alternation",
    "lint_graph",
    "lint_path",
    "lint_tra_scan",
    "sibling_goal_mask",
    "lint_pipeline",
    "check_composition_invariant",
    "check_hiding_invariant",
    "env_flag",
    "sanitize_enabled",
    "sanitize_model",
    "sanitizing",
]
