"""Concurrency sanitation (``repro.tsan``): lock discipline, statically and at runtime.

The reproduction is a long-lived concurrent service: ``repro serve``
answers queries while a ``ThreadingHTTPServer`` scrapes ``/metrics``,
the fleet gateway folds ``POST /push`` bodies into a shared
:class:`~repro.obs.fleet.FleetStore`, and pool workers ship span and
metric snapshots back to the parent.  A silent race in any of those
paths corrupts exactly the certificates and ledgers the trend gate
trusts.  ``repro.lint`` (PR 2) checks *models*; this package checks the
*code that serves them*, in the same spirit in which confluence and
weak-determinism checks tame nondeterminism statically in IOSA and the
compositional IMC analyses rely on a structurally guaranteed
interleaving discipline.

Three layers:

* :mod:`repro.tsan.registry` -- the declared lock discipline.  Every
  class owning a ``threading.Lock`` announces which attributes the lock
  guards via the :func:`guarded_by` class decorator; methods that
  *expect* the lock to be held by their caller are marked
  :func:`holds_lock`.  The declarations are plain class attributes,
  readable both at runtime and by the static pass (no import needed).
* :mod:`repro.tsan.static` -- the AST self-lint behind
  ``repro lint --self``: walks ``src/repro/**`` and reports, with the
  stable ``Txxx`` codes of :data:`repro.lint.diagnostics.CODES`,
  guarded reads/writes outside a ``with self._lock`` block (``T001``),
  cycles in the whole-program lock-order graph (``T002``), undeclared
  lock attributes (``T003``), and the numerical-safety idioms PR 7 was
  bitten by: bare non-integral float ``==``/``!=`` (``T004``) and
  order-dependent ``sum()`` over rates outside
  ``repro.bisim.signatures`` (``T005``).
* :mod:`repro.tsan.runtime` / :mod:`repro.tsan.harness` -- the dynamic
  side, active under ``REPRO_SANITIZE``: :class:`MonitoredLock`
  wrappers record per-thread acquisition stacks and raise
  :class:`~repro.errors.LintError` (``T002``) the moment the *observed*
  lock-order graph closes a cycle, and the seeded
  :class:`InterleavingHarness` forces deterministic context switches at
  line granularity so races reproduce bit-for-bit under a fixed seed.

See ``docs/lint.md`` (the ``Txxx`` section) for the full rule
catalogue and escape hatches.
"""

from __future__ import annotations

from typing import Any

# Only the dependency-free declaration registry is imported eagerly:
# ``repro.obs.metrics`` (near the root of the import graph) pulls this
# package in, so everything that reaches back into ``repro.lint`` —
# runtime, harness, static — must load lazily (PEP 562) or the import
# graph cycles through lint -> models -> obs.
from repro.tsan.registry import guarded_by, guards_of, held_by_caller, holds_lock

_LAZY: dict[str, str] = {
    "CooperativeLock": "repro.tsan.harness",
    "HarnessDeadlock": "repro.tsan.harness",
    "HarnessResult": "repro.tsan.harness",
    "InterleavingHarness": "repro.tsan.harness",
    "find_racy_seed": "repro.tsan.harness",
    "LockOrderMonitor": "repro.tsan.runtime",
    "MonitoredLock": "repro.tsan.runtime",
    "lock_order_monitor": "repro.tsan.runtime",
    "monitored_lock": "repro.tsan.runtime",
    "lint_self": "repro.tsan.static",
    "lint_source": "repro.tsan.static",
    "source_root": "repro.tsan.static",
}


def __getattr__(name: str) -> Any:
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))

__all__ = [
    "CooperativeLock",
    "HarnessDeadlock",
    "HarnessResult",
    "find_racy_seed",
    "InterleavingHarness",
    "LockOrderMonitor",
    "MonitoredLock",
    "guarded_by",
    "guards_of",
    "held_by_caller",
    "holds_lock",
    "lint_self",
    "lint_source",
    "lock_order_monitor",
    "monitored_lock",
    "source_root",
]
