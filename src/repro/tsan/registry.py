"""Declared lock discipline: which lock guards which attributes.

The contract is deliberately *declarative*.  A class that owns a
``threading.Lock`` states, once, next to its definition::

    @guarded_by("_lock", "_sources", "_pushes")
    class FleetStore:
        ...

and the declaration is consumed twice:

* at runtime, :func:`guards_of` lets the sanitizer associate observed
  acquisitions with the attributes they protect;
* statically, :mod:`repro.tsan.static` reads the *decorator call
  itself* out of the AST (no import of the decorated module is ever
  needed), so the self-lint works on broken trees too.

Methods that intentionally touch guarded state without taking the lock
— because their documented contract is "caller must hold the lock"
(e.g. ``MetricStore.as_dict_unlocked``) — are marked
``@holds_lock("_lock")``.  The static pass then treats the lock as held
for the whole method body, and charges the *callers* with acquiring it.

Declarations are additive across decorators and inherited by
subclasses (``EngineMetrics(MetricStore)`` needs no re-declaration).
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any, TypeVar

_T = TypeVar("_T")

#: Class attribute holding the accumulated ``{lock_attr: frozenset(attrs)}``
#: mapping.  Name is part of the static-analysis contract — the AST pass
#: looks for the decorator by name, and tests look for this attribute.
GUARDS_ATTR = "__tsan_guards__"

#: Function attribute naming the lock a method assumes its caller holds.
HOLDS_ATTR = "__tsan_holds__"


def guarded_by(lock_attr: str, *attrs: str) -> Callable[[type[_T]], type[_T]]:
    """Declare that ``self.<lock_attr>`` guards each of ``self.<attr>``.

    ``lock_attr`` must name the attribute the lock is stored under
    (conventionally ``"_lock"``); ``attrs`` are the guarded attribute
    names.  Multiple decorations merge, so a class with two locks reads::

        @guarded_by("_lock", "_records")
        @guarded_by("_meta_lock", "_labels")
        class SpanLog: ...
    """
    if not attrs:
        raise ValueError("guarded_by() needs at least one guarded attribute")
    for name in (lock_attr, *attrs):
        if not isinstance(name, str) or not name.isidentifier():
            raise ValueError(f"guarded_by() arguments must be identifiers, got {name!r}")

    def decorate(cls: type[_T]) -> type[_T]:
        # Copy rather than mutate: the attribute may be inherited, and a
        # subclass extending the discipline must not edit its parent's map.
        merged: dict[str, frozenset[str]] = dict(getattr(cls, GUARDS_ATTR, {}))
        merged[lock_attr] = merged.get(lock_attr, frozenset()) | frozenset(attrs)
        setattr(cls, GUARDS_ATTR, merged)
        return cls

    return decorate


def holds_lock(lock_attr: str) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Mark a method whose contract is "caller already holds ``self.<lock_attr>``".

    The decorator is metadata only — it does not wrap or check anything
    at runtime (the runtime sanitizer verifies the promise separately
    when ``REPRO_SANITIZE`` is on, via the monitor's held-stack).
    """
    if not isinstance(lock_attr, str) or not lock_attr.isidentifier():
        raise ValueError(f"holds_lock() argument must be an identifier, got {lock_attr!r}")

    def decorate(func: Callable[..., Any]) -> Callable[..., Any]:
        setattr(func, HOLDS_ATTR, lock_attr)
        return func

    return decorate


def guards_of(cls: type) -> dict[str, frozenset[str]]:
    """Return the ``{lock_attr: guarded attrs}`` map for *cls* (inherited included)."""
    return dict(getattr(cls, GUARDS_ATTR, {}))


def held_by_caller(method: Callable[..., Any]) -> str | None:
    """Return the lock attribute a ``@holds_lock`` method assumes, else ``None``."""
    return getattr(method, HOLDS_ATTR, None)
