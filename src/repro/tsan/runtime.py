"""Runtime lock-order sanitizer: instrumented locks under ``REPRO_SANITIZE``.

The static pass (:mod:`repro.tsan.static`) sees only what the syntax
shows; aliased locks or data-dependent acquisition orders escape it.
This module closes the gap the way lockdep does: every instrumented
lock reports its acquisitions to a process-wide
:class:`LockOrderMonitor`, which keeps a per-thread stack of held locks
and the union of all *observed* acquisition edges.  The moment an
acquisition would close a cycle in that graph — i.e. two call paths
take the same pair of locks in opposite orders — it raises
:class:`~repro.errors.LintError` carrying a ``T002`` diagnostic,
**before** blocking on the lock, so the offending path is reported
instead of deadlocking the process.

Classes opt in through :func:`monitored_lock`::

    self._lock = monitored_lock(f"{type(self).__name__}._lock")

which returns a plain ``threading.Lock`` when sanitizing is off (the
common case: zero overhead) and a :class:`MonitoredLock` when
``REPRO_SANITIZE`` is truthy or a :func:`repro.lint.sanitizing` context
is active — see :func:`repro.lint.sanitize.env_flag` for the accepted
environment values.
"""

from __future__ import annotations

import sys
import threading
from typing import Union

from repro.errors import LintError
from repro.tsan.registry import guarded_by, holds_lock

__all__ = [
    "LockOrderMonitor",
    "MonitoredLock",
    "lock_order_monitor",
    "monitored_lock",
]


def _call_site() -> str:
    """``file:line`` of the nearest caller outside this module."""
    frame = sys._getframe(1)
    while frame is not None and frame.f_globals.get("__name__") == __name__:
        frame = frame.f_back
    if frame is None:  # pragma: no cover - interpreter internals
        return "<unknown>"
    return f"{frame.f_code.co_filename}:{frame.f_lineno}"


@guarded_by("_mutex", "_edges", "_edge_sites")
class LockOrderMonitor:
    """Observed lock-order graph plus per-thread held stacks.

    Thread safety: ``_edges``/``_edge_sites`` are guarded by the
    monitor's own ``_mutex`` (a *plain* lock — the monitor must not
    monitor itself); the held stacks live in a ``threading.local`` and
    are only ever touched by their owning thread.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()  # tsan: ignore[T003]
        self._edges: dict[str, set[str]] = {}
        self._edge_sites: dict[tuple[str, str], str] = {}
        self._held = threading.local()

    # -- per-thread stack ---------------------------------------------

    def _stack(self) -> list[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = self._held.stack = []
        return stack

    def held_locks(self) -> tuple[str, ...]:
        """The calling thread's currently held (monitored) locks, outermost first."""
        return tuple(self._stack())

    # -- protocol driven by MonitoredLock -----------------------------

    def acquiring(self, name: str) -> None:
        """Record intent to acquire ``name``; raise on a lock-order cycle.

        Must be called *before* blocking on the underlying lock: when
        the acquisition would close a cycle we want a diagnostic, not a
        deadlock.
        """
        stack = self._stack()
        if name in stack:
            self._fail(
                f"relock of non-reentrant lock {name!r} "
                f"(already held by this thread; stack: {' -> '.join(stack)})",
                site=_call_site(),
            )
        if not stack:
            return
        site = _call_site()
        with self._mutex:
            for held in stack:
                targets = self._edges.setdefault(held, set())
                if name not in targets:
                    targets.add(name)
                    self._edge_sites.setdefault((held, name), site)
            cycle = self._cycle_back_to_locked(name, set(stack))
        if cycle is not None:
            self._fail(
                "lock-order cycle (potential deadlock): "
                + " -> ".join([*cycle, cycle[0]])
                + f"; closing acquisition of {name!r} at {site} "
                + f"while holding {' -> '.join(stack)}",
                site=site,
            )

    def acquired(self, name: str) -> None:
        """Push ``name`` onto the calling thread's held stack."""
        self._stack().append(name)

    def released(self, name: str) -> None:
        """Drop the most recent acquisition of ``name`` by this thread."""
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == name:
                del stack[index]
                return

    # -- graph queries ------------------------------------------------

    @holds_lock("_mutex")
    def _cycle_back_to_locked(self, start: str,
                              held: set[str]) -> list[str] | None:
        """DFS from ``start``: a path back into ``held`` closes a cycle.

        Caller must hold ``_mutex``.
        """
        seen: set[str] = set()
        path: list[str] = []

        def visit(node: str) -> bool:
            path.append(node)
            if node in held and len(path) > 1:
                return True
            if node in seen:
                path.pop()
                return False
            seen.add(node)
            for successor in sorted(self._edges.get(node, ())):
                if visit(successor):
                    return True
            path.pop()
            return False

        return list(path) if visit(start) else None

    def edges(self) -> dict[str, frozenset[str]]:
        """A snapshot of the observed lock-order graph."""
        with self._mutex:
            return {src: frozenset(dst) for src, dst in self._edges.items()}

    def reset(self) -> None:
        """Forget all observed edges (the calling thread's stack too)."""
        with self._mutex:
            self._edges.clear()
            self._edge_sites.clear()
        self._held.stack = []

    # -- failure ------------------------------------------------------

    def _fail(self, message: str, site: str) -> None:
        # Imported here, not at module level: this module sits below
        # ``repro.obs.metrics`` in the import graph, and ``repro.lint``
        # transitively imports the obs layer.
        from repro.lint.diagnostics import make_diagnostic

        diagnostic = make_diagnostic("T002", message, location=site)
        error = LintError(f"T002: {message}")
        error.diagnostic = diagnostic  # type: ignore[attr-defined]
        raise error


class MonitoredLock:
    """A ``threading.Lock`` reporting acquisitions to a :class:`LockOrderMonitor`.

    Context-manager and ``acquire``/``release`` compatible with the
    stdlib lock, so it can be dropped into any ``self._lock`` slot.
    """

    def __init__(self, name: str, monitor: LockOrderMonitor | None = None) -> None:
        self.name = name
        self._inner = threading.Lock()  # tsan: ignore[T003]
        self.monitor = monitor if monitor is not None else lock_order_monitor()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self.monitor.acquiring(self.name)
        # The stdlib lock forbids a timeout with blocking=False.
        ok = (
            self._inner.acquire(blocking, timeout)
            if blocking
            else self._inner.acquire(False)
        )
        if ok:
            self.monitor.acquired(self.name)
        return ok

    def release(self) -> None:
        self._inner.release()
        self.monitor.released(self.name)

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "locked" if self.locked() else "unlocked"
        return f"MonitoredLock({self.name!r}, {state})"


#: The process-wide monitor all :func:`monitored_lock` locks report to.
_MONITOR = LockOrderMonitor()


def lock_order_monitor() -> LockOrderMonitor:
    """The process-wide :class:`LockOrderMonitor` singleton."""
    return _MONITOR


def monitored_lock(name: str) -> Union[MonitoredLock, threading.Lock]:
    """A lock for ``self._lock`` slots: instrumented iff sanitizing is on.

    The sanitize decision is taken *here*, at lock creation (usually
    object construction): long-lived objects created before
    ``REPRO_SANITIZE`` is consulted keep plain locks.
    """
    from repro.lint.sanitize import sanitize_enabled

    if sanitize_enabled():
        return MonitoredLock(name)
    return threading.Lock()
