"""The AST self-lint behind ``repro lint --self`` (``Txxx`` codes).

Two passes over the Python sources of the package itself:

1. **Collection** builds a whole-program class table: for every class,
   the ``@guarded_by`` / ``@holds_lock`` declarations (read straight out
   of the decorator syntax — the analyzed modules are *never*
   imported), the lock attributes it assigns, the classes its instance
   attributes are constructed from, and which of its methods acquire
   which of its locks.
2. **Checking** walks every function with a flow context of currently
   held locks (entered ``with R.<lock>`` blocks) and emits:

   * ``T001`` — read/write of a guarded attribute, or call of a
     ``@holds_lock`` method, without holding the declared lock;
   * ``T002`` — a cycle in the whole-program lock-order graph, whose
     edges are lexically nested acquisitions plus one level of
     call-through (``with A._lock: obj.method()`` where ``method`` is
     known to take ``B._lock``);
   * ``T003`` — a lock-valued attribute on a class with no
     ``@guarded_by`` declaration for it;
   * ``T004`` — bare ``==``/``!=`` against a non-integral float
     literal (integral sentinels like ``t == 0.0`` are fine — they are
     exact in binary floating point and used deliberately);
   * ``T005`` — a builtin ``sum()`` whose argument mentions rates:
     accumulation order changes the result in floating point, which is
     exactly the drift ``P006`` exists to catch downstream.  Use
     ``math.fsum`` (order-independent, correctly rounded) or the
     quantizing :func:`repro.bisim.signatures.stable_rate_sum`.

``repro/bisim/signatures.py`` is exempt from T004/T005: it *is* the
sanctioned home of float comparison and rate summation policy.

Escape hatch: a trailing ``# tsan: ignore[T001]`` (or a blanket
``# tsan: ignore``) suppresses findings on that line.

The analysis is deliberately syntactic and conservative in what it
*claims*: receivers are resolved only through ``self``, annotated
parameters, ``self.x = ClassName(...)`` constructor assignments and
local ``x = ClassName(...)`` bindings; anything unresolved is skipped,
never guessed.  That keeps the pass fast (<1 s over the tree) and
false-positive-free at the cost of not chasing aliases — the runtime
sanitizer (:mod:`repro.tsan.runtime`) covers what escapes it.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.diagnostics import Diagnostic, LintReport, make_diagnostic

__all__ = ["lint_self", "lint_source", "source_root"]

#: Modules (by ``/``-normalised suffix) exempt from the numeric idiom
#: rules T004/T005 — the one place float policy is allowed to live.
NUMERIC_EXEMPT_SUFFIXES: tuple[str, ...] = ("repro/bisim/signatures.py",)

#: Methods where unguarded ``self`` access is fine: the instance is not
#: yet (or no longer) reachable from other threads.
_EXEMPT_METHODS = frozenset({"__init__", "__post_init__", "__new__", "__del__"})

#: Call targets (final name segment) whose result is a lock.
_LOCK_FACTORIES = frozenset({"Lock", "RLock", "monitored_lock", "CooperativeLock"})

#: Final attribute-name fragments that mark a ``with`` target as a lock
#: acquisition even when the receiver's class cannot be resolved.
_LOCKISH_FRAGMENTS = ("lock", "mutex")

_IGNORE_RE = re.compile(r"#\s*tsan:\s*ignore(?:\[([A-Z0-9,\s]+)\])?")
_WORD_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def source_root() -> Path:
    """The ``src/`` directory containing the installed ``repro`` package."""
    return Path(__file__).resolve().parents[2]


# ---------------------------------------------------------------------------
# Pass 1: collection
# ---------------------------------------------------------------------------


@dataclass
class _ClassInfo:
    """Everything the checker needs to know about one class."""

    name: str
    bases: tuple[str, ...] = ()
    #: lock attribute -> guarded attribute names (from ``@guarded_by``).
    guards: dict[str, set[str]] = field(default_factory=dict)
    #: method name -> lock attribute it assumes held (from ``@holds_lock``).
    holds: dict[str, str] = field(default_factory=dict)
    #: attributes assigned a lock-valued expression anywhere in the class.
    lock_attrs: set[str] = field(default_factory=set)
    #: instance attribute -> name of the class it is constructed from.
    attr_types: dict[str, str] = field(default_factory=dict)
    #: method name -> lock attributes it acquires via ``with self.<lock>``.
    method_acquires: dict[str, set[str]] = field(default_factory=dict)
    #: lock attribute -> line where it is first assigned (for T003).
    lock_lines: dict[str, int] = field(default_factory=dict)

    def guard_for(self, attr: str) -> str | None:
        """The lock attribute guarding ``attr``, if declared."""
        for lock_attr, attrs in self.guards.items():
            if attr in attrs:
                return lock_attr
        return None

    def lock_names(self) -> set[str]:
        return set(self.guards) | self.lock_attrs


def _final_name(node: ast.expr) -> str | None:
    """The last identifier of a ``Name``/``Attribute`` chain, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _decorator_call(node: ast.expr, name: str) -> ast.Call | None:
    """Return ``node`` as a ``Call`` of decorator ``name`` (possibly dotted)."""
    if isinstance(node, ast.Call) and _final_name(node.func) == name:
        return node
    return None


def _string_args(call: ast.Call) -> list[str] | None:
    """All positional args as strings, or ``None`` if any is non-literal."""
    out: list[str] = []
    for arg in call.args:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            out.append(arg.value)
        else:
            return None
    return out


def _collect_class(node: ast.ClassDef) -> _ClassInfo:
    info = _ClassInfo(
        name=node.name,
        bases=tuple(b for b in (_final_name(base) for base in node.bases) if b),
    )
    for decorator in node.decorator_list:
        call = _decorator_call(decorator, "guarded_by")
        if call is not None:
            args = _string_args(call)
            if args and len(args) >= 2:
                info.guards.setdefault(args[0], set()).update(args[1:])
    for item in node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for decorator in item.decorator_list:
            call = _decorator_call(decorator, "holds_lock")
            if call is not None:
                args = _string_args(call)
                if args and len(args) == 1:
                    info.holds[item.name] = args[0]
        _scan_method_for_collection(item, info)
    return info


def _scan_method_for_collection(method: ast.FunctionDef | ast.AsyncFunctionDef,
                                info: _ClassInfo) -> None:
    for node in ast.walk(method):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            callee = _final_name(node.value.func)
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    if callee in _LOCK_FACTORIES:
                        info.lock_attrs.add(target.attr)
                        info.lock_lines.setdefault(target.attr, node.lineno)
                    elif callee:
                        info.attr_types.setdefault(target.attr, callee)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                expr = item.context_expr
                if (
                    isinstance(expr, ast.Attribute)
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"
                    and _looks_like_lock(expr.attr)
                ):
                    info.method_acquires.setdefault(method.name, set()).add(expr.attr)


def _looks_like_lock(name: str) -> bool:
    lowered = name.lower()
    return any(fragment in lowered for fragment in _LOCKISH_FRAGMENTS)


def _merge_inherited(table: dict[str, _ClassInfo]) -> None:
    """Fold base-class declarations into subclasses (chains up to depth 3)."""
    for _ in range(3):
        for info in table.values():
            for base_name in info.bases:
                base = table.get(base_name)
                if base is None or base is info:
                    continue
                for lock_attr, attrs in base.guards.items():
                    info.guards.setdefault(lock_attr, set()).update(attrs)
                for method, lock_attr in base.holds.items():
                    info.holds.setdefault(method, lock_attr)
                info.lock_attrs |= base.lock_attrs
                for attr, type_name in base.attr_types.items():
                    info.attr_types.setdefault(attr, type_name)
                for method, acquired in base.method_acquires.items():
                    info.method_acquires.setdefault(method, set()).update(acquired)


# ---------------------------------------------------------------------------
# Pass 2: checking
# ---------------------------------------------------------------------------


class _FileChecker:
    """Checks one parsed module against the whole-program class table."""

    def __init__(
        self,
        tree: ast.Module,
        lines: Sequence[str],
        relpath: str,
        table: dict[str, _ClassInfo],
        graph: dict[tuple[str, str], str],
    ) -> None:
        self.tree = tree
        self.lines = lines
        self.relpath = relpath
        self.table = table
        self.graph = graph  # (from_node, to_node) -> first-seen location
        self.numeric_exempt = any(
            relpath.replace("\\", "/").endswith(suffix)
            for suffix in NUMERIC_EXEMPT_SUFFIXES
        )
        self.diagnostics: list[Diagnostic] = []

    # -- reporting ----------------------------------------------------

    def _suppressed(self, lineno: int, code: str) -> bool:
        if not 1 <= lineno <= len(self.lines):
            return False
        match = _IGNORE_RE.search(self.lines[lineno - 1])
        if match is None:
            return False
        listed = match.group(1)
        if listed is None:
            return True
        return code in {part.strip() for part in listed.split(",")}

    def _report(self, code: str, lineno: int, message: str) -> None:
        if self._suppressed(lineno, code):
            return
        self.diagnostics.append(
            make_diagnostic(code, message, location=f"{self.relpath}:{lineno}")
        )

    # -- entry --------------------------------------------------------

    def run(self) -> None:
        self._check_module_body(self.tree.body, classinfo=None)
        self._check_lock_declarations()

    def _check_lock_declarations(self) -> None:
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            info = self.table.get(node.name)
            if info is None:
                continue
            for lock_attr in sorted(info.lock_attrs):
                if lock_attr not in info.guards:
                    self._report(
                        "T003",
                        info.lock_lines.get(lock_attr, node.lineno),
                        f"{info.name}.{lock_attr} holds a lock but the class "
                        f"declares no @guarded_by({lock_attr!r}, ...) discipline",
                    )

    def _check_module_body(self, body: Iterable[ast.stmt],
                           classinfo: _ClassInfo | None) -> None:
        for stmt in body:
            if isinstance(stmt, ast.ClassDef):
                info = self.table.get(stmt.name)
                self._check_module_body(stmt.body, classinfo=info)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(stmt, classinfo)
            else:
                ctx = _Context(classinfo=None, funcname="<module>", env={},
                               exempt_self=False, holds_lock=None)
                self._scan(stmt, ctx)

    # -- per-function analysis ----------------------------------------

    def _check_function(self, func: ast.FunctionDef | ast.AsyncFunctionDef,
                        classinfo: _ClassInfo | None,
                        inherited: "_Context | None" = None) -> None:
        env = self._build_env(func, classinfo)
        holds = classinfo.holds.get(func.name) if classinfo else None
        exempt = func.name in _EXEMPT_METHODS
        if inherited is not None:
            env = {**inherited.env, **env}
            holds = holds or inherited.holds_lock
            exempt = exempt or inherited.exempt_self
        ctx = _Context(
            classinfo=classinfo,
            funcname=func.name,
            env=env,
            exempt_self=exempt,
            holds_lock=holds,
        )
        for stmt in func.body:
            self._scan(stmt, ctx)

    def _build_env(self, func: ast.FunctionDef | ast.AsyncFunctionDef,
                   classinfo: _ClassInfo | None) -> dict[str, str]:
        env: dict[str, str] = {}
        args = func.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            resolved = self._annotation_class(arg.annotation)
            if resolved:
                env[arg.arg] = resolved
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                callee = _final_name(node.value.func)
                if callee in self.table:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            env.setdefault(target.id, callee)
        return env

    def _annotation_class(self, annotation: ast.expr | None) -> str | None:
        if annotation is None:
            return None
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            text = annotation.value
        else:
            try:
                text = ast.unparse(annotation)
            except Exception:  # pragma: no cover - malformed annotation
                return None
        for word in _WORD_RE.findall(text):
            if word in self.table:
                return word
        return None

    def _resolve(self, node: ast.expr, ctx: "_Context") -> _ClassInfo | None:
        """Resolve a receiver expression to a class, or ``None``."""
        if isinstance(node, ast.Name):
            if node.id == "self" and ctx.classinfo is not None:
                return ctx.classinfo
            name = ctx.env.get(node.id)
            return self.table.get(name) if name else None
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and ctx.classinfo is not None
        ):
            name = ctx.classinfo.attr_types.get(node.attr)
            return self.table.get(name) if name else None
        return None

    def _scan(self, node: ast.AST, ctx: "_Context") -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            self._scan_with(node, ctx)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested function: fresh flow context (it may run later, when
            # the enclosing locks are no longer held), same class scope.
            # Method-level contracts (@holds_lock, __init__ exemption) do
            # carry over — a closure is part of the method's body.
            self._check_function(node, ctx.classinfo, inherited=ctx)
            return
        if isinstance(node, ast.ClassDef):
            self._check_module_body(node.body, classinfo=self.table.get(node.name))
            return
        if isinstance(node, ast.Attribute):
            self._check_attribute(node, ctx)
        elif isinstance(node, ast.Call):
            self._check_call(node, ctx)
        elif isinstance(node, ast.Compare):
            self._check_compare(node)
        for child in ast.iter_child_nodes(node):
            self._scan(child, ctx)

    def _scan_with(self, node: ast.With | ast.AsyncWith, ctx: "_Context") -> None:
        acquired: list[tuple[str, str] | None] = []
        pushed = 0
        for item in node.items:
            expr = item.context_expr
            self._scan(expr, ctx)
            if item.optional_vars is not None:
                self._scan(item.optional_vars, ctx)
            entry = self._lock_acquisition(expr, ctx)
            acquired.append(entry)
            if entry is None:
                continue
            ctx.held.add(entry)
            receiver_key, lock_attr = entry
            resolved = self._resolve(expr.value, ctx) if isinstance(expr, ast.Attribute) else None
            if resolved is not None and lock_attr in resolved.lock_names():
                node_name = f"{resolved.name}.{lock_attr}"
                self._add_edges(node_name, expr.lineno, ctx)
                ctx.node_stack.append(node_name)
                pushed += 1
        for stmt in node.body:
            self._scan(stmt, ctx)
        for entry in acquired:
            if entry is not None:
                ctx.held.discard(entry)
        for _ in range(pushed):
            ctx.node_stack.pop()

    def _lock_acquisition(self, expr: ast.expr,
                          ctx: "_Context") -> tuple[str, str] | None:
        """Classify a with-item as a lock acquisition ``(receiver_key, lock)``."""
        if isinstance(expr, ast.Attribute):
            final = expr.attr
            resolved = self._resolve(expr.value, ctx)
            if resolved is not None and final in resolved.lock_names():
                return (_unparse(expr.value), final)
            if _looks_like_lock(final):
                return (_unparse(expr.value), final)
        elif isinstance(expr, ast.Name) and _looks_like_lock(expr.id):
            return ("", expr.id)
        return None

    def _add_edges(self, node_name: str, lineno: int, ctx: "_Context") -> None:
        location = f"{self.relpath}:{lineno}"
        for held_node in ctx.node_stack:
            self.graph.setdefault((held_node, node_name), location)

    # -- T001 ---------------------------------------------------------

    def _held(self, receiver: ast.expr, lock_attr: str, ctx: "_Context") -> bool:
        is_self = isinstance(receiver, ast.Name) and receiver.id == "self"
        if is_self and (ctx.exempt_self or ctx.holds_lock == lock_attr):
            return True
        return (_unparse(receiver), lock_attr) in ctx.held

    def _check_attribute(self, node: ast.Attribute, ctx: "_Context") -> None:
        resolved = self._resolve(node.value, ctx)
        if resolved is None:
            return
        lock_attr = resolved.guard_for(node.attr)
        if lock_attr is None:
            return
        if self._held(node.value, lock_attr, ctx):
            return
        access = "written" if isinstance(node.ctx, (ast.Store, ast.Del)) else "read"
        self._report(
            "T001",
            node.lineno,
            f"{resolved.name}.{node.attr} is guarded by "
            f"{resolved.name}.{lock_attr} but {access} without holding it "
            f"(in {ctx.funcname})",
        )

    def _check_call(self, node: ast.Call, ctx: "_Context") -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            resolved = self._resolve(func.value, ctx)
            if resolved is not None:
                held_lock = resolved.holds.get(func.attr)
                if held_lock is not None and not self._held(func.value, held_lock, ctx):
                    self._report(
                        "T001",
                        node.lineno,
                        f"{resolved.name}.{func.attr}() requires the caller to "
                        f"hold {resolved.name}.{held_lock} (declared "
                        f"@holds_lock) but it is not held in {ctx.funcname}",
                    )
                # Call-through lock-order edges: the callee will acquire
                # its own locks while we hold ours.
                for lock_attr in resolved.method_acquires.get(func.attr, ()):
                    self._add_edges(f"{resolved.name}.{lock_attr}", node.lineno, ctx)
        if (
            not self.numeric_exempt
            and isinstance(func, ast.Name)
            and func.id == "sum"
            and node.args
            and _mentions_rates(node.args[0])
        ):
            self._report(
                "T005",
                node.lineno,
                f"order-dependent builtin sum() over rates: "
                f"`{_unparse(node)[:80]}` -- use math.fsum or "
                f"repro.bisim.signatures.stable_rate_sum",
            )

    def _check_compare(self, node: ast.Compare) -> None:
        if self.numeric_exempt:
            return
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return
        for operand in (node.left, *node.comparators):
            if (
                isinstance(operand, ast.Constant)
                and isinstance(operand.value, float)
                and not operand.value.is_integer()
            ):
                self._report(
                    "T004",
                    node.lineno,
                    f"bare float equality against {operand.value!r}: "
                    f"`{_unparse(node)[:80]}` -- compare quantized values "
                    f"(repro.bisim.signatures) or use an explicit tolerance",
                )
                return


@dataclass
class _Context:
    """Flow state while scanning one function body."""

    classinfo: _ClassInfo | None
    funcname: str
    env: dict[str, str]
    exempt_self: bool
    holds_lock: str | None
    held: set[tuple[str, str]] = field(default_factory=set)
    node_stack: list[str] = field(default_factory=list)


def _unparse(node: ast.expr) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - defensive
        return "<expr>"


def _mentions_rates(node: ast.expr) -> bool:
    """True when the expression mentions a rate-named identifier.

    Matching is token-wise on underscore-split identifier parts
    (``total_rate`` and ``rates`` match; ``generated`` does not).
    """
    for sub in ast.walk(node):
        name: str | None = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        elif isinstance(sub, ast.arg):
            name = sub.arg
        if name is None:
            continue
        tokens = name.lower().split("_")
        if "rate" in tokens or "rates" in tokens:
            return True
    return False


# ---------------------------------------------------------------------------
# Lock-order cycle detection (T002)
# ---------------------------------------------------------------------------


def _lock_order_cycles(
    graph: dict[tuple[str, str], str],
) -> list[tuple[tuple[str, ...], str]]:
    """All elementary cycles' node sets, each with one witnessing location.

    Tarjan SCCs: any strongly connected component with more than one
    node — or a self-edge — means two threads can acquire the involved
    locks in opposite orders.  One diagnostic per component keeps the
    output readable.
    """
    adjacency: dict[str, set[str]] = {}
    for (src, dst), _ in graph.items():
        adjacency.setdefault(src, set()).add(dst)
        adjacency.setdefault(dst, set())

    index_of: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    components: list[list[str]] = []

    def strongconnect(root: str) -> None:
        # Iterative Tarjan (the lock graph is tiny, but recursion limits
        # are not worth tripping in a linter).
        work = [(root, iter(sorted(adjacency[root])))]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index_of:
                    index_of[successor] = lowlink[successor] = counter[0]
                    counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(sorted(adjacency[successor]))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)

    for node in sorted(adjacency):
        if node not in index_of:
            strongconnect(node)

    cycles: list[tuple[tuple[str, ...], str]] = []
    for component in components:
        members = sorted(component)
        cyclic = len(members) > 1 or (members[0], members[0]) in graph
        if not cyclic:
            continue
        witness = min(
            location
            for (src, dst), location in graph.items()
            if src in component and dst in component
        )
        cycles.append((tuple(members), witness))
    return sorted(cycles)


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def lint_source(
    paths: Sequence[Path],
    root: Path | None = None,
) -> list[Diagnostic]:
    """Run the concurrency/numeric self-lint over ``paths``.

    ``root`` anchors the relative paths used in diagnostic locations;
    files outside it fall back to their base name.  All files share one
    class table and one lock-order graph, so declarations in one module
    are visible while checking another.
    """
    parsed: list[tuple[str, ast.Module, list[str]]] = []
    diagnostics: list[Diagnostic] = []
    table: dict[str, _ClassInfo] = {}
    for path in sorted(paths):
        relpath = _relative_name(path, root)
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError) as exc:
            diagnostics.append(
                make_diagnostic(
                    "T003",
                    f"unreadable or unparsable module: {exc}",
                    location=relpath,
                )
            )
            continue
        parsed.append((relpath, tree, source.splitlines()))
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                info = _collect_class(node)
                existing = table.get(info.name)
                if existing is None:
                    table[info.name] = info
                else:
                    _merge_duplicate(existing, info)
    _merge_inherited(table)

    graph: dict[tuple[str, str], str] = {}
    for relpath, tree, lines in parsed:
        checker = _FileChecker(tree, lines, relpath, table, graph)
        checker.run()
        diagnostics.extend(checker.diagnostics)

    for members, witness in _lock_order_cycles(graph):
        diagnostics.append(
            make_diagnostic(
                "T002",
                "lock-order cycle (potential deadlock): "
                + " <-> ".join(members)
                + f"; first conflicting acquisition at {witness}",
                location=witness,
            )
        )
    return diagnostics


def lint_self(root: Path | None = None) -> LintReport:
    """Lint the installed ``repro`` package tree itself."""
    base = root if root is not None else source_root()
    files = sorted(
        path
        for path in (base / "repro").rglob("*.py")
        if "__pycache__" not in path.parts
    )
    report = LintReport(target=f"{base / 'repro'} (self)", kind="python")
    report.extend(lint_source(files, root=base))
    return report


def _relative_name(path: Path, root: Path | None) -> str:
    if root is not None:
        try:
            return path.resolve().relative_to(Path(root).resolve()).as_posix()
        except ValueError:
            pass
    return path.name


def _merge_duplicate(existing: _ClassInfo, incoming: _ClassInfo) -> None:
    """Union declarations of same-named classes in different modules."""
    for lock_attr, attrs in incoming.guards.items():
        existing.guards.setdefault(lock_attr, set()).update(attrs)
    existing.holds.update(incoming.holds)
    existing.lock_attrs |= incoming.lock_attrs
    for attr, type_name in incoming.attr_types.items():
        existing.attr_types.setdefault(attr, type_name)
    for method, acquired in incoming.method_acquires.items():
        existing.method_acquires.setdefault(method, set()).update(acquired)
    for lock_attr, lineno in incoming.lock_lines.items():
        existing.lock_lines.setdefault(lock_attr, lineno)
