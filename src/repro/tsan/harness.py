"""Seeded context-switch fuzzing: deterministic thread interleavings.

Real races hide behind the scheduler: a lost update in
``FleetStore.record_push`` needs two threads inside the same
read-modify-write window, which free-running tests hit once in a
thousand runs.  :class:`InterleavingHarness` removes the luck.  It runs
the registered thread bodies under a *single-token* discipline — at any
moment exactly one thread executes, every other thread parks on its own
semaphore — and at every traced line the running thread asks a
``random.Random(seed)`` which thread runs next.  Because only the token
holder ever consults the RNG, the whole interleaving is a pure function
of the seed: a seed that loses an update today loses the same update in
CI forever, and the recorded :attr:`HarnessResult.schedule` is
byte-identical across runs.

Line granularity comes from ``sys.settrace`` (installed per worker via
``threading.settrace``), filtered to the files registered with
:meth:`InterleavingHarness.trace`; untraced code runs at full speed.

OS locks would deadlock under this discipline (the token holder blocks
on a lock whose owner cannot run), so shared state under test swaps its
``_lock`` for a :class:`CooperativeLock` from
:meth:`InterleavingHarness.lock` — busy-waiting by *handing the token
away*, and reporting acquisitions to a
:class:`~repro.tsan.runtime.LockOrderMonitor` so forced interleavings
also feed the observed lock-order graph.
"""

from __future__ import annotations

import random
import sys
import threading
from dataclasses import dataclass, field
from types import FrameType
from typing import Any, Callable, Iterable

from repro.tsan.runtime import LockOrderMonitor

__all__ = [
    "CooperativeLock",
    "HarnessDeadlock",
    "HarnessResult",
    "InterleavingHarness",
    "find_racy_seed",
]


class HarnessDeadlock(RuntimeError):
    """Every other thread is finished yet the running one cannot proceed."""


class _Aborted(BaseException):
    """Internal: unwind a worker after the harness gave up (timeout)."""


@dataclass
class HarnessResult:
    """Outcome of one :meth:`InterleavingHarness.run`.

    ``schedule`` is the sequence of thread indices that received the
    token — the deterministic fingerprint of the interleaving.
    """

    schedule: tuple[int, ...] = ()
    switches: int = 0
    errors: list[tuple[str, BaseException]] = field(default_factory=list)
    timed_out: bool = False

    @property
    def ok(self) -> bool:
        return not self.errors and not self.timed_out


class CooperativeLock:
    """A lock that yields the scheduling token instead of blocking.

    Only ever manipulated by the harness's single running thread, so
    plain attribute updates are atomic by construction; the point is
    the *protocol* (hand the token away until the owner releases), not
    memory safety.
    """

    def __init__(self, harness: "InterleavingHarness", name: str) -> None:
        self._harness = harness
        self.name = name
        self._owner: int | None = None

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        harness = self._harness
        monitor = harness.monitor
        if monitor is not None:
            monitor.acquiring(self.name)
        while self._owner is not None:
            if not blocking:
                return False
            harness._yield_to_other()
        self._owner = harness._current
        if monitor is not None:
            monitor.acquired(self.name)
        return True

    def release(self) -> None:
        if self._owner is None:
            raise RuntimeError(f"release of unacquired CooperativeLock {self.name!r}")
        self._owner = None
        if self._harness.monitor is not None:
            self._harness.monitor.released(self.name)

    def locked(self) -> bool:
        return self._owner is not None

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()


class InterleavingHarness:
    """Run thread bodies under forced, seeded, line-level scheduling."""

    def __init__(self, seed: int = 0, max_switches: int = 100_000,
                 monitor: LockOrderMonitor | None = None) -> None:
        self.seed = seed
        self.max_switches = max_switches
        #: Lock-order monitor fed by :class:`CooperativeLock`; pass
        #: ``None`` to disable, or share one across harness runs.
        self.monitor: LockOrderMonitor | None = (
            monitor if monitor is not None else LockOrderMonitor()
        )
        self._rng = random.Random(seed)
        self._bodies: list[tuple[str, Callable[[], Any]]] = []
        self._trace_files: set[str] = set()
        self._tokens: list[threading.Semaphore] = []
        self._runnable: set[int] = set()
        self._current: int = -1
        self._schedule: list[int] = []
        self._switches = 0
        self._abort = False
        self._done = threading.Semaphore(0)
        self._errors: list[tuple[str, BaseException]] = []

    # -- registration -------------------------------------------------

    def add(self, body: Callable[[], Any], name: str | None = None) -> int:
        """Register a thread body; returns its index (the schedule id)."""
        index = len(self._bodies)
        self._bodies.append((name or f"thread-{index}", body))
        return index

    def trace(self, *modules_or_files: Any) -> None:
        """Switch-point granularity: trace lines of these modules/files."""
        for item in modules_or_files:
            filename = getattr(item, "__file__", None) or str(item)
            self._trace_files.add(filename)

    def lock(self, name: str = "lock") -> CooperativeLock:
        """A harness-aware lock to swap into the object under test."""
        return CooperativeLock(self, name)

    # -- scheduling core ----------------------------------------------

    def _switch_to(self, target: int) -> None:
        me = self._current
        self._current = target
        self._schedule.append(target)
        self._tokens[target].release()
        self._tokens[me].acquire()
        if self._abort:
            raise _Aborted

    def _maybe_switch(self) -> None:
        if self._abort:
            raise _Aborted
        if not self._runnable:
            return
        self._switches += 1
        if self._switches > self.max_switches:
            raise HarnessDeadlock(
                f"interleaving exceeded {self.max_switches} switch points "
                f"(seed {self.seed}); livelock in the code under test?"
            )
        target = self._rng.choice(sorted(self._runnable))
        if target != self._current:
            self._switch_to(target)

    def _yield_to_other(self) -> None:
        """Hand the token to some *other* runnable thread (lock busy-wait)."""
        others = sorted(self._runnable - {self._current})
        if not others:
            raise HarnessDeadlock(
                "cooperative lock is held but no other thread is runnable "
                f"(seed {self.seed}) -- a thread exited while holding it?"
            )
        self._switches += 1
        if self._switches > self.max_switches:
            raise HarnessDeadlock(
                f"interleaving exceeded {self.max_switches} switch points "
                f"while waiting for a lock (seed {self.seed})"
            )
        self._switch_to(self._rng.choice(others))

    # -- tracing ------------------------------------------------------

    def _global_trace(self, frame: FrameType, event: str, arg: Any):
        if event != "call" or frame.f_code.co_filename not in self._trace_files:
            return None
        return self._local_trace

    def _local_trace(self, frame: FrameType, event: str, arg: Any):
        if event == "line":
            self._maybe_switch()
        return self._local_trace

    # -- worker lifecycle ---------------------------------------------

    def _worker(self, index: int, name: str, body: Callable[[], Any]) -> None:
        self._tokens[index].acquire()  # wait for the first token grant
        if self._abort:
            return
        try:
            body()
        except _Aborted:
            return
        except BaseException as error:  # noqa: B036 - report, don't die
            self._errors.append((name, error))
        finally:
            sys.settrace(None)
            self._runnable.discard(index)
            if self._abort:
                pass
            elif self._runnable:
                target = self._rng.choice(sorted(self._runnable))
                self._current = target
                self._schedule.append(target)
                self._tokens[target].release()
            else:
                self._done.release()

    # -- entry --------------------------------------------------------

    def run(self, timeout: float = 60.0) -> HarnessResult:
        """Execute all registered bodies to completion; returns the result.

        A fresh harness per run: ``run`` is not reentrant.
        """
        if not self._bodies:
            return HarnessResult()
        self._tokens = [threading.Semaphore(0) for _ in self._bodies]
        self._runnable = set(range(len(self._bodies)))
        threads = [
            threading.Thread(
                target=self._worker, args=(index, name, body),
                name=f"tsan-{name}", daemon=True,
            )
            for index, (name, body) in enumerate(self._bodies)
        ]
        gettrace = getattr(threading, "gettrace", None)  # 3.12+
        previous_trace = (
            gettrace() if gettrace is not None
            else threading._trace_hook  # type: ignore[attr-defined]
        )
        threading.settrace(self._global_trace)
        try:
            for thread in threads:
                thread.start()
            first = self._rng.choice(sorted(self._runnable))
            self._current = first
            self._schedule.append(first)
            self._tokens[first].release()
            finished = self._done.acquire(timeout=timeout)
            if not finished:
                self._abort = True
                for token in self._tokens:
                    token.release()
            for thread in threads:
                thread.join(timeout=5.0)
        finally:
            threading.settrace(previous_trace)  # type: ignore[arg-type]
        return HarnessResult(
            schedule=tuple(self._schedule),
            switches=self._switches,
            errors=list(self._errors),
            timed_out=not finished,
        )


def find_racy_seed(
    build: Callable[["InterleavingHarness"], Callable[[], bool]],
    seeds: Iterable[int],
) -> int | None:
    """First seed whose interleaving makes ``build``'s checker report a race.

    ``build`` wires bodies into a *fresh* harness and returns a
    zero-argument checker evaluated after the run (``True`` = race
    observed).  Used by tests to pin a witnessing seed, and by the CI
    ``tsan`` job to prove the planted FleetStore race reproduces.
    """
    for seed in seeds:
        harness = InterleavingHarness(seed=seed)
        check = build(harness)
        result = harness.run()
        if result.ok and check():
            return seed
    return None
