"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause
while still being able to distinguish model-construction problems from
numerical ones.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ModelError",
    "NonUniformError",
    "LintError",
    "TransformationError",
    "NumericalError",
    "ConvergenceError",
    "CompositionError",
    "SchedulerError",
]


class ReproError(Exception):
    """Base class of all errors raised by the ``repro`` library."""


class ModelError(ReproError):
    """A model (LTS, CTMC, IMC, CTMDP, ...) is structurally invalid.

    Examples: transitions referring to states outside the state space,
    non-positive rates, an empty state space, or a distribution that does
    not sum to one.
    """


class NonUniformError(ModelError):
    """An operation that requires a *uniform* model received a non-uniform one.

    The timed-reachability algorithm of Baier et al. (Algorithm 1 in the
    paper) is only correct for uniform CTMDPs; this error signals that the
    precondition was violated rather than silently producing wrong numbers.
    """


class LintError(ModelError):
    """A model failed static analysis at a sanitizer boundary.

    Raised by :func:`repro.lint.sanitize_model` when a model crossing a
    trust boundary (engine-registry resolution, solver preparation)
    carries error-level diagnostics.  The message lists the findings.
    """


class TransformationError(ReproError):
    """The uIMC-to-uCTMDP transformation cannot be applied.

    Raised for Zeno models (cycles of interactive transitions under the
    closed-system view), for interactive deadlocks reachable through
    Markov transitions, and for word-label enumeration blow-ups.
    """


class NumericalError(ReproError):
    """A numerical routine failed to reach its accuracy contract.

    For instance the Fox-Glynn weighter may underflow for extreme
    truncation-point / precision combinations.
    """


class ConvergenceError(ReproError):
    """An iterative fixpoint computation exhausted its round budget.

    Raised by :func:`repro.bisim.partition.refine_to_fixpoint` when a
    caller-supplied ``max_rounds`` bound is hit before the signature
    fixpoint: the partial partition is *not* a bisimulation, so
    quotienting by it would be unsound.  Callers that genuinely want the
    partial result pass ``allow_unconverged=True`` instead.
    """


class CompositionError(ReproError):
    """Parallel composition / hiding / relabelling received invalid input."""


class SchedulerError(ReproError):
    """A scheduler object is inconsistent with the model it is applied to."""
