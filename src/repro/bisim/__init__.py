"""Bisimulations: partition refinement, strong & branching variants, lumping."""

from repro.bisim.branching import (
    ENGINES,
    branching_bisimulation,
    branching_minimize,
    is_stochastic_branching_bisimulation,
)
from repro.bisim.compare import are_branching_bisimilar, are_strongly_bisimilar, disjoint_union
from repro.bisim.ctmdp_bisim import ctmdp_bisimulation, ctmdp_equivalent, ctmdp_minimize
from repro.bisim.lumping import lump, lumping_partition
from repro.bisim.partition import Partition, refine_to_fixpoint
from repro.bisim.quotient import map_labels_through, quotient_imc
from repro.bisim.signatures import quantize_rate, rate_signature, stable_rate_sum
from repro.bisim.strong import strong_bisimulation, strong_minimize
from repro.bisim.weak import weak_bisimulation, weak_minimize
from repro.bisim.worklist import worklist_refine

__all__ = [
    "are_branching_bisimilar",
    "are_strongly_bisimilar",
    "disjoint_union",
    "ENGINES",
    "branching_bisimulation",
    "branching_minimize",
    "is_stochastic_branching_bisimulation",
    "ctmdp_bisimulation",
    "ctmdp_equivalent",
    "ctmdp_minimize",
    "lump",
    "lumping_partition",
    "Partition",
    "refine_to_fixpoint",
    "map_labels_through",
    "quotient_imc",
    "quantize_rate",
    "rate_signature",
    "stable_rate_sum",
    "strong_bisimulation",
    "strong_minimize",
    "weak_bisimulation",
    "weak_minimize",
    "worklist_refine",
]
