"""Partition-refinement machinery shared by the bisimulation algorithms.

A partition of the state space is stored as an array of block
identifiers.  Refinement proceeds in rounds: a *signature function*
assigns every state a hashable value computed relative to the current
partition; states of one block with different signatures are separated.
The loop stops when no round splits anything -- the signature fixpoint.

The concrete bisimulations (strong, stochastic branching, CTMC lumping)
only differ in their signature functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Sequence

import numpy as np

from repro.errors import ConvergenceError

__all__ = ["Partition", "refine_to_fixpoint"]


@dataclass
class Partition:
    """A partition of ``0 .. num_states - 1`` into numbered blocks.

    Block identifiers are consecutive integers starting at zero; the
    identifier assignment is canonical (ordered by the smallest state in
    each block) so equal partitions compare equal.
    """

    block_of: np.ndarray

    @classmethod
    def trivial(cls, num_states: int) -> "Partition":
        """The one-block partition."""
        return cls(block_of=np.zeros(num_states, dtype=np.int64))

    @classmethod
    def from_labels(cls, labels: Sequence[Hashable]) -> "Partition":
        """Partition by equality of labels (e.g. atomic propositions)."""
        ids: dict[Hashable, int] = {}
        block_of = np.empty(len(labels), dtype=np.int64)
        for state, label in enumerate(labels):
            if label not in ids:
                ids[label] = len(ids)
            block_of[state] = ids[label]
        return cls(block_of=block_of).canonical()

    @classmethod
    def discrete(cls, num_states: int) -> "Partition":
        """The finest partition (every state alone)."""
        return cls(block_of=np.arange(num_states, dtype=np.int64))

    @property
    def num_states(self) -> int:
        """Number of partitioned states."""
        return len(self.block_of)

    @property
    def num_blocks(self) -> int:
        """Number of blocks."""
        return int(self.block_of.max()) + 1 if len(self.block_of) else 0

    def blocks(self) -> list[list[int]]:
        """Blocks as lists of states, indexed by block id."""
        result: list[list[int]] = [[] for _ in range(self.num_blocks)]
        for state, block in enumerate(self.block_of):
            result[int(block)].append(state)
        return result

    def canonical(self) -> "Partition":
        """Renumber blocks by first occurrence; idempotent."""
        if not len(self.block_of):
            return Partition(block_of=self.block_of.copy())
        _, first, inverse = np.unique(
            self.block_of, return_index=True, return_inverse=True
        )
        # Rank the (value-sorted) unique blocks by their first occurrence.
        rank = np.empty(len(first), dtype=np.int64)
        rank[np.argsort(first, kind="stable")] = np.arange(len(first), dtype=np.int64)
        return Partition(block_of=rank[inverse].astype(np.int64))

    def same_block(self, s: int, t: int) -> bool:
        """True iff ``s`` and ``t`` share a block."""
        return bool(self.block_of[s] == self.block_of[t])

    def refined_by(self, signatures: Sequence[Hashable]) -> "Partition":
        """Split every block by signature equality (intersection refine)."""
        ids: dict[tuple[int, Hashable], int] = {}
        new = np.empty_like(self.block_of)
        for state in range(self.num_states):
            key = (int(self.block_of[state]), signatures[state])
            if key not in ids:
                ids[key] = len(ids)
            new[state] = ids[key]
        return Partition(block_of=new)

    def is_refinement_of(self, other: "Partition") -> bool:
        """True iff every block of ``self`` lies inside a block of ``other``."""
        seen: dict[int, int] = {}
        for state in range(self.num_states):
            mine = int(self.block_of[state])
            theirs = int(other.block_of[state])
            if mine in seen:
                if seen[mine] != theirs:
                    return False
            else:
                seen[mine] = theirs
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        return bool(
            np.array_equal(self.canonical().block_of, other.canonical().block_of)
        )


def refine_to_fixpoint(
    initial: Partition,
    signature_fn: Callable[[Partition], Sequence[Hashable]],
    max_rounds: int | None = None,
    allow_unconverged: bool = False,
) -> Partition:
    """Iterate signature refinement until no block splits.

    Parameters
    ----------
    initial:
        Starting partition (typically by atomic propositions, or the
        trivial one-block partition).
    signature_fn:
        Maps the current partition to per-state signatures.
    max_rounds:
        Optional round bound; refinement terminates after at most
        ``num_states + 1`` rounds anyway because every round that does
        not reach the fixpoint strictly increases the block count.
    allow_unconverged:
        By default, exhausting ``max_rounds`` before the fixpoint raises
        :class:`~repro.errors.ConvergenceError` -- a non-fixpoint
        partition is not a bisimulation, and quotienting by one is
        unsound.  Pass ``True`` to get the partial (still valid, merely
        too-coarse-to-trust) partition instead.

    Raises
    ------
    ConvergenceError
        If ``max_rounds`` rounds did not reach the fixpoint and
        ``allow_unconverged`` is not set.
    """
    partition = initial.canonical()
    bound = max_rounds if max_rounds is not None else partition.num_states + 1
    for _ in range(bound):
        refined = partition.refined_by(signature_fn(partition)).canonical()
        if refined.num_blocks == partition.num_blocks:
            return refined
        partition = refined
    if allow_unconverged:
        return partition
    raise ConvergenceError(
        f"partition refinement did not reach its fixpoint within "
        f"{bound} rounds ({partition.num_blocks} blocks and still splitting); "
        f"the partial partition is not a bisimulation -- raise max_rounds or "
        f"pass allow_unconverged=True to accept it anyway"
    )
