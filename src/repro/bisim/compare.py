"""Equivalence checking between two IMCs.

Section 5 of the paper reports that the CADP-generated and the
PRISM-generated FTWC models were checked to be "equivalent -- up to
uniformity".  This module provides that check: two IMCs are compared by
computing a bisimulation partition on their disjoint union and asking
whether the two initial states share a block.
"""

from __future__ import annotations

from typing import Callable, Hashable, Sequence

from repro.bisim.branching import branching_bisimulation
from repro.bisim.partition import Partition
from repro.bisim.strong import strong_bisimulation
from repro.errors import ModelError
from repro.imc.model import IMC

__all__ = ["disjoint_union", "are_branching_bisimilar", "are_strongly_bisimilar"]


def disjoint_union(left: IMC, right: IMC) -> tuple[IMC, int, int]:
    """Disjoint union of two IMCs.

    Returns the union (initial state taken from ``left``) together with
    the indices of both original initial states in the union.
    """
    offset = left.num_states
    names = [f"L:{left.name_of(s)}" for s in range(left.num_states)]
    names += [f"R:{right.name_of(s)}" for s in range(right.num_states)]
    union = IMC(
        num_states=left.num_states + right.num_states,
        interactive=list(left.interactive)
        + [(s + offset, a, t + offset) for s, a, t in right.interactive],
        markov=list(left.markov)
        + [(s + offset, r, t + offset) for s, r, t in right.markov],
        initial=left.initial,
        state_names=names,
    )
    return union, left.initial, right.initial + offset


def _bisimilar(
    left: IMC,
    right: IMC,
    relation: Callable[[IMC, Sequence[Hashable] | None], Partition],
    left_labels: Sequence[Hashable] | None,
    right_labels: Sequence[Hashable] | None,
) -> bool:
    if (left_labels is None) != (right_labels is None):
        raise ModelError("provide labels for both models or neither")
    union, init_left, init_right = disjoint_union(left, right)
    labels: list[Hashable] | None = None
    if left_labels is not None and right_labels is not None:
        if len(left_labels) != left.num_states or len(right_labels) != right.num_states:
            raise ModelError("one label per state required")
        labels = list(left_labels) + list(right_labels)
    partition = relation(union, labels)
    return partition.same_block(init_left, init_right)


def are_branching_bisimilar(
    left: IMC,
    right: IMC,
    left_labels: Sequence[Hashable] | None = None,
    right_labels: Sequence[Hashable] | None = None,
) -> bool:
    """Stochastic branching bisimilarity of the two initial states.

    Optional per-state labels (atomic propositions) must be respected by
    the relation; provide both or neither.

    Because the partition is computed by signature refinement, a
    ``True`` answer is always sound; in rare corner cases the fixpoint
    is finer than the coarsest bisimulation and genuinely equivalent
    models may be reported as different (see
    :mod:`repro.bisim.branching`).
    """
    return _bisimilar(left, right, branching_bisimulation, left_labels, right_labels)


def are_strongly_bisimilar(
    left: IMC,
    right: IMC,
    left_labels: Sequence[Hashable] | None = None,
    right_labels: Sequence[Hashable] | None = None,
) -> bool:
    """Strong stochastic bisimilarity of the two initial states."""
    return _bisimilar(left, right, strong_bisimulation, left_labels, right_labels)
