"""Ordinary lumping of CTMCs [Kemeny & Snell 1960].

Lumping is the purely stochastic instance of the bisimulation machinery:
two states are lumpable iff their cumulative rates into every class
agree.  We use the strict variant that also matches the rate into the
own class (self-loops included), which is exactly what condition 2 of
the paper's Definition 6 demands for stable states and what makes
lumping preserve uniformity.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.bisim.partition import Partition, refine_to_fixpoint
from repro.bisim.signatures import rate_signature, stable_rate_sum
from repro.ctmc.model import CTMC

__all__ = ["lump", "lumping_partition"]


def _signatures(ctmc: CTMC, partition: Partition) -> list[Hashable]:
    block_of = partition.block_of
    result: list[Hashable] = []
    for state in range(ctmc.num_states):
        result.append(
            rate_signature(
                (int(block_of[target]), rate)
                for target, rate in ctmc.successors(state)
            )
        )
    return result


def lumping_partition(
    ctmc: CTMC, labels: Sequence[Hashable] | None = None
) -> Partition:
    """Coarsest (strictly) lumpable partition respecting ``labels``."""
    initial = (
        Partition.from_labels(labels)
        if labels is not None
        else Partition.trivial(ctmc.num_states)
    )
    return refine_to_fixpoint(initial, lambda p: _signatures(ctmc, p))


def lump(
    ctmc: CTMC, labels: Sequence[Hashable] | None = None
) -> tuple[CTMC, Partition]:
    """Quotient ``ctmc`` by lumpability; returns ``(lumped chain, partition)``.

    The lumped chain's rate from block ``B`` to block ``C`` is the
    (common) cumulative rate of ``B``'s members into ``C``.
    """
    partition = lumping_partition(ctmc, labels)
    canon = partition.canonical()
    block_of = canon.block_of
    representative: dict[int, int] = {}
    for state in range(ctmc.num_states):
        block = int(block_of[state])
        representative.setdefault(block, state)
    transitions: list[tuple[int, int, float]] = []
    for block, state in representative.items():
        rates: dict[int, list[float]] = {}
        for target, rate in ctmc.successors(state):
            rates.setdefault(int(block_of[target]), []).append(rate)
        transitions.extend(
            (block, target, stable_rate_sum(contributions))
            for target, contributions in rates.items()
        )
    lumped = CTMC.from_transitions(
        canon.num_blocks, transitions, initial=int(block_of[ctmc.initial])
    )
    return lumped, partition
