"""Quotient construction for IMC bisimulations."""

from __future__ import annotations

from repro.bisim.partition import Partition
from repro.errors import ModelError
from repro.imc.model import IMC, TAU

__all__ = ["quotient_imc", "map_labels_through"]


def quotient_imc(imc: IMC, partition: Partition, drop_inert_tau: bool) -> IMC:
    """Build the quotient IMC of ``imc`` under ``partition``.

    Parameters
    ----------
    imc:
        The original model.
    partition:
        A bisimulation partition (the construction is meaningful for any
        partition, but behaviour is only preserved for bisimulations).
    drop_inert_tau:
        For branching-style quotients, ``tau`` transitions inside one
        block are inert stutter steps and are dropped; strong quotients
        keep them as ``tau`` self-loops.

    Markov transitions of the quotient are taken from the *stable*
    members of each block (cumulative per target block); blocks without
    stable members carry no Markov transitions, reflecting maximal
    progress.  For valid bisimulations all stable members of a block
    agree on these rates.
    """
    if partition.num_states != imc.num_states:
        raise ModelError("partition size does not match the IMC state space")
    canon = partition.canonical()
    block_of = canon.block_of
    num_blocks = canon.num_blocks

    interactive: set[tuple[int, str, int]] = set()
    for src, action, dst in imc.interactive:
        b_src, b_dst = int(block_of[src]), int(block_of[dst])
        if drop_inert_tau and action == TAU and b_src == b_dst:
            continue
        interactive.add((b_src, action, b_dst))

    if drop_inert_tau:
        # A block whose members are all unstable must stay unstable in
        # the quotient: if every member's tau moves were inert (dropped
        # above), the block is divergent and keeps a tau self-loop.
        # Otherwise a divergent block would turn into a stable state of
        # exit rate zero, breaking both behaviour and uniformity.
        has_stable = [False] * num_blocks
        for state in range(imc.num_states):
            if imc.is_stable(state):
                has_stable[int(block_of[state])] = True
        has_tau = [False] * num_blocks
        for b_src, action, _b_dst in interactive:
            if action == TAU:
                has_tau[b_src] = True
        for block in range(num_blocks):
            if not has_stable[block] and not has_tau[block]:
                interactive.add((block, TAU, block))

    # One stable representative per block provides the Markov rates.
    representative: dict[int, int] = {}
    for state in range(imc.num_states):
        block = int(block_of[state])
        if block not in representative and imc.is_stable(state):
            representative[block] = state

    markov: list[tuple[int, float, int]] = []
    for block, state in representative.items():
        rates: dict[int, float] = {}
        for rate, target in imc.markov_successors(state):
            target_block = int(block_of[target])
            rates[target_block] = rates.get(target_block, 0.0) + rate
        markov.extend((block, rate, target) for target, rate in rates.items() if rate > 0.0)

    names = [""] * num_blocks
    sizes = [0] * num_blocks
    for state in range(imc.num_states):
        block = int(block_of[state])
        if not names[block]:
            names[block] = imc.name_of(state)
        sizes[block] += 1
    names = [
        name if size == 1 else f"{name}(+{size - 1})" for name, size in zip(names, sizes)
    ]

    return IMC(
        num_states=num_blocks,
        interactive=sorted(interactive),
        markov=markov,
        initial=int(block_of[imc.initial]),
        state_names=names,
    )


def map_labels_through(partition: Partition, labels: list) -> list:
    """Project per-state labels onto quotient states.

    All members of one block must carry the same label (guaranteed when
    the bisimulation was seeded with these labels); the projected list is
    indexed by block id.
    """
    canon = partition.canonical()
    result: list = [None] * canon.num_blocks
    filled = [False] * canon.num_blocks
    for state, label in enumerate(labels):
        block = int(canon.block_of[state])
        if filled[block] and result[block] != label:
            raise ModelError(
                f"label mismatch inside block {block}: partition does not respect labels"
            )
        result[block] = label
        filled[block] = True
    return result
