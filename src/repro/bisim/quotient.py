"""Quotient construction for IMC bisimulations."""

from __future__ import annotations

import math

import numpy as np

from repro.bisim.partition import Partition
from repro.errors import LintError, ModelError
from repro.imc.model import IMC, TAU

__all__ = ["quotient_imc", "map_labels_through"]


def quotient_imc(imc: IMC, partition: Partition, drop_inert_tau: bool) -> IMC:
    """Build the quotient IMC of ``imc`` under ``partition``.

    Parameters
    ----------
    imc:
        The original model.
    partition:
        A bisimulation partition (the construction is meaningful for any
        partition, but behaviour is only preserved for bisimulations).
    drop_inert_tau:
        For branching-style quotients, ``tau`` transitions inside one
        block are inert stutter steps and are dropped; strong quotients
        keep them as ``tau`` self-loops.

    Markov transitions of the quotient are taken from the *stable*
    members of each block (cumulative per target block; contributions
    folded order-independently with ``fsum``); blocks without stable
    members carry no Markov transitions, reflecting maximal progress.
    For valid bisimulations all stable members of a block agree on these
    rates -- with sanitizing enabled (``REPRO_SANITIZE=1`` or the
    :func:`repro.lint.sanitizing` context) this is *verified* up to the
    shared quantisation tolerance and a ``P006`` lint diagnostic is
    raised on mismatch instead of silently picking one member.
    """
    if partition.num_states != imc.num_states:
        raise ModelError("partition size does not match the IMC state space")
    canon = partition.canonical()
    block_of = canon.block_of
    num_blocks = canon.num_blocks
    stable = imc.stable_mask()

    i_src, i_act, i_dst, actions = imc.encoded_interactive()
    b_src, b_dst = block_of[i_src], block_of[i_dst]
    if drop_inert_tau:
        keep = ~((i_act == 0) & (b_src == b_dst))
        b_src, i_act, b_dst = b_src[keep], i_act[keep], b_dst[keep]
    num_actions = max(len(actions), 1)
    packed = (b_src * np.int64(num_actions) + i_act) * np.int64(num_blocks) + b_dst
    packed = np.unique(packed)
    q_dst = packed % num_blocks
    q_src, q_act = (packed // num_blocks) // num_actions, (packed // num_blocks) % num_actions
    interactive = {
        (int(s), actions[int(a)], int(t))
        for s, a, t in zip(q_src, q_act, q_dst)
    }

    has_stable = np.zeros(num_blocks, dtype=bool)
    has_stable[block_of[stable]] = True
    if drop_inert_tau:
        # A block whose members are all unstable must stay unstable in
        # the quotient: if every member's tau moves were inert (dropped
        # above), the block is divergent and keeps a tau self-loop.
        # Otherwise a divergent block would turn into a stable state of
        # exit rate zero, breaking both behaviour and uniformity.
        has_tau = np.zeros(num_blocks, dtype=bool)
        has_tau[b_src[i_act == 0]] = True
        for block in np.flatnonzero(~has_stable & ~has_tau):
            interactive.add((int(block), TAU, int(block)))

    markov = _quotient_markov(imc, block_of, stable)

    names = [""] * num_blocks
    sizes = [0] * num_blocks
    for state in range(imc.num_states):
        block = int(block_of[state])
        if not names[block]:
            names[block] = imc.name_of(state)
        sizes[block] += 1
    names = [
        name if size == 1 else f"{name}(+{size - 1})" for name, size in zip(names, sizes)
    ]

    return IMC(
        num_states=num_blocks,
        interactive=sorted(interactive),
        markov=markov,
        initial=int(block_of[imc.initial]),
        state_names=names,
    )


def _quotient_markov(
    imc: IMC, block_of: np.ndarray, stable: np.ndarray
) -> list[tuple[int, float, int]]:
    """Markov transitions of the quotient, from stable representatives.

    With sanitizing enabled, the quantised per-block rate signatures of
    *all* stable members of every block are cross-checked first.
    """
    from repro.lint.sanitize import sanitize_enabled

    if sanitize_enabled():
        _check_block_rate_agreement(imc, block_of, stable)

    m_src, m_rate, m_dst = imc.encoded_markov()
    if not len(m_src):
        return []
    # One stable representative per block provides the rates (all stable
    # members agree for valid bisimulations; see the check above).
    stable_states = np.flatnonzero(stable)
    _, first = np.unique(block_of[stable_states], return_index=True)
    is_representative = np.zeros(imc.num_states, dtype=bool)
    is_representative[stable_states[first]] = True

    keep = is_representative[m_src]
    src_block = block_of[m_src[keep]]
    dst_block = block_of[m_dst[keep]]
    rates = m_rate[keep]
    order = np.lexsort((rates, dst_block, src_block))
    src_block, dst_block, rates = src_block[order], dst_block[order], rates[order]
    head = np.ones(len(rates), dtype=bool)
    head[1:] = (src_block[1:] != src_block[:-1]) | (dst_block[1:] != dst_block[:-1])
    starts = np.flatnonzero(head)
    sizes = np.diff(np.append(starts, len(rates)))
    markov: list[tuple[int, float, int]] = []
    for start, size in zip(starts.tolist(), sizes.tolist()):
        rate = rates[start] if size == 1 else math.fsum(rates[start: start + size])
        if rate > 0.0:
            markov.append((int(src_block[start]), float(rate), int(dst_block[start])))
    return markov


def _check_block_rate_agreement(
    imc: IMC, block_of: np.ndarray, stable: np.ndarray
) -> None:
    """Verify all stable members of each block carry the same quantised
    cumulative-rate signature; raise a ``P006`` lint diagnostic otherwise."""
    from repro.bisim.signatures import markov_rate_pairs, rate_signature
    from repro.lint.diagnostics import make_diagnostic

    signatures: dict[int, tuple[frozenset, int]] = {}
    mismatches: list[tuple[int, int, int]] = []
    for state in np.flatnonzero(stable).tolist():
        block = int(block_of[state])
        signature = rate_signature(markov_rate_pairs(imc, state, block_of))
        reference = signatures.get(block)
        if reference is None:
            signatures[block] = (signature, state)
        elif signature != reference[0]:
            mismatches.append((block, reference[1], state))
    if mismatches:
        block, witness, offender = mismatches[0]
        diagnostic = make_diagnostic(
            "P006",
            message=(
                f"stable states {witness} and {offender} of quotient block {block} "
                f"disagree on their cumulative-rate signature (beyond the shared "
                f"quantisation tolerance); the partition is not a stochastic "
                f"branching bisimulation, so its quotient would be unsound"
                + (f" (+{len(mismatches) - 1} more blocks)" if len(mismatches) > 1 else "")
            ),
            states=[witness, offender],
            location="bisim.quotient",
        )
        raise LintError(f"sanitizer rejected quotient construction: {diagnostic}")


def map_labels_through(partition: Partition, labels: list) -> list:
    """Project per-state labels onto quotient states.

    All members of one block must carry the same label (guaranteed when
    the bisimulation was seeded with these labels); the projected list is
    indexed by block id.
    """
    canon = partition.canonical()
    result: list = [None] * canon.num_blocks
    filled = [False] * canon.num_blocks
    for state, label in enumerate(labels):
        block = int(canon.block_of[state])
        if filled[block] and result[block] != label:
            raise ModelError(
                f"label mismatch inside block {block}: partition does not respect labels"
            )
        result[block] = label
        filled[block] = True
    return result
