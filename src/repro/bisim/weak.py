"""Stochastic weak bisimulation for IMCs.

The paper establishes uniformity preservation for stochastic *branching*
bisimulation and remarks that the result "can also be established for
other variations (such as weak bisimulation)" -- this module provides
that variation executably.

Weak bisimulation abstracts ``tau`` more aggressively than branching
bisimulation: a move ``s ==a==> t`` may be preceded and followed by
arbitrary internal steps (``tau* a tau*``), without branching
bisimulation's requirement that the stuttering stays inside the source's
equivalence class.  The stochastic side mirrors condition 2 of
Definition 6 with the unrestricted closure: a stable state reachable
through internal steps must be matched by a stable state with identical
cumulative rates into every class.

Keeping the *exact* per-class rates (including the own class, as in
Definition 6) makes the relation potentially slightly finer than the
textbook weak Markov bisimulation (which factors out internal loops) --
a sound trade: every partition computed here is behaviour-preserving and
preserves uniformity, which the property tests check; maximal
compression is sacrificed in rare corner cases.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components

from repro.bisim.branching import _rate_signature
from repro.bisim.partition import Partition, refine_to_fixpoint
from repro.bisim.quotient import quotient_imc
from repro.imc.model import IMC, TAU

__all__ = ["weak_bisimulation", "weak_minimize"]


def _tau_closures(imc: IMC) -> list[list[int]]:
    """Per state, all states reachable via ``tau`` steps (reflexive).

    Computed once (the closure is partition-independent): SCC
    condensation of the ``tau`` graph, then reachable-set propagation in
    reverse topological order.
    """
    n = imc.num_states
    rows, cols = [], []
    for src, action, dst in imc.interactive:
        if action == TAU and src != dst:
            rows.append(src)
            cols.append(dst)
    if rows:
        graph = sp.csr_matrix((np.ones(len(rows)), (rows, cols)), shape=(n, n))
        num_comps, comp_of = connected_components(graph, directed=True, connection="strong")
    else:
        num_comps, comp_of = n, np.arange(n)

    members: list[list[int]] = [[] for _ in range(num_comps)]
    for state in range(n):
        members[int(comp_of[state])].append(state)

    comp_edges: set[tuple[int, int]] = set()
    for src, dst in zip(rows, cols):
        a, b = int(comp_of[src]), int(comp_of[dst])
        if a != b:
            comp_edges.add((a, b))
    successors: list[list[int]] = [[] for _ in range(num_comps)]
    indegree = np.zeros(num_comps, dtype=np.int64)
    for a, b in comp_edges:
        successors[a].append(b)
        indegree[b] += 1
    order = [c for c in range(num_comps) if indegree[c] == 0]
    head = 0
    while head < len(order):
        comp = order[head]
        head += 1
        for nxt in successors[comp]:
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                order.append(nxt)

    comp_reach: list[set[int]] = [set() for _ in range(num_comps)]
    for comp in reversed(order):
        reach = set(members[comp])
        for nxt in successors[comp]:
            reach |= comp_reach[nxt]
        comp_reach[comp] = reach

    return [sorted(comp_reach[int(comp_of[s])]) for s in range(n)]


def _signatures(
    imc: IMC, partition: Partition, closures: list[list[int]]
) -> list[Hashable]:
    block_of = partition.block_of
    result: list[Hashable] = []
    for state in range(imc.num_states):
        visible: set = set()
        for via in closures[state]:
            for action, target in imc.interactive_successors(via):
                if action == TAU:
                    continue
                # tau* a tau*: any stop state after trailing internals.
                for stop in closures[target]:
                    visible.add((action, int(block_of[stop])))
        # Internal moves that change the class (the empty move matches
        # same-class internal steps).
        internal = {
            (TAU, int(block_of[via]))
            for via in closures[state]
            if block_of[via] != block_of[state]
        }
        stable_rates = frozenset(
            _rate_signature(imc, via, block_of)
            for via in closures[state]
            if imc.is_stable(via)
        )
        result.append((frozenset(visible | internal), stable_rates))
    return result


def weak_bisimulation(
    imc: IMC, labels: Sequence[Hashable] | None = None
) -> Partition:
    """Compute a stochastic weak bisimulation partition.

    ``labels`` seeds the partition (states with different labels never
    merge), exactly as for the branching variant.
    """
    closures = _tau_closures(imc)
    initial = (
        Partition.from_labels(labels)
        if labels is not None
        else Partition.trivial(imc.num_states)
    )
    return refine_to_fixpoint(initial, lambda p: _signatures(imc, p, closures))


def weak_minimize(
    imc: IMC, labels: Sequence[Hashable] | None = None
) -> tuple[IMC, Partition]:
    """Quotient ``imc`` by stochastic weak bisimilarity."""
    partition = weak_bisimulation(imc, labels)
    return quotient_imc(imc, partition, drop_inert_tau=True), partition
