"""Strong bisimulation for CTMDPs: minimisation and equivalence.

Two CTMDP states are strongly bisimilar iff for every transition of one
there is a transition of the other with the same action label and the
same cumulative rates into every equivalence class, and vice versa.
Quotienting by this relation preserves timed reachability for both
objectives (goal sets must be respected via ``labels``), so it can be
used to shrink models before value iteration; the disjoint-union variant
answers whether two independently generated models coincide — our
analogue of the paper's check that the CADP-built and the PRISM-built
FTWC agree.

For the latter use the action labels often differ superficially (the
compositional route labels transitions with hidden-word ``tau``, the
direct generator with ``g_<kind>``); ``respect_actions=False`` compares
the rate structure only, which is sound for the label-insensitive
timed-reachability objective.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.bisim.partition import Partition, refine_to_fixpoint
from repro.bisim.signatures import rate_signature, stable_rate_sum
from repro.core.ctmdp import CTMDP
from repro.errors import ModelError

__all__ = ["ctmdp_bisimulation", "ctmdp_minimize", "ctmdp_equivalent"]


def _choice_rate_signature(
    ctmdp: CTMDP, row: int, block_of
) -> frozenset[tuple[int, float]]:
    """Quantised per-block cumulative rates of one nondeterministic choice."""
    matrix = ctmdp.rate_matrix
    start, end = matrix.indptr[row], matrix.indptr[row + 1]
    return rate_signature(
        (int(block_of[target]), float(rate))
        for target, rate in zip(matrix.indices[start:end], matrix.data[start:end])
    )


def _signatures(
    ctmdp: CTMDP, partition: Partition, respect_actions: bool
) -> list[Hashable]:
    block_of = partition.block_of
    result: list[Hashable] = []
    for state in range(ctmdp.num_states):
        lo, hi = ctmdp.choice_ptr[state], ctmdp.choice_ptr[state + 1]
        choices = set()
        for row in range(lo, hi):
            rate_sig = _choice_rate_signature(ctmdp, row, block_of)
            if respect_actions:
                choices.add((ctmdp.labels[row], rate_sig))
            else:
                choices.add(rate_sig)
        result.append(frozenset(choices))
    return result


def ctmdp_bisimulation(
    ctmdp: CTMDP,
    labels: Sequence[Hashable] | None = None,
    respect_actions: bool = True,
) -> Partition:
    """Coarsest strong bisimulation partition of a CTMDP.

    Parameters
    ----------
    ctmdp:
        The model.
    labels:
        Optional atomic propositions (e.g. the goal mask) that blocks
        must respect.
    respect_actions:
        Whether transitions must match on action labels; disable to
        compare models whose labels differ superficially.
    """
    initial = (
        Partition.from_labels(list(labels))
        if labels is not None
        else Partition.trivial(ctmdp.num_states)
    )
    return refine_to_fixpoint(
        initial, lambda p: _signatures(ctmdp, p, respect_actions)
    )


def ctmdp_minimize(
    ctmdp: CTMDP,
    labels: Sequence[Hashable] | None = None,
    respect_actions: bool = True,
) -> tuple[CTMDP, Partition]:
    """Quotient a CTMDP by strong bisimilarity.

    Returns the quotient and the partition (map goal masks through it
    with :func:`repro.bisim.quotient.map_labels_through`).  Duplicate
    quotient transitions (distinct concrete transitions with identical
    label and class rates) are collapsed.
    """
    partition = ctmdp_bisimulation(ctmdp, labels, respect_actions)
    canon = partition.canonical()
    block_of = canon.block_of

    representative: dict[int, int] = {}
    for state in range(ctmdp.num_states):
        representative.setdefault(int(block_of[state]), state)

    matrix = ctmdp.rate_matrix
    transitions: list[tuple[int, str, dict[int, float]]] = []
    for block, state in sorted(representative.items()):
        lo, hi = ctmdp.choice_ptr[state], ctmdp.choice_ptr[state + 1]
        seen: set[tuple[str, frozenset]] = set()
        for row in range(lo, hi):
            start, end = matrix.indptr[row], matrix.indptr[row + 1]
            contributions: dict[int, list[float]] = {}
            for target, rate in zip(matrix.indices[start:end], matrix.data[start:end]):
                contributions.setdefault(int(block_of[target]), []).append(float(rate))
            rates = {
                target_block: stable_rate_sum(parts)
                for target_block, parts in contributions.items()
            }
            key = (
                ctmdp.labels[row] if respect_actions else "",
                _choice_rate_signature(ctmdp, row, block_of),
            )
            if key in seen:
                continue
            seen.add(key)
            transitions.append((block, ctmdp.labels[row], rates))

    names = None
    if ctmdp.state_names is not None:
        names = [""] * canon.num_blocks
        for state in range(ctmdp.num_states):
            block = int(block_of[state])
            if not names[block]:
                names[block] = ctmdp.state_names[state]
    quotient = CTMDP.from_transitions(
        canon.num_blocks,
        transitions,
        initial=int(block_of[ctmdp.initial]),
        state_names=names,
    )
    return quotient, canon


def ctmdp_equivalent(
    left: CTMDP,
    right: CTMDP,
    left_labels: Sequence[Hashable] | None = None,
    right_labels: Sequence[Hashable] | None = None,
    respect_actions: bool = True,
) -> bool:
    """Are the initial states of two CTMDPs strongly bisimilar?

    Built on the disjoint union of the two models; optional per-state
    labels (e.g. goal masks) must be given for both models or neither.
    """
    if (left_labels is None) != (right_labels is None):
        raise ModelError("provide labels for both models or neither")
    offset = left.num_states
    transitions: list[tuple[int, str, dict[int, float]]] = []
    for model, shift in ((left, 0), (right, offset)):
        matrix = model.rate_matrix
        for row in range(model.num_transitions):
            start, end = matrix.indptr[row], matrix.indptr[row + 1]
            rates = {
                int(target) + shift: float(rate)
                for target, rate in zip(
                    matrix.indices[start:end], matrix.data[start:end]
                )
            }
            transitions.append((int(model.sources[row]) + shift, model.labels[row], rates))
    union = CTMDP.from_transitions(
        left.num_states + right.num_states, transitions, initial=left.initial
    )
    labels = None
    if left_labels is not None and right_labels is not None:
        if len(left_labels) != left.num_states or len(right_labels) != right.num_states:
            raise ModelError("one label per state required")
        labels = list(left_labels) + list(right_labels)
    partition = ctmdp_bisimulation(union, labels, respect_actions)
    return partition.same_block(left.initial, right.initial + offset)
