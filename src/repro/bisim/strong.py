"""Strong stochastic bisimulation for IMCs.

The strong variant matches interactive transitions exactly (no
``tau`` stuttering) and, for stable states, requires equal cumulative
rates into every equivalence class.  Because of maximal progress, rates
of unstable states are behaviourally irrelevant and carry no constraint.

Strong bisimulation is coarser-grained machinery than the stochastic
branching bisimulation the paper's minimisation strategy uses, but it is
cheap, it is a congruence for all composition operators, and it already
collapses the symmetric replicas that dominate the FTWC state spaces.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.bisim.partition import Partition, refine_to_fixpoint
from repro.bisim.quotient import quotient_imc
from repro.bisim.signatures import markov_rate_pairs, rate_signature
from repro.imc.model import IMC

__all__ = ["strong_bisimulation", "strong_minimize"]


def _signatures(imc: IMC, partition: Partition) -> list[Hashable]:
    """Per-state strong signatures relative to ``partition``.

    The signature combines the set of ``(action, target block)`` pairs of
    interactive transitions with, for stable states, the cumulative rate
    into each block (order-independent and quantised on the shared
    relative grid of :mod:`repro.bisim.signatures`).
    """
    block_of = partition.block_of
    result: list[Hashable] = []
    for state in range(imc.num_states):
        interactive = frozenset(
            (action, int(block_of[target]))
            for action, target in imc.interactive_successors(state)
        )
        if imc.is_stable(state):
            markov: Hashable = rate_signature(markov_rate_pairs(imc, state, block_of))
        else:
            markov = "unstable"
        result.append((interactive, markov))
    return result


def strong_bisimulation(
    imc: IMC, labels: Sequence[Hashable] | None = None
) -> Partition:
    """Compute the strong stochastic bisimulation partition.

    Parameters
    ----------
    imc:
        The model to partition.
    labels:
        Optional per-state atomic propositions; states with different
        labels are never merged (needed when a goal predicate must
        survive minimisation).
    """
    initial = (
        Partition.from_labels(labels)
        if labels is not None
        else Partition.trivial(imc.num_states)
    )
    return refine_to_fixpoint(initial, lambda p: _signatures(imc, p))


def strong_minimize(
    imc: IMC, labels: Sequence[Hashable] | None = None
) -> tuple[IMC, Partition]:
    """Quotient ``imc`` by strong stochastic bisimilarity.

    Returns the quotient IMC together with the partition (so callers can
    map state predicates through the minimisation).
    """
    partition = strong_bisimulation(imc, labels)
    return quotient_imc(imc, partition, drop_inert_tau=False), partition
