"""Worklist-based branching-bisimulation refinement (the fast engine).

``repro profile`` showed the naive signature engine of
:mod:`repro.bisim.branching` dominating compositional runs at ~80% self
time: every round it rebuilds the full inert-``tau`` graph, recomputes
the SCC condensation of the *whole* state space, and re-hashes
per-state frozenset-of-frozenset signatures in Python loops -- even for
blocks that no split could possibly have touched.

This module keeps the naive engine's *round semantics* (synchronous
signature refinement, so the two engines walk through bitwise-identical
partition sequences) but makes each round incremental and vectorised:

* the interactive/Markov adjacency is encoded **once** into CSR-style
  numpy arrays (following the ``repro.graph.structure.TransitionGraph``
  conventions) together with a union predecessor CSR;
* a round recomputes signatures only for **dirty blocks**: blocks that
  split in the previous round, plus blocks holding a predecessor of a
  state whose block id changed.  A state in a clean block provably has
  an unchanged signature (its own block's inert structure and all its
  targets' block ids are untouched), so skipping it cannot change the
  fixpoint;
* the inert-``tau`` SCC condensation is rebuilt only for the dirty
  states (inert edges never leave a block, so the condensation is
  block-local);
* signatures are grouped by numpy ``lexsort`` over encoded integer rows
  -- ``(action, target block)`` for visible moves, interned
  ``(block, quantised rate)`` sets for stable states -- instead of
  hashing nested frozensets; cumulative rates use the shared
  quantisation of :mod:`repro.bisim.signatures` and are bitwise
  identical to the naive engine's ``fsum``-based sums.

Every round is wrapped in a ``bisim.refine.round`` span and the whole
refinement in a ``bisim.refine`` span (attributes: round number, dirty
state count, block count, splits), so ``repro profile`` attributes the
cost -- and the win -- per round.  The property-based test suite
cross-checks that this engine and the naive engine compute equal
partitions on random IMCs.
"""

from __future__ import annotations

import math

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components

from repro.bisim.partition import Partition
from repro.bisim.signatures import quantize_rates
from repro.imc.model import IMC
from repro.obs import MetricStore, span

__all__ = ["worklist_refine"]


class _Encoded:
    """One-time CSR encoding of an IMC for repeated refinement rounds."""

    __slots__ = (
        "num_states",
        "num_actions",
        "i_ptr",
        "i_act",
        "i_dst",
        "m_ptr",
        "m_rate",
        "m_dst",
        "p_ptr",
        "p_src",
        "stable",
    )

    def __init__(self, imc: IMC) -> None:
        n = imc.num_states
        self.num_states = n
        self.stable = imc.stable_mask()

        i_src, i_act, i_dst, actions = imc.encoded_interactive()
        self.num_actions = max(len(actions), 1)
        order = np.argsort(i_src, kind="stable")
        self.i_act = i_act[order]
        self.i_dst = i_dst[order]
        self.i_ptr = _pointers(i_src[order], n)

        # Markov transitions of unstable states never enter a signature
        # (condition 2 constrains stable states only), so drop them here.
        m_src, m_rate, m_dst = imc.encoded_markov()
        keep = self.stable[m_src]
        m_src, m_rate, m_dst = m_src[keep], m_rate[keep], m_dst[keep]
        order = np.argsort(m_src, kind="stable")
        self.m_rate = m_rate[order]
        self.m_dst = m_dst[order]
        self.m_ptr = _pointers(m_src[order], n)

        # Union predecessor CSR (interactive + stable-Markov edges):
        # the worklist marks the blocks of predecessors of changed
        # states dirty, covering every signature dependency.
        all_dst = np.concatenate([i_dst, m_dst])
        all_src = np.concatenate([i_src, m_src])
        if len(all_dst):
            packed = all_dst * np.int64(n) + all_src
            packed = np.unique(packed)
            p_dst, p_src = packed // n, packed % n
        else:
            p_dst = p_src = np.empty(0, dtype=np.int64)
        self.p_src = p_src
        self.p_ptr = _pointers(p_dst, n)


def _pointers(sorted_keys: np.ndarray, domain: int) -> np.ndarray:
    """CSR row pointers for ``sorted_keys`` over ``0 .. domain - 1``."""
    counts = np.bincount(sorted_keys, minlength=domain)
    pointers = np.zeros(domain + 1, dtype=np.int64)
    np.cumsum(counts, out=pointers[1:])
    return pointers


def _gather(ptr: np.ndarray, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate the CSR slices of ``rows``.

    Returns ``(indices, owners)``: flat indices into the CSR value
    arrays and, aligned with them, the row each entry came from.
    """
    counts = ptr[rows + 1] - ptr[rows]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    ramp = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    return np.repeat(ptr[rows], counts) + ramp, np.repeat(rows, counts)


def _group_by_rows(num_owners: int, owners: np.ndarray, codes: np.ndarray) -> np.ndarray:
    """Group owners by their *sets* of integer codes, via ``lexsort``.

    Returns ``group[owner]`` with equal ids exactly for owners carrying
    identical deduplicated code sets.  Owners without any row share
    group ``0``; groups are numbered from ``1`` upwards.  The grouping
    buckets owners by set size and ``lexsort``s the resulting dense
    ``(owners, size)`` code matrices -- no Python-level hashing.
    """
    group = np.zeros(num_owners, dtype=np.int64)
    if not len(owners):
        return group
    order = np.lexsort((codes, owners))
    owners, codes = owners[order], codes[order]
    keep = np.ones(len(owners), dtype=bool)
    keep[1:] = (owners[1:] != owners[:-1]) | (codes[1:] != codes[:-1])
    owners, codes = owners[keep], codes[keep]
    counts = np.bincount(owners, minlength=num_owners)
    offsets = np.zeros(num_owners + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    next_id = 1
    for size in np.unique(counts[counts > 0]):
        with_size = np.flatnonzero(counts == size)
        matrix = codes[offsets[with_size][:, None] + np.arange(size)[None, :]]
        order = np.lexsort(matrix.T[::-1])
        matrix = matrix[order]
        fresh = np.ones(len(with_size), dtype=bool)
        if len(with_size) > 1:
            fresh[1:] = (matrix[1:] != matrix[:-1]).any(axis=1)
        ids = np.cumsum(fresh) - 1 + next_id
        group[with_size[order]] = ids
        next_id = int(ids[-1]) + 1
    return group


def _refine_round(
    enc: _Encoded,
    block_of: np.ndarray,
    dirty: np.ndarray,
    num_blocks: int,
) -> tuple[int, np.ndarray, np.ndarray, np.ndarray]:
    """One synchronous refinement round over the dirty states.

    Mutates ``block_of`` in place; returns the new block count, the
    states whose block id changed, the old ids of blocks that split and
    the freshly allocated block ids.
    """
    d = len(dirty)
    local = np.full(enc.num_states, -1, dtype=np.int64)
    local[dirty] = np.arange(d, dtype=np.int64)

    # Interactive edges out of dirty states; inert = intra-block tau.
    eidx, e_src = _gather(enc.i_ptr, dirty)
    e_act, e_dst = enc.i_act[eidx], enc.i_dst[eidx]
    target_block = block_of[e_dst]
    inert = (e_act == 0) & (block_of[e_src] == target_block)

    # SCC condensation of the inert graph, restricted to dirty states
    # (inert edges never leave a block, so this is block-local work).
    il_src, il_dst = local[e_src[inert]], local[e_dst[inert]]
    proper = il_src != il_dst
    il_src, il_dst = il_src[proper], il_dst[proper]
    if len(il_src):
        graph = sp.csr_matrix(
            (np.ones(len(il_src), dtype=np.int8), (il_src, il_dst)), shape=(d, d)
        )
        num_comps, comp_of = connected_components(
            graph, directed=True, connection="strong"
        )
        comp_of = comp_of.astype(np.int64)
    else:
        num_comps, comp_of = d, np.arange(d, dtype=np.int64)

    # Visible rows: (comp, encoded (action, target block)).
    visible = ~inert
    vis_owner = comp_of[local[e_src[visible]]]
    vis_code = e_act[visible] * np.int64(num_blocks) + target_block[visible]
    vis_base = np.int64(enc.num_actions) * np.int64(num_blocks)

    # Quantised cumulative-rate signatures of dirty stable states,
    # grouped per (state, target block) by lexsort.  Rates are sorted
    # ascending inside each group; multi-contribution groups fold with
    # math.fsum so the sums are bitwise those of the naive engine.
    midx, m_src = _gather(enc.m_ptr, dirty)
    if len(midx):
        m_rate, m_tblock = enc.m_rate[midx], block_of[enc.m_dst[midx]]
        m_local = local[m_src]
        order = np.lexsort((m_rate, m_tblock, m_local))
        m_local, m_tblock, m_rate = m_local[order], m_tblock[order], m_rate[order]
        head = np.ones(len(m_local), dtype=bool)
        head[1:] = (m_local[1:] != m_local[:-1]) | (m_tblock[1:] != m_tblock[:-1])
        starts = np.flatnonzero(head)
        sums = np.add.reduceat(m_rate, starts)
        sizes = np.diff(np.append(starts, len(m_rate)))
        for g in np.flatnonzero(sizes > 1):
            sums[g] = math.fsum(m_rate[starts[g]: starts[g] + sizes[g]])
        quantised = quantize_rates(sums)
        unique_rates, rate_idx = np.unique(quantised, return_inverse=True)
        pair_code = m_tblock[starts] * np.int64(len(unique_rates)) + rate_idx
        rate_sig = _group_by_rows(d, m_local[starts], pair_code)
    else:
        rate_sig = np.zeros(d, dtype=np.int64)

    stable_local = np.flatnonzero(enc.stable[dirty])
    st_owner = comp_of[stable_local]
    st_code = vis_base + rate_sig[stable_local]
    block_base = vis_base + np.int64(rate_sig.max() + 1 if d else 1)

    # One row per component naming its block: components of different
    # blocks can then never be grouped together.
    comp_block = np.full(num_comps, -1, dtype=np.int64)
    comp_block[comp_of] = block_of[dirty]

    # Propagate rows through the condensation DAG: a component sees its
    # own rows plus everything its inert successors see.  Semi-naive
    # closure over packed (component, code) pairs -- each pass pulls the
    # *new* pairs of inert successors across the cross-component edges
    # until nothing new appears (bounded by the DAG depth).
    all_owner = np.concatenate([vis_owner, st_owner, np.arange(num_comps)])
    all_code = np.concatenate([vis_code, st_code, block_base + comp_block])
    ce_src, ce_dst = comp_of[il_src], comp_of[il_dst]
    cross = ce_src != ce_dst
    if np.any(cross):
        packed = np.unique(ce_src[cross] * np.int64(num_comps) + ce_dst[cross])
        ce_src, ce_dst = packed // num_comps, packed % num_comps
        unique_codes, code_idx = np.unique(all_code, return_inverse=True)
        ncodes = np.int64(len(unique_codes))
        pairs = np.unique(all_owner * ncodes + code_idx)
        frontier = pairs
        while len(frontier):
            ptr = _pointers(frontier // ncodes, num_comps)
            counts = ptr[ce_dst + 1] - ptr[ce_dst]
            idx, _ = _gather(ptr, ce_dst)
            new = np.unique(np.repeat(ce_src, counts) * ncodes + frontier[idx] % ncodes)
            if len(pairs):
                position = np.minimum(np.searchsorted(pairs, new), len(pairs) - 1)
                new = new[pairs[position] != new]
            pairs = np.union1d(pairs, new)
            frontier = new
        # Compact code ids are a consistent relabelling, fine for grouping.
        all_owner, all_code = pairs // ncodes, pairs % ncodes

    # Group components by their propagated row sets (block included).
    comp_group = _group_by_rows(num_comps, all_owner, all_code)

    # Assign block ids: per old block, the first signature group keeps
    # the old id, the rest receive fresh consecutive ids.
    group = comp_group[comp_of]
    unique_groups, first_idx, inverse = np.unique(
        group, return_index=True, return_inverse=True
    )
    group_block = block_of[dirty[first_idx]]
    order = np.argsort(group_block, kind="stable")
    block_sorted = group_block[order]
    first_of_block = np.ones(len(order), dtype=bool)
    first_of_block[1:] = block_sorted[1:] != block_sorted[:-1]
    assigned = np.where(first_of_block, block_sorted, 0)
    fresh_slots = np.flatnonzero(~first_of_block)
    assigned[fresh_slots] = num_blocks + np.arange(len(fresh_slots), dtype=np.int64)
    new_id_of_group = np.empty(len(unique_groups), dtype=np.int64)
    new_id_of_group[order] = assigned
    new_blocks = new_id_of_group[inverse]

    changed = dirty[new_blocks != block_of[dirty]]
    split_parents = np.unique(block_sorted[~first_of_block])
    fresh_ids = assigned[fresh_slots]
    block_of[dirty] = new_blocks
    return num_blocks + len(fresh_slots), changed, split_parents, fresh_ids


def worklist_refine(
    imc: IMC, initial: Partition, metrics: MetricStore | None = None
) -> Partition:
    """Refine ``initial`` to the branching-signature fixpoint.

    Computes the same fixpoint as the naive engine (round-for-round the
    identical partition sequence), touching only dirty blocks per round.
    ``metrics``, when given, receives ``bisim_rounds``, ``bisim_splits``
    and ``bisim_states_rescanned`` counters.
    """
    enc = _Encoded(imc)
    partition = initial.canonical()
    block_of = partition.block_of.astype(np.int64).copy()
    num_blocks = partition.num_blocks
    dirty = np.arange(imc.num_states, dtype=np.int64)
    rounds = 0
    rescanned = 0
    total_splits = 0
    with span(
        "bisim.refine", engine="worklist", states=imc.num_states, blocks=num_blocks
    ) as refine_span:
        while len(dirty):
            rounds += 1
            rescanned += len(dirty)
            with span(
                "bisim.refine.round",
                round=rounds,
                dirty_states=len(dirty),
                blocks=num_blocks,
            ) as round_span:
                num_blocks, changed, split_parents, fresh_ids = _refine_round(
                    enc, block_of, dirty, num_blocks
                )
                if round_span is not None:
                    round_span.annotate(splits=len(fresh_ids), changed=len(changed))
            total_splits += len(fresh_ids)
            if not len(fresh_ids):
                break
            dirty_blocks = np.zeros(num_blocks, dtype=bool)
            dirty_blocks[split_parents] = True
            dirty_blocks[fresh_ids] = True
            pidx, _ = _gather(enc.p_ptr, changed)
            dirty_blocks[block_of[enc.p_src[pidx]]] = True
            dirty = np.flatnonzero(dirty_blocks[block_of])
        if refine_span is not None:
            refine_span.annotate(
                rounds=rounds,
                blocks=num_blocks,
                splits=total_splits,
                states_rescanned=rescanned,
            )
    if metrics is not None:
        metrics.count("bisim_rounds", rounds)
        metrics.count("bisim_splits", total_splits)
        metrics.count("bisim_states_rescanned", rescanned)
    return Partition(block_of=block_of).canonical()
