"""Stochastic branching bisimulation (Definition 6 of the paper).

The paper's compositional minimisation strategy quotients intermediate
models by an equivalence that (1) abstracts from internal computation
like branching bisimulation, (2) lumps Markov transitions, and (3)
leaves the branching structure otherwise untouched.  Lemma 3 states that
this equivalence preserves uniformity -- because the uniformity
condition only constrains *stable* states, and condition 2 of the
definition forces related stable states to carry identical cumulative
rates (hence identical exit rates).

Two refinement engines compute the partition:

* ``engine="worklist"`` (the default) -- the vectorised worklist
  refinement of :mod:`repro.bisim.worklist`: CSR-encoded adjacency,
  dirty-block tracking, block-local inert-``tau`` SCC condensation and
  ``lexsort``-based signature grouping.  This is the fast path the
  compositional pipeline runs on (see ``BENCH_bisim.json``).
* ``engine="naive"`` -- the original Blom & Orzan-style signature
  refinement kept verbatim as the readable reference implementation:
  per round, every state is assigned its set of non-inert
  ``(a, target block)`` moves reachable through inert (same-block)
  ``tau`` sequences and the set of per-block cumulative-rate signatures
  of the *stable* states it reaches the same way, and blocks are split
  by signature.

Both engines walk through the identical sequence of partitions (the
property-based tests cross-check equality on random IMCs), and both
compare cumulative rates through the shared float-robust quantisation
of :mod:`repro.bisim.signatures`.

The refinement fixpoint always *is* a stochastic branching bisimulation
(this is verified exhaustively on random models in the test suite via
:func:`is_stochastic_branching_bisimulation`); quotienting by it is
therefore behaviour-preserving even in corner cases where it may be
finer than the coarsest such bisimulation.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components

from repro.bisim.partition import Partition, refine_to_fixpoint
from repro.bisim.quotient import quotient_imc
from repro.bisim.signatures import markov_rate_pairs, rate_signature
from repro.bisim.worklist import worklist_refine
from repro.errors import ModelError
from repro.imc.model import IMC, TAU
from repro.obs import MetricStore, span

__all__ = [
    "branching_bisimulation",
    "branching_minimize",
    "is_stochastic_branching_bisimulation",
]

#: The selectable refinement engines.
ENGINES = ("worklist", "naive")


def _rate_signature(imc: IMC, state: int, block_of: np.ndarray) -> frozenset:
    """Cumulative-rate signature ``{(block, Rate(state, block))}``.

    Accumulation is order-independent (sorted ``fsum``) and the sums are
    quantised on the shared relative grid of
    :mod:`repro.bisim.signatures`, so rates straddling a decimal
    rounding boundary can no longer split blocks that Definition 6 says
    must merge.
    """
    return rate_signature(markov_rate_pairs(imc, state, block_of))


def _signatures(imc: IMC, partition: Partition) -> list[Hashable]:
    """Branching signatures: non-inert moves and stable rate signatures
    reachable through inert ``tau`` paths."""
    n = imc.num_states
    block_of = partition.block_of

    # Inert tau graph: tau transitions staying inside their block.
    rows, cols = [], []
    for src, action, dst in imc.interactive:
        if action == TAU and block_of[src] == block_of[dst] and src != dst:
            rows.append(src)
            cols.append(dst)
    if rows:
        graph = sp.csr_matrix((np.ones(len(rows)), (rows, cols)), shape=(n, n))
        num_comps, comp_of = connected_components(graph, directed=True, connection="strong")
    else:
        num_comps, comp_of = n, np.arange(n)

    # Local contributions per component.
    visible: list[set] = [set() for _ in range(num_comps)]
    stable_rates: list[set] = [set() for _ in range(num_comps)]
    for state in range(n):
        comp = int(comp_of[state])
        for action, target in imc.interactive_successors(state):
            if action == TAU and block_of[state] == block_of[target]:
                continue  # inert
            visible[comp].add((action, int(block_of[target])))
        if imc.is_stable(state):
            stable_rates[comp].add(_rate_signature(imc, state, block_of))

    # Condensation edges (inert edges between different components) and
    # propagation in reverse topological order: a component sees its own
    # contributions plus everything its inert successors see.
    comp_edges: set[tuple[int, int]] = set()
    for src, dst in zip(rows, cols):
        a, b = int(comp_of[src]), int(comp_of[dst])
        if a != b:
            comp_edges.add((a, b))
    successors: list[list[int]] = [[] for _ in range(num_comps)]
    indegree = np.zeros(num_comps, dtype=np.int64)
    for a, b in comp_edges:
        successors[a].append(b)
        indegree[b] += 1
    order: list[int] = [c for c in range(num_comps) if indegree[c] == 0]
    head = 0
    while head < len(order):
        comp = order[head]
        head += 1
        for nxt in successors[comp]:
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                order.append(nxt)
    for comp in reversed(order):
        for nxt in successors[comp]:
            visible[comp] |= visible[nxt]
            stable_rates[comp] |= stable_rates[nxt]

    return [
        (frozenset(visible[int(comp_of[s])]), frozenset(stable_rates[int(comp_of[s])]))
        for s in range(n)
    ]


def _initial_partition(imc: IMC, labels: Sequence[Hashable] | None) -> Partition:
    return (
        Partition.from_labels(labels)
        if labels is not None
        else Partition.trivial(imc.num_states)
    )


def branching_bisimulation(
    imc: IMC,
    labels: Sequence[Hashable] | None = None,
    engine: str = "worklist",
    metrics: MetricStore | None = None,
) -> Partition:
    """Compute a stochastic branching bisimulation partition.

    Parameters
    ----------
    imc:
        The model to partition.
    labels:
        Optional per-state atomic propositions seeding the initial
        partition; states with different labels are never merged, so
        goal predicates survive the quotient.
    engine:
        ``"worklist"`` (vectorised dirty-block refinement, the default)
        or ``"naive"`` (the reference signature engine).  Both compute
        the same fixpoint.
    metrics:
        Optional :class:`~repro.obs.MetricStore` receiving ``bisim_*``
        counters (worklist engine only).
    """
    if engine not in ENGINES:
        raise ModelError(
            f"unknown refinement engine {engine!r}; expected one of {ENGINES}"
        )
    initial = _initial_partition(imc, labels)
    if engine == "worklist":
        return worklist_refine(imc, initial, metrics=metrics)
    return refine_to_fixpoint(initial, lambda p: _signatures(imc, p))


def branching_minimize(
    imc: IMC,
    labels: Sequence[Hashable] | None = None,
    engine: str = "worklist",
    metrics: MetricStore | None = None,
) -> tuple[IMC, Partition]:
    """Quotient ``imc`` by stochastic branching bisimilarity.

    Inert ``tau`` steps disappear in the quotient.  Returns the quotient
    together with the partition for predicate mapping.  By Corollary 1
    the quotient is uniform iff the input is.
    """
    with span("bisim.minimize", states=imc.num_states, engine=engine) as sp:
        partition = branching_bisimulation(imc, labels, engine=engine, metrics=metrics)
        quotient = quotient_imc(imc, partition, drop_inert_tau=True)
        if metrics is not None:
            metrics.count("bisim_minimize_calls")
            metrics.count(
                "bisim_states_eliminated", imc.num_states - quotient.num_states
            )
        if sp is not None:
            sp.annotate(blocks=partition.num_blocks, quotient_states=quotient.num_states)
    return quotient, partition


def is_stochastic_branching_bisimulation(imc: IMC, partition: Partition) -> bool:
    """Literal check of Definition 6 -- exponential comfort, test-sized models.

    For every pair ``(s1, t1)`` in one block and every move
    ``s1 --a--> s2``: either the move is inert (``a = tau`` and ``s2``
    stays in the block), or ``t1`` can reach, via ``tau`` steps through
    the block, a state ``t1'`` (still in the block) with an ``a`` move
    into the block of ``s2``.  And for stable ``s1``: ``t1`` reaches via
    inert ``tau`` steps a stable ``t1'`` with the same cumulative-rate
    signature.
    """
    canon = partition.canonical()
    block_of = canon.block_of

    def inert_closure(state: int) -> list[int]:
        seen = {state}
        stack = [state]
        while stack:
            current = stack.pop()
            for action, target in imc.interactive_successors(current):
                if (
                    action == TAU
                    and block_of[target] == block_of[state]
                    and target not in seen
                ):
                    seen.add(target)
                    stack.append(target)
        return sorted(seen)

    for block_states in canon.blocks():
        for s1 in block_states:
            for t1 in block_states:
                # Condition 1: interactive moves.
                for action, s2 in imc.interactive_successors(s1):
                    if action == TAU and block_of[s2] == block_of[s1]:
                        continue  # matched by (s2, t1) in B via the first disjunct
                    matched = any(
                        any(
                            a == action and block_of[t2] == block_of[s2]
                            for a, t2 in imc.interactive_successors(t1p)
                        )
                        for t1p in inert_closure(t1)
                    )
                    if not matched:
                        return False
                # Condition 2: stable states must be rate-matched.
                if imc.is_stable(s1):
                    sig = _rate_signature(imc, s1, block_of)
                    matched = any(
                        imc.is_stable(t1p)
                        and _rate_signature(imc, t1p, block_of) == sig
                        for t1p in inert_closure(t1)
                    )
                    if not matched:
                        return False
    return True
