"""Float-robust cumulative-rate signatures shared by all bisimulations.

Condition 2 of the paper's Definition 6 (and ordinary CTMC lumpability)
compares *cumulative* rates: two states are only equivalent when their
summed rates into every equivalence class agree.  Comparing floats by
exact equality after summation is wrong twice over:

* the sum of several rates depends on the accumulation order, so two
  states with the same multiset of contributions -- the very situation
  the definition says must merge -- can produce different floats
  depending on the adjacency order a builder happened to emit;
* snapping to a fixed number of *decimal places* (the historical
  ``round(rate, 12)`` scheme) is an absolute-error criterion: for rates
  around ``1e4`` the float ulp already exceeds the rounding grid, so
  last-ulp noise lands on different grid points and splits blocks that
  Definition 6 says must merge.

This module fixes both.  :func:`stable_rate_sum` makes the sum a pure
function of the contribution *multiset* (sorted contributions folded
with :func:`math.fsum`, which computes the correctly-rounded exact sum),
and :func:`quantize_rate` snaps the result onto a *relative* grid: the
binary mantissa is kept to :data:`MANTISSA_BITS` bits, i.e. values are
identified when they agree to about one part in ``2**30 ~ 1e9``,
independent of magnitude.  The quantisation is implemented with exact
float operations only (``frexp``/``ldexp``, scaling by powers of two),
so the scalar form and the vectorised numpy form used by the worklist
refinement engine are bitwise identical -- the two engines can never
disagree on a signature because of the arithmetic route taken.

Like every grid scheme, quantisation can still separate two values that
straddle a grid-cell boundary while lying within tolerance of each
other; that failure mode needs the *true* sums to differ by more than
their float error yet less than one part in ``2**30``, which no model
builder in this repository produces.  The property-based test suite
cross-checks the refinement engines under exactly this scheme.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator

import numpy as np

__all__ = [
    "MANTISSA_BITS",
    "quantize_rate",
    "quantize_rates",
    "stable_rate_sum",
    "rate_signature",
]

#: Mantissa bits kept by the quantisation: rates agreeing to one part in
#: ``2**MANTISSA_BITS`` (about ``1e-9`` relative) are identified.
MANTISSA_BITS = 30

_SCALE = float(1 << MANTISSA_BITS)


def quantize_rate(value: float) -> float:
    """Snap ``value`` onto the relative grid of :data:`MANTISSA_BITS` bits.

    The mantissa is rounded (half-to-even) to ``MANTISSA_BITS`` bits;
    the exponent is untouched.  All operations are exact in binary
    floating point, so this is a deterministic, magnitude-independent
    idempotent quantisation.
    """
    if value == 0.0 or not math.isfinite(value):
        return value
    mantissa, exponent = math.frexp(value)
    return math.ldexp(round(mantissa * _SCALE), exponent - MANTISSA_BITS)


def quantize_rates(values: np.ndarray) -> np.ndarray:
    """Vectorised :func:`quantize_rate` (bitwise-identical results)."""
    values = np.asarray(values, dtype=np.float64)
    mantissa, exponent = np.frexp(values)
    # np.rint rounds half-to-even, matching Python's round().
    quantized = np.ldexp(np.rint(mantissa * _SCALE), exponent - MANTISSA_BITS)
    return np.where(np.isfinite(values) & (values != 0.0), quantized, values)


def stable_rate_sum(contributions: Iterable[float]) -> float:
    """Order-independent cumulative rate: ``fsum`` of the sorted values.

    ``math.fsum`` already returns the correctly-rounded exact sum for
    any order; sorting documents (and future-proofs against lossier
    summation schemes) that the result is a function of the multiset.
    """
    return math.fsum(sorted(contributions))


def rate_signature(pairs: Iterable[tuple[int, float]]) -> frozenset[tuple[int, float]]:
    """Quantised cumulative-rate signature ``{(block, Rate(s, block))}``.

    ``pairs`` are raw per-transition ``(target block, rate)``
    contributions; repeated blocks accumulate via
    :func:`stable_rate_sum` before quantisation.
    """
    per_block: dict[int, list[float]] = {}
    for block, rate in pairs:
        per_block.setdefault(block, []).append(rate)
    return frozenset(
        (block, quantize_rate(stable_rate_sum(rates)))
        for block, rates in per_block.items()
    )


def markov_rate_pairs(imc, state: int, block_of) -> Iterator[tuple[int, float]]:
    """The raw ``(target block, rate)`` contributions of ``state``."""
    for rate, target in imc.markov_successors(state):
        yield int(block_of[target]), rate
