"""Time-bounded *until* for uniform CTMDPs.

The timed-reachability algorithm of [2] (Algorithm 1 of the paper)
extends directly from plain reachability ``diamond^{<=t} B`` to the CSL
until operator

    A  U^{<=t}  B   --  "reach B within t, staying inside A until then"

by treating states outside ``A + B`` as *blocked*: a path entering such
a state has violated the property, so its continuation value is pinned
to zero and never recovers.  With ``A = S`` this degenerates to
reachability, which is how the implementation is cross-checked.

This covers the paper's motivating property class ("timed safety and
liveness"): e.g. "the probability to hit a safety-critical configuration
within the mission time, without an operator intervention first, is at
most p".
"""

from __future__ import annotations

from time import perf_counter
from typing import Iterable

import numpy as np

from repro.core.ctmdp import CTMDP
from repro.core.reachability import (
    ReachabilityResult,
    _clamped_sweep,
    _goal_mask,
    _validate_scheduler_format,
)
from repro.core.segments import (
    SegmentIndex,
    segment_argbest,
    segment_reduce,
    validate_objective,
)
from repro.errors import ModelError, NonUniformError
from repro.numerics.foxglynn import fox_glynn
from repro.obs import NumericalCertificate, certificate_from_foxglynn, sweep_span
from repro.policy.store import CompressedDecisions, PolicyWriter

__all__ = ["timed_until"]


def timed_until(
    ctmdp: CTMDP,
    safe: Iterable[int] | np.ndarray,
    goal: Iterable[int] | np.ndarray,
    t: float,
    epsilon: float = 1e-6,
    objective: str = "max",
    record_scheduler: bool = False,
    scheduler_format: str = "compressed",
    precompute: bool = False,
) -> ReachabilityResult:
    """Optimal probability of ``safe U^{<=t} goal`` per state.

    Parameters
    ----------
    ctmdp:
        A uniform CTMDP.
    safe:
        The states that may be traversed (``A``); goal states need not
        be included.
    goal:
        The goal set (``B``).
    t:
        Time bound.
    epsilon:
        Poisson truncation error.
    objective:
        ``"max"`` or ``"min"`` over schedulers.
    record_scheduler:
        If true, record the optimising transition per state and step
        (the same shape Algorithm 1's reachability extraction produces;
        decisions at blocked states are recorded but irrelevant -- their
        value is pinned to zero whatever is chosen).
    scheduler_format:
        ``"compressed"`` (default) or ``"dense"``; see
        :func:`repro.core.reachability.timed_reachability`.
    precompute:
        If true, clamp the qualitative zero set of the until objective
        (blocked states included) and fold the goal states into a
        scalar recursion before iterating; see
        :func:`repro.core.reachability.timed_reachability`.

    Returns
    -------
    ReachabilityResult
        Per-state probabilities; goal states carry one, blocked states
        (neither safe nor goal) carry zero.
    """
    validate_objective(objective)
    _validate_scheduler_format(scheduler_format)
    if t < 0.0:
        raise ModelError("time bound must be non-negative")
    goal_mask = _goal_mask(ctmdp, goal)
    safe_mask = _goal_mask(ctmdp, safe)
    blocked = ~(safe_mask | goal_mask)

    if t == 0.0 or not goal_mask.any():
        # Trivially answerable: no time passes or nothing to reach.  The
        # answer does not depend on uniformity, so the rate is only
        # reported when the model actually is uniform -- querying a
        # degenerate property on a non-uniform model must not raise.
        values = goal_mask.astype(np.float64)
        dummy = fox_glynn(0.0, min(epsilon, 0.5))
        has_rate = bool(ctmdp.num_transitions) and ctmdp.is_uniform()
        return ReachabilityResult(
            values=values,
            iterations=0,
            uniform_rate=ctmdp.uniform_rate() if has_rate else 0.0,
            time_bound=t,
            objective=objective,
            poisson=dummy,
            certificate=NumericalCertificate.trivial("ctmdp.until", epsilon),
        )

    rate = ctmdp.uniform_rate()
    if rate <= 0.0:
        raise NonUniformError("uniform rate must be strictly positive for analysis")

    if precompute:
        from repro.graph.qualitative import prob0_exists, prob0_forall
        from repro.graph.structure import TransitionGraph

        graph = TransitionGraph.from_ctmdp(ctmdp)
        witness: np.ndarray | None = None
        if objective == "max":
            zero = prob0_forall(graph, goal_mask, safe=safe_mask)
        else:
            zero, witness = prob0_exists(
                graph, goal_mask, safe=safe_mask, with_witness=True
            )
        # Blocked states are in either zero set by construction, so the
        # clamped sweep needs no separate blocked pinning.
        prob_pre = ctmdp.probability_matrix()
        return _clamped_sweep(
            prob=prob_pre,
            prob_to_goal=prob_pre @ goal_mask.astype(np.float64),
            choice_ptr=np.asarray(ctmdp.choice_ptr),
            num_states=ctmdp.num_states,
            mask=goal_mask,
            zero=zero,
            witness=witness,
            rate=rate,
            t=t,
            epsilon=epsilon,
            objective=objective,
            record_scheduler=record_scheduler,
            scheduler_format=scheduler_format,
            span_name="until.sweep",
            algorithm="ctmdp.until",
        )

    fg = fox_glynn(rate * t, epsilon)
    psi = fg.probabilities()

    prob = ctmdp.probability_matrix()
    prob_to_goal = prob @ goal_mask.astype(np.float64)
    segments = SegmentIndex.from_choice_ptr(ctmdp.choice_ptr)

    goal_idx = np.flatnonzero(goal_mask)

    dense_decisions: np.ndarray | None = None
    writer: PolicyWriter | None = None
    decision_row: np.ndarray | None = None
    if record_scheduler:
        if scheduler_format == "dense":
            dense_decisions = np.full((fg.right, ctmdp.num_states), -1, dtype=np.int32)
        else:
            writer = PolicyWriter(num_states=ctmdp.num_states, reverse_rows=True)
            decision_row = np.full(ctmdp.num_states, -1, dtype=np.int32)

    with sweep_span(
        "until.sweep",
        t=t,
        objective=objective,
        states=ctmdp.num_states,
        iterations=fg.right,
        lam=rate * t,
    ) as steps:
        record_steps = steps.enabled
        q = np.zeros(ctmdp.num_states)
        for i in range(fg.right, 0, -1):
            step_started = perf_counter() if record_steps else 0.0
            psi_i = psi[i - fg.left] if i >= fg.left else 0.0
            transition_values = psi_i * prob_to_goal + prob @ q
            best = segment_reduce(transition_values, segments, objective)
            new_q = np.zeros(ctmdp.num_states)
            new_q[segments.nonempty] = best
            new_q[goal_idx] = psi_i + q[goal_idx]
            new_q[blocked] = 0.0  # entering a non-safe state loses the game
            if record_scheduler:
                argbest = segment_argbest(
                    transition_values, best, segments, objective
                ).astype(np.int32)
                if dense_decisions is not None:
                    dense_decisions[i - 1, segments.nonempty] = argbest
                else:
                    assert writer is not None and decision_row is not None
                    decision_row[segments.nonempty] = argbest
                    writer.append(decision_row)
            q = new_q
            if record_steps:
                steps.record(perf_counter() - step_started)

    decisions: np.ndarray | CompressedDecisions | None = dense_decisions
    if writer is not None:
        decisions = writer.finish()

    values = q.copy()
    values[goal_idx] = 1.0
    values[blocked] = 0.0
    residual = max(0.0, float(values.max()) - 1.0, -float(values.min()))
    np.clip(values, 0.0, 1.0, out=values)
    return ReachabilityResult(
        values=values,
        iterations=fg.right,
        uniform_rate=rate,
        time_bound=t,
        objective=objective,
        poisson=fg,
        decisions=decisions,
        certificate=certificate_from_foxglynn(
            fg, epsilon, "ctmdp.until", sweep_residual=residual
        ),
    )
