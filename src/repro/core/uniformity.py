"""Uniformization of CTMDPs.

The paper's whole point is that models should be *uniform by
construction* -- but a CTMDP that is not uniform (or is uniform at an
unnecessarily small rate) can also be padded after the fact, exactly
like Jensen's CTMC uniformization: every rate function whose exit rate
falls short of the target receives a self-loop making up the
difference.  Time-abstract scheduler behaviour is unaffected for the
timed-reachability objective; what changes is the Poisson parameter
``E t`` and hence the number of value-iteration steps.  The ablation
benchmark ``benchmarks/test_bench_ablations.py`` measures
precisely this cost, which is why keeping ``E`` as small as the model
allows (the by-construction route) matters.

Caveat: unlike for CTMCs, padding a *non-uniform* CTMDP is **not**
behaviour-preserving in general -- a time-abstract scheduler of the
padded model observes self-loop jumps the original does not have, which
can leak timing information.  For models that are already uniform the
padding is exact (it merely refines the jump clock); the function warns
about the general case in its docstring rather than guessing.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.ctmdp import CTMDP
from repro.errors import ModelError

__all__ = ["uniformize_ctmdp"]


def uniformize_ctmdp(ctmdp: CTMDP, rate: float | None = None) -> CTMDP:
    """Pad every rate function of ``ctmdp`` up to a common exit rate.

    Parameters
    ----------
    ctmdp:
        The model to pad.
    rate:
        Target uniform rate; defaults to the maximal exit rate over all
        transitions.  Must dominate every exit rate.

    Returns
    -------
    CTMDP
        A uniform CTMDP whose transitions carry an additional self-loop
        rate ``rate - E_R`` where needed.  For already-uniform inputs
        this is an exact (timed-reachability-preserving) refinement of
        the jump clock; see the module docstring for the non-uniform
        caveat.
    """
    exits = ctmdp.exit_rates()
    if len(exits) == 0:
        raise ModelError("cannot uniformize a CTMDP without transitions")
    max_exit = float(exits.max())
    if rate is None:
        rate = max_exit
    if rate <= 0.0:
        raise ModelError("uniformization rate must be positive")
    if rate < max_exit - 1e-12 * max(1.0, max_exit):
        raise ModelError(
            f"uniformization rate {rate} is below the maximal exit rate {max_exit}"
        )

    deficit = rate - exits
    deficit[np.abs(deficit) < 1e-14 * max(1.0, rate)] = 0.0
    rows = np.flatnonzero(deficit > 0.0)
    loops = sp.csr_matrix(
        (deficit[rows], (rows, ctmdp.sources[rows])),
        shape=ctmdp.rate_matrix.shape,
    )
    return CTMDP(
        num_states=ctmdp.num_states,
        sources=ctmdp.sources.copy(),
        labels=list(ctmdp.labels),
        rate_matrix=sp.csr_matrix(ctmdp.rate_matrix + loops),
        initial=ctmdp.initial,
        state_names=list(ctmdp.state_names) if ctmdp.state_names else None,
    )
