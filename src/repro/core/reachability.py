"""Timed reachability in uniform CTMDPs (Algorithm 1 of the paper).

Computes, for every state ``s`` of a uniform CTMDP with rate ``E``, the
maximal (or minimal) probability

    sup_D Pr_D(s, diamond^{<= t} B)

to reach the goal set ``B`` within ``t`` time units, ranging over all
randomized time-abstract history-dependent schedulers.  This is the
algorithm of Baier, Haverkort, Hermanns and Katoen (TCS 345(1), 2005),
in the mild variation of the paper that ranges over all emanating
*transitions* of a state rather than all actions (several transitions
may share an action label after the uIMC transformation).

The recursion runs backwards over the Poisson-truncated step horizon
``k = k(epsilon, E, t)`` (the Fox-Glynn right truncation point):

    q_{k+1}(s) = 0
    q_i(s)     = max over (s, a, R) of
                   psi(i) * Pr_R(s, B) + sum_{s'} Pr_R(s, s') * q_{i+1}(s')
                                                      for s not in B,
    q_i(s)     = psi(i) + q_{i+1}(s)                  for s in B,

and finally ``q(s) = q_1(s)`` for ``s`` outside ``B`` and ``1`` inside.
The greedy per-step maximisation is optimal precisely because the model
is uniform -- the number of jumps within ``t`` is Poisson distributed
independently of the scheduler -- which is the reason the whole
"uniformity by construction" trajectory exists.

Implementation notes (cf. Section 4.2): the rate matrix is stored as a
``T x S`` sparse matrix with one row per transition; one backward step
is a sparse matrix-vector product followed by a segmented optimum over
each state's contiguous block of transition rows (see
:mod:`repro.core.segments` for the shared segment machinery, including
the objective-aware tie handling of the scheduler extraction).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Iterable

import numpy as np

from repro.core.ctmdp import CTMDP
from repro.core.segments import (
    SegmentIndex,
    segment_argbest,
    segment_reduce,
    validate_objective,
)
from repro.errors import ModelError, NonUniformError
from repro.numerics.foxglynn import FoxGlynn, fox_glynn
from repro.obs import NumericalCertificate, certificate_from_foxglynn, sweep_span

# The compressed decision store depends on numpy only (never on the core
# solvers), so importing it here cannot cycle; the rest of repro.policy
# *does* import this module and stays behind lazy attributes.
from repro.policy.store import CompressedDecisions, PolicyWriter

__all__ = [
    "ReachabilityResult",
    "PreparedTimedReachability",
    "timed_reachability",
    "unbounded_reachability",
    "evaluate_step_scheduler",
    "replay_step_scheduler",
]

#: Decision-recording formats accepted by ``scheduler_format=``:
#: ``"compressed"`` streams rows into a :class:`CompressedDecisions`
#: store as the sweep runs (the default -- peak memory no longer scales
#: as ``iterations x states``); ``"dense"`` keeps the historical int32
#: matrix and exists for the bitwise equivalence tests.
SCHEDULER_FORMATS = ("compressed", "dense")


def _validate_scheduler_format(scheduler_format: str) -> None:
    if scheduler_format not in SCHEDULER_FORMATS:
        raise ModelError(
            f"scheduler_format must be one of {', '.join(SCHEDULER_FORMATS)}, "
            f"got {scheduler_format!r}"
        )


@dataclass
class ReachabilityResult:
    """Outcome of a timed-reachability analysis.

    Attributes
    ----------
    values:
        Per-state probabilities; goal states carry probability one.
    iterations:
        Number of backward steps ``k`` (the paper's "# Iterations").
    uniform_rate:
        The uniform rate ``E`` of the analysed model, or ``0.0`` when
        the analysis never needed it (``t = 0`` on an unprepared solver,
        empty goal set).
    time_bound:
        The analysed time bound ``t``.
    objective:
        ``"max"`` or ``"min"``.
    poisson:
        The Fox-Glynn data used for the Poisson weights.
    decisions:
        Optional step-indexed optimal scheduler: ``decisions[i - 1][s]``
        is the index (within ``transitions_of(s)``) chosen at step ``i``,
        or ``-1`` where no choice exists.  Only recorded on request; a
        :class:`~repro.policy.store.CompressedDecisions` store by
        default (row-indexable like the historical dense array), the
        dense int32 matrix under ``scheduler_format="dense"``.
    certificate:
        The numerical-health certificate of this solve: truncation
        accounting, sweep residual and the certified a-posteriori error
        bound (see :mod:`repro.obs.certificate`).
    states_eliminated:
        Number of states the qualitative precomputation removed from
        the numeric sweep (known-zero states clamped, goal states folded
        into a scalar recursion).  Zero without ``precompute=True``.
    """

    values: np.ndarray
    iterations: int
    uniform_rate: float
    time_bound: float
    objective: str
    poisson: FoxGlynn
    decisions: np.ndarray | CompressedDecisions | None = None
    certificate: NumericalCertificate | None = None
    states_eliminated: int = 0

    def value(self, state: int) -> float:
        """Probability from ``state``."""
        return float(self.values[state])


def _goal_mask(ctmdp: CTMDP, goal: Iterable[int] | np.ndarray) -> np.ndarray:
    if isinstance(goal, np.ndarray) and goal.dtype == bool:
        if goal.shape != (ctmdp.num_states,):
            raise ModelError(f"goal mask must have shape ({ctmdp.num_states},)")
        return goal
    mask = np.zeros(ctmdp.num_states, dtype=bool)
    for state in goal:  # type: ignore[union-attr]
        if not 0 <= state < ctmdp.num_states:
            raise ModelError(f"goal state {state} out of range")
        mask[state] = True
    return mask


class PreparedTimedReachability:
    """Reusable setup for repeated timed-reachability solves on one model.

    The expensive, time-bound-independent part of Algorithm 1 -- the
    row-stochastic ``T x S`` probability matrix, the per-transition
    goal-hitting probabilities and the segment bookkeeping for the
    per-state optimisation -- is computed once in the constructor; each
    :meth:`solve` call then only performs the Fox-Glynn computation for
    its own ``(t, epsilon)`` and the backward iteration.  A whole time
    sweep over one ``(model, goal)`` pair therefore shares a single
    setup, which is what the batched query engine exploits.

    :func:`timed_reachability` delegates to this class, so prepared and
    one-shot solves are bitwise-identical.

    With ``precompute=True`` every :meth:`solve` first runs the
    qualitative graph analysis (:mod:`repro.graph.qualitative`): states
    with a known answer -- the zero set of the requested objective, and
    the goal states whose value follows a scalar recursion -- are
    removed from the numeric sweep, which then runs on the reduced
    sub-matrix of undecided states only.  Answers agree with the
    unclamped sweep within the solver's certified error bound but are
    *not* bitwise identical (the reduced mat-vec accumulates round-off
    in a different order), hence the opt-in default.
    """

    def __init__(
        self,
        ctmdp: CTMDP,
        goal: Iterable[int] | np.ndarray,
        precompute: bool = False,
    ) -> None:
        self.ctmdp = ctmdp
        self.mask = _goal_mask(ctmdp, goal)
        self.num_states = ctmdp.num_states
        self.precompute = bool(precompute)
        self._zero_cache: dict[str, tuple[np.ndarray, np.ndarray | None]] = {}
        self._ready = False
        if not self.mask.any():
            return
        rate = ctmdp.uniform_rate()  # raises NonUniformError when violated
        if rate <= 0.0:
            raise NonUniformError("uniform rate must be strictly positive for analysis")
        self.rate = rate
        self.prob = ctmdp.probability_matrix()  # T x S, row-stochastic
        self.goal_vec = self.mask.astype(np.float64)
        self.prob_to_goal = self.prob @ self.goal_vec  # Pr_R(s, B) per row

        # Segment bookkeeping for the per-state optimisation: transitions
        # are sorted by source, so each state's rows are contiguous.
        # States without transitions keep value 0 (they cannot reach B).
        self.segments = SegmentIndex.from_choice_ptr(ctmdp.choice_ptr)
        self.goal_idx = np.flatnonzero(self.mask)
        self._ready = True

    def _trivial_result(self, t: float, epsilon: float, objective: str) -> ReachabilityResult:
        """The ``t = 0`` / empty-goal answer: the goal indicator itself.

        Uniformity is irrelevant here (no time passes, or there is
        nothing to reach), so the model's rate is *not* recomputed --
        querying a trivially-zero property on a non-uniform model must
        not raise.  The prepared rate is reported when available.
        """
        return ReachabilityResult(
            values=self.mask.astype(np.float64),
            iterations=0,
            uniform_rate=self.rate if self._ready else 0.0,
            time_bound=t,
            objective=objective,
            poisson=fox_glynn(0.0, min(epsilon, 0.5)),
            certificate=NumericalCertificate.trivial("ctmdp.reachability", epsilon),
        )

    def _zero_info(self, objective: str) -> tuple[np.ndarray, np.ndarray | None]:
        """The known-zero states of ``objective`` (cached per objective).

        For ``max`` these are the Prob0A states (no path to the goal at
        all); for ``min`` the Prob0E states, together with the witness
        choice (per state, the local index of a transition whose whole
        support stays inside the zero region) that a recorded scheduler
        must carry so that replaying it reproduces the zero.
        """
        cached = self._zero_cache.get(objective)
        if cached is not None:
            return cached
        from repro.graph.qualitative import prob0_exists, prob0_forall
        from repro.graph.structure import TransitionGraph

        graph = TransitionGraph.from_ctmdp(self.ctmdp)
        if objective == "max":
            info: tuple[np.ndarray, np.ndarray | None] = (
                prob0_forall(graph, self.mask),
                None,
            )
        else:
            zero, witness = prob0_exists(graph, self.mask, with_witness=True)
            info = (zero, witness)
        self._zero_cache[objective] = info
        return info

    def solve(
        self,
        t: float,
        epsilon: float = 1e-6,
        objective: str = "max",
        record_scheduler: bool = False,
        scheduler_format: str = "compressed",
    ) -> ReachabilityResult:
        """Solve one time bound against the prepared model/goal pair.

        With ``record_scheduler`` the optimal step scheduler is recorded
        as the sweep runs; ``scheduler_format`` picks the representation
        (see :data:`SCHEDULER_FORMATS`).  The compressed default streams
        each decision row into a run-length/delta store, so the dense
        ``iterations x states`` matrix is never materialised.
        """
        validate_objective(objective)
        _validate_scheduler_format(scheduler_format)
        if t < 0.0:
            raise ModelError("time bound must be non-negative")
        num_states = self.num_states

        if t == 0.0 or not self._ready:
            return self._trivial_result(t, epsilon, objective)

        if self.precompute:
            zero, witness = self._zero_info(objective)
            return _clamped_sweep(
                prob=self.prob,
                prob_to_goal=self.prob_to_goal,
                choice_ptr=np.asarray(self.ctmdp.choice_ptr),
                num_states=num_states,
                mask=self.mask,
                zero=zero,
                witness=witness,
                rate=self.rate,
                t=t,
                epsilon=epsilon,
                objective=objective,
                record_scheduler=record_scheduler,
                scheduler_format=scheduler_format,
                span_name="reachability.sweep",
                algorithm="ctmdp.reachability",
            )

        fg = fox_glynn(self.rate * t, epsilon)
        psi = fg.probabilities()
        k = fg.right

        prob = self.prob
        prob_to_goal = self.prob_to_goal
        segments = self.segments
        nonempty = segments.nonempty
        goal_idx = self.goal_idx

        dense_decisions: np.ndarray | None = None
        writer: PolicyWriter | None = None
        decision_row: np.ndarray | None = None
        if record_scheduler:
            if scheduler_format == "dense":
                dense_decisions = np.full((k, num_states), -1, dtype=np.int32)
            else:
                # The sweep runs backwards (row k-1 is produced first), so
                # the writer stores rows in arrival order and flags the
                # orientation instead of buffering the whole table.
                writer = PolicyWriter(num_states=num_states, reverse_rows=True)
                decision_row = np.full(num_states, -1, dtype=np.int32)

        with sweep_span(
            "reachability.sweep",
            t=t,
            objective=objective,
            states=num_states,
            transitions=self.ctmdp.num_transitions,
            iterations=k,
            lam=self.rate * t,
        ) as steps:
            record_steps = steps.enabled
            q = np.zeros(num_states)
            for i in range(k, 0, -1):
                step_started = perf_counter() if record_steps else 0.0
                psi_i = psi[i - fg.left] if i >= fg.left else 0.0
                transition_values = psi_i * prob_to_goal + prob @ q
                best = segment_reduce(transition_values, segments, objective)
                new_q = np.zeros(num_states)
                new_q[nonempty] = best
                new_q[goal_idx] = psi_i + q[goal_idx]
                if record_scheduler:
                    # First transition attaining the optimum within each
                    # segment, with the tie tolerance on the side that
                    # matches the objective (cf. segment_argbest).
                    argbest = segment_argbest(
                        transition_values, best, segments, objective
                    ).astype(np.int32)
                    if dense_decisions is not None:
                        dense_decisions[i - 1, nonempty] = argbest
                    else:
                        assert writer is not None and decision_row is not None
                        decision_row[nonempty] = argbest
                        writer.append(decision_row)
                q = new_q
                if record_steps:
                    steps.record(perf_counter() - step_started)

        decisions: np.ndarray | CompressedDecisions | None = dense_decisions
        if writer is not None:
            decisions = writer.finish()

        values = q.copy()
        values[goal_idx] = 1.0
        residual = max(0.0, float(values.max()) - 1.0, -float(values.min()))
        np.clip(values, 0.0, 1.0, out=values)

        return ReachabilityResult(
            values=values,
            iterations=k,
            uniform_rate=self.rate,
            time_bound=t,
            objective=objective,
            poisson=fg,
            decisions=decisions,
            certificate=certificate_from_foxglynn(
                fg, epsilon, "ctmdp.reachability", sweep_residual=residual
            ),
        )


def _clamped_sweep(
    *,
    prob,
    prob_to_goal: np.ndarray,
    choice_ptr: np.ndarray,
    num_states: int,
    mask: np.ndarray,
    zero: np.ndarray,
    witness: np.ndarray | None,
    rate: float,
    t: float,
    epsilon: float,
    objective: str,
    record_scheduler: bool,
    scheduler_format: str,
    span_name: str,
    algorithm: str,
) -> ReachabilityResult:
    """Backward sweep restricted to the qualitatively undecided states.

    Shared by timed reachability and timed until under
    ``precompute=True``.  Three state classes leave the numeric sweep:

    * ``zero`` states (the Prob0 set of the requested objective,
      including blocked until-states) are clamped to 0 -- sound for the
      *timed* objective because membership means the timed probability
      is exactly 0 for every horizon;
    * goal states follow the scalar recursion ``g_i = psi_i + g_{i+1}``
      shared by all of them, so their matrix rows and columns fold into
      ``(psi_i + g_{i+1}) * prob_to_goal``;
    * only the remaining *active* states are iterated, over the reduced
      ``active-rows x active-states`` sub-matrix.

    Recorded schedulers stay replayable: clamped min-states carry their
    zero-witness choice (a transition whose support stays inside the
    zero region), so the induced-chain validation reproduces the zero.
    """
    fg = fox_glynn(rate * t, epsilon)
    psi = fg.probabilities()
    k = fg.right

    active = ~mask & ~zero
    active_idx = np.flatnonzero(active)
    goal_idx = np.flatnonzero(mask)
    states_eliminated = num_states - len(active_idx)

    # Decision template for the eliminated states: min-zero states get
    # their witness transition, everything else the -1 "no choice"
    # marker (any choice of a max-zero state yields 0, goal states are
    # pinned by every replay).
    template = np.full(num_states, -1, dtype=np.int32)
    if witness is not None:
        chosen = witness >= 0
        template[chosen] = witness[chosen].astype(np.int32)

    dense_decisions: np.ndarray | None = None
    writer: PolicyWriter | None = None
    if record_scheduler:
        if scheduler_format == "dense":
            dense_decisions = np.full((k, num_states), -1, dtype=np.int32)
        else:
            writer = PolicyWriter(num_states=num_states, reverse_rows=True)

    def _finish(
        q_active: np.ndarray, g_total: float
    ) -> ReachabilityResult:
        decisions: np.ndarray | CompressedDecisions | None = dense_decisions
        if writer is not None:
            decisions = writer.finish()
        values = np.zeros(num_states)
        values[active_idx] = q_active
        values[goal_idx] = 1.0
        residual = max(
            0.0,
            float(values.max()) - 1.0,
            -float(values.min()),
            g_total - 1.0,
        )
        np.clip(values, 0.0, 1.0, out=values)
        return ReachabilityResult(
            values=values,
            iterations=k,
            uniform_rate=rate,
            time_bound=t,
            objective=objective,
            poisson=fg,
            decisions=decisions,
            certificate=certificate_from_foxglynn(
                fg,
                epsilon,
                algorithm,
                sweep_residual=residual,
                states_eliminated=states_eliminated,
            ),
            states_eliminated=states_eliminated,
        )

    if len(active_idx) == 0:
        # Every state is decided; only the constant decisions remain.
        if dense_decisions is not None:
            dense_decisions[:] = template
        elif writer is not None:
            for _ in range(k):
                writer.append(template)
        return _finish(np.empty(0), float(np.sum(psi)))

    counts_all = np.diff(choice_ptr)
    row_sources = np.repeat(np.arange(num_states), counts_all)
    active_rows = np.flatnonzero(active[row_sources])
    segments = SegmentIndex.from_choice_ptr(
        np.concatenate(([0], np.cumsum(counts_all[active_idx])))
    )
    sub = prob[active_rows]
    prob_aa = sub[:, active_idx].tocsr()
    prob_to_goal_active = prob_to_goal[active_rows]
    record_states = active_idx[segments.nonempty]

    with sweep_span(
        span_name,
        t=t,
        objective=objective,
        states=num_states,
        active=len(active_idx),
        iterations=k,
        lam=rate * t,
        precompute=True,
    ) as steps:
        record_steps = steps.enabled
        q = np.zeros(len(active_idx))
        g = 0.0  # the shared goal-state value g_{i+1}
        for i in range(k, 0, -1):
            step_started = perf_counter() if record_steps else 0.0
            psi_i = psi[i - fg.left] if i >= fg.left else 0.0
            transition_values = (psi_i + g) * prob_to_goal_active + prob_aa @ q
            best = segment_reduce(transition_values, segments, objective)
            new_q = np.zeros(len(active_idx))
            new_q[segments.nonempty] = best
            if record_scheduler:
                argbest = segment_argbest(
                    transition_values, best, segments, objective
                ).astype(np.int32)
                decision_row = template.copy()
                decision_row[record_states] = argbest
                if dense_decisions is not None:
                    dense_decisions[i - 1] = decision_row
                else:
                    assert writer is not None
                    writer.append(decision_row)
            q = new_q
            g = psi_i + g
            if record_steps:
                steps.record(perf_counter() - step_started)

    return _finish(q, g)


def timed_reachability(
    ctmdp: CTMDP,
    goal: Iterable[int] | np.ndarray,
    t: float,
    epsilon: float = 1e-6,
    objective: str = "max",
    record_scheduler: bool = False,
    scheduler_format: str = "compressed",
    precompute: bool = False,
) -> ReachabilityResult:
    """Run Algorithm 1 on a uniform CTMDP.

    Parameters
    ----------
    ctmdp:
        The model; must be uniform (:class:`~repro.errors.NonUniformError`
        otherwise -- the greedy recursion is unsound on non-uniform
        models).  Trivially-answerable queries (empty goal set) are
        exempt: uniformity is irrelevant to their answer.
    goal:
        Goal set ``B`` as indices or boolean mask over states.
    t:
        Time bound (hours in the FTWC study).
    epsilon:
        Poisson truncation error; the paper's experiments use ``1e-6``.
    objective:
        ``"max"`` for worst-case (sup over schedulers), ``"min"`` for
        best-case (inf).
    record_scheduler:
        If true, record the optimising transition per state and step.
    scheduler_format:
        ``"compressed"`` (default) streams the decisions into a
        :class:`~repro.policy.store.CompressedDecisions` store during
        the sweep; ``"dense"`` keeps the historical
        ``iterations x num_states`` int32 matrix (large for the long
        FTWC horizons -- it exists for the equivalence tests).
    precompute:
        If true, clamp the qualitative zero set and fold the goal states
        into a scalar recursion before iterating; the sweep then covers
        only the undecided states.  Values agree with the unclamped
        sweep within the certified error bound (not bitwise), and the
        result reports ``states_eliminated``.

    Returns
    -------
    ReachabilityResult
    """
    return PreparedTimedReachability(ctmdp, goal, precompute=precompute).solve(
        t,
        epsilon=epsilon,
        objective=objective,
        record_scheduler=record_scheduler,
        scheduler_format=scheduler_format,
    )


def _replay_rows(
    decisions: np.ndarray | CompressedDecisions, right: int
) -> Iterable[np.ndarray]:
    """Decision rows for backward indices ``i = right .. 1``.

    Backward step ``i`` reads logical row ``min(i - 1, steps - 1)``:
    steps beyond the recorded horizon reuse the last row.  For a
    :class:`CompressedDecisions` store this walks
    :meth:`~CompressedDecisions.iter_rows_reversed` -- each delta is
    decoded exactly once and the dense table is never materialised
    (for the backward-written stores of ``record_scheduler=True`` the
    reversed logical order *is* the physical order).
    """
    steps = len(decisions)
    if isinstance(decisions, CompressedDecisions):
        source = decisions.iter_rows_reversed()
        row = next(source)
        for _ in range(steps - right):
            row = next(source)  # recorded horizon longer: top rows unused
        for _ in range(max(0, right - steps)):
            yield row  # beyond the horizon: hold the last recorded row
        yield row
        for row in source:
            yield row
    else:
        for i in range(right, 0, -1):
            yield decisions[min(i - 1, steps - 1)]


def replay_step_scheduler(
    ctmdp: CTMDP,
    goal: Iterable[int] | np.ndarray,
    t: float,
    decisions: np.ndarray | CompressedDecisions,
    epsilon: float = 1e-6,
    safe: Iterable[int] | np.ndarray | None = None,
) -> ReachabilityResult:
    """Exact per-state value of a recorded step scheduler, certified.

    Replays the Poisson-weighted backward recursion of Algorithm 1 with
    the optimisation replaced by the *fixed* choices of ``decisions``
    (what a ``record_scheduler=True`` solve produces: row ``i - 1``
    holds the per-state transition index used at backward step ``i``).
    Steps beyond the recorded horizon reuse the last row and ``-1``
    entries (states without a recorded choice) fall back to the first
    transition, matching :class:`~repro.core.scheduler.StepScheduler`.
    With ``safe`` the replay computes the until value ``safe U^{<=t}
    goal`` under the fixed scheduler (states outside ``safe + goal``
    are blocked at zero), mirroring :func:`repro.core.until.timed_until`.

    Compressed stores are replayed *streaming* -- rows are decoded in
    the sweep's own backward order, so replay memory matches extraction
    memory.  The result carries ``objective="replay"`` (no optimisation
    happened) and a :class:`~repro.obs.NumericalCertificate` with
    algorithm ``"ctmdp.replay"``; induced-chain validation
    (:mod:`repro.policy.validate`) consumes both.
    """
    if t < 0.0:
        raise ModelError("time bound must be non-negative")
    prepared = PreparedTimedReachability(ctmdp, goal)
    blocked: np.ndarray | None = None
    if safe is not None:
        blocked = ~(_goal_mask(ctmdp, safe) | prepared.mask)
    if t == 0.0 or not prepared._ready:
        return ReachabilityResult(
            values=prepared.mask.astype(np.float64),
            iterations=0,
            uniform_rate=prepared.rate if prepared._ready else 0.0,
            time_bound=t,
            objective="replay",
            poisson=fox_glynn(0.0, min(epsilon, 0.5)),
            certificate=NumericalCertificate.trivial("ctmdp.replay", epsilon),
        )
    if not isinstance(decisions, CompressedDecisions):
        decisions = np.asarray(decisions)
        if decisions.ndim != 2 or decisions.shape[1] != ctmdp.num_states:
            raise ModelError(
                f"decisions must have shape (steps, {ctmdp.num_states}), "
                f"got {decisions.shape}"
            )
    elif decisions.num_states != ctmdp.num_states:
        raise ModelError(
            f"decisions cover {decisions.num_states} states, "
            f"model has {ctmdp.num_states}"
        )
    if len(decisions) == 0:
        raise ModelError("decisions must record at least one step")

    fg = fox_glynn(prepared.rate * t, epsilon)
    psi = fg.probabilities()
    segments = prepared.segments
    nonempty_states = np.flatnonzero(segments.nonempty)
    goal_idx = prepared.goal_idx
    prob = prepared.prob
    prob_to_goal = prepared.prob_to_goal

    q = np.zeros(ctmdp.num_states)
    rows_iter = iter(_replay_rows(decisions, fg.right))
    for i in range(fg.right, 0, -1):
        psi_i = psi[i - fg.left] if i >= fg.left else 0.0
        transition_values = psi_i * prob_to_goal + prob @ q
        decision_row = next(rows_iter)
        choice = np.clip(decision_row[nonempty_states], 0, segments.counts - 1)
        rows = segments.starts + choice
        new_q = np.zeros(ctmdp.num_states)
        new_q[segments.nonempty] = transition_values[rows]
        new_q[goal_idx] = psi_i + q[goal_idx]
        if blocked is not None:
            new_q[blocked] = 0.0
        q = new_q

    values = q.copy()
    values[goal_idx] = 1.0
    if blocked is not None:
        values[blocked] = 0.0
    residual = max(0.0, float(values.max()) - 1.0, -float(values.min()))
    np.clip(values, 0.0, 1.0, out=values)
    return ReachabilityResult(
        values=values,
        iterations=fg.right,
        uniform_rate=prepared.rate,
        time_bound=t,
        objective="replay",
        poisson=fg,
        certificate=certificate_from_foxglynn(
            fg, epsilon, "ctmdp.replay", sweep_residual=residual
        ),
    )


def evaluate_step_scheduler(
    ctmdp: CTMDP,
    goal: Iterable[int] | np.ndarray,
    t: float,
    decisions: np.ndarray | CompressedDecisions,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Exact per-state value of a recorded step scheduler.

    Thin wrapper over :func:`replay_step_scheduler` keeping the
    historical value-vector return shape.  This is the analytic
    counterpart of simulating the scheduler: if ``decisions`` came from
    an optimal solve with the same ``epsilon``, the returned values must
    reproduce the optimal values -- the regression anchor for the
    scheduler-extraction direction fix.
    """
    return replay_step_scheduler(ctmdp, goal, t, decisions, epsilon=epsilon).values


def unbounded_reachability(
    ctmdp: CTMDP,
    goal: Iterable[int] | np.ndarray,
    objective: str = "max",
    tol: float = 1e-12,
    max_iterations: int = 1_000_000,
    precompute: bool = False,
) -> np.ndarray:
    """(Time-)unbounded reachability probabilities via value iteration.

    The continuous-time dynamics are irrelevant for the event "``B`` is
    ever reached", so this is plain value iteration on the embedded
    DTMDP.  Used for sanity checks (timed probabilities must converge to
    these values as ``t`` grows) and as a general-purpose utility.

    With ``precompute=True`` both qualitative sets of the objective are
    clamped before iterating -- unlike the timed solvers, the *one* set
    is sound here (``Pmax = 1`` / ``Pmin = 1`` membership is exactly the
    unbounded value), which removes the slowest-converging states from
    the iteration entirely.
    """
    validate_objective(objective)
    mask = _goal_mask(ctmdp, goal)
    if not mask.any():
        return np.zeros(ctmdp.num_states)

    zero: np.ndarray | None = None
    one: np.ndarray | None = None
    if precompute:
        from repro.graph.qualitative import (
            prob0_exists,
            prob0_forall,
            prob1_exists,
            prob1_forall,
        )
        from repro.graph.structure import TransitionGraph

        graph = TransitionGraph.from_ctmdp(ctmdp)
        if objective == "max":
            zero = prob0_forall(graph, mask)
            one = prob1_exists(graph, mask)
        else:
            zero = np.asarray(prob0_exists(graph, mask))
            one = prob1_forall(graph, mask)

    prob = ctmdp.probability_matrix()
    segments = SegmentIndex.from_choice_ptr(ctmdp.choice_ptr)

    with sweep_span(
        "vi.sweep", objective=objective, states=ctmdp.num_states, kind="unbounded"
    ) as steps:
        record_steps = steps.enabled
        q = mask.astype(np.float64)
        if one is not None:
            q[one] = 1.0
        for _ in range(max_iterations):
            step_started = perf_counter() if record_steps else 0.0
            transition_values = prob @ q
            new_q = np.zeros(ctmdp.num_states)
            new_q[segments.nonempty] = segment_reduce(transition_values, segments, objective)
            new_q[mask] = 1.0
            if one is not None:
                new_q[one] = 1.0
            if zero is not None:
                new_q[zero] = 0.0
            if record_steps:
                steps.record(perf_counter() - step_started)
            if np.max(np.abs(new_q - q)) < tol:
                return new_q
            q = new_q
    return q
