"""Qualitative (graph-based) reachability analysis for CTMDPs.

Whether a goal set is reached *almost surely* is a purely structural
question -- actual rates do not matter -- and answering it numerically
by value iteration is fragile (convergence towards 1 can be arbitrarily
slow).  This module implements the standard precomputations of
probabilistic model checkers on the CTMDP's transition graph:

* :func:`almost_sure_max` (Prob1E): states from which *some* scheduler
  reaches the goal with probability one;
* :func:`almost_sure_min` (Prob1A): states from which *every* scheduler
  does -- equivalently, from which the adversary cannot retain positive
  probability of avoiding the goal forever;
* :func:`cannot_reach` (Prob0E-style): states from which the goal is
  unreachable under every scheduler (no path at all).

Used by :func:`repro.core.expected_time.expected_reachability_time` to
classify states with infinite expected hitting time exactly.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.ctmdp import CTMDP
from repro.core.reachability import _goal_mask

__all__ = ["almost_sure_max", "almost_sure_min", "cannot_reach"]


def _successor_lists(ctmdp: CTMDP) -> list[list[np.ndarray]]:
    """Per state, the list of successor arrays (one per transition)."""
    matrix = ctmdp.rate_matrix
    result: list[list[np.ndarray]] = []
    for state in range(ctmdp.num_states):
        lo, hi = ctmdp.choice_ptr[state], ctmdp.choice_ptr[state + 1]
        rows = []
        for row in range(lo, hi):
            start, end = matrix.indptr[row], matrix.indptr[row + 1]
            rows.append(matrix.indices[start:end])
        result.append(rows)
    return result


def cannot_reach(ctmdp: CTMDP, goal: Iterable[int] | np.ndarray) -> np.ndarray:
    """States with no path to the goal at all (``Pr_max = 0``)."""
    mask = _goal_mask(ctmdp, goal)
    successors = _successor_lists(ctmdp)
    # Backward reachability over the union graph.
    predecessors: list[list[int]] = [[] for _ in range(ctmdp.num_states)]
    for state, rows in enumerate(successors):
        for targets in rows:
            for target in targets:
                predecessors[int(target)].append(state)
    reached = mask.copy()
    stack = list(np.flatnonzero(mask))
    while stack:
        state = stack.pop()
        for pred in predecessors[state]:
            if not reached[pred]:
                reached[pred] = True
                stack.append(pred)
    return ~reached


def almost_sure_max(ctmdp: CTMDP, goal: Iterable[int] | np.ndarray) -> np.ndarray:
    """States where some scheduler reaches the goal with probability one.

    The classical Prob1E nested fixpoint: the outer loop shrinks a
    candidate set ``u``; the inner loop grows, inside ``u``, the states
    that have a transition staying within ``u`` while making progress
    (positive probability of moving closer to the goal).
    """
    mask = _goal_mask(ctmdp, goal)
    successors = _successor_lists(ctmdp)
    n = ctmdp.num_states

    u = np.ones(n, dtype=bool)
    while True:
        v = mask.copy()
        changed = True
        while changed:
            changed = False
            for state in range(n):
                if v[state]:
                    continue
                for targets in successors[state]:
                    if len(targets) == 0:
                        continue
                    stays = all(u[int(t)] for t in targets)
                    progresses = any(v[int(t)] for t in targets)
                    if stays and progresses:
                        v[state] = True
                        changed = True
                        break
        if np.array_equal(v, u):
            return u
        u = v


def almost_sure_min(ctmdp: CTMDP, goal: Iterable[int] | np.ndarray) -> np.ndarray:
    """States where every scheduler reaches the goal with probability one.

    The adversary avoids the goal with positive probability iff it can
    (staying outside the goal) reach a *closed* goal-free sub-MDP -- a
    set in which some transition of every member keeps all mass inside
    the set.  The closed core is a greatest fixpoint; reachability to it
    runs over all goal-free edges (an action leaking some mass into the
    goal still moves outside-mass with positive probability).
    """
    mask = _goal_mask(ctmdp, goal)
    successors = _successor_lists(ctmdp)
    n = ctmdp.num_states

    # Greatest fixpoint: goal-free states keeping, via some transition,
    # all mass within the candidate set.  States without transitions are
    # absorbing and trivially closed.
    core = ~mask
    changed = True
    while changed:
        changed = False
        for state in np.flatnonzero(core):
            rows = successors[state]
            if not rows:
                continue  # absorbing: stays forever
            if not any(all(core[int(t)] for t in targets) for targets in rows):
                core[state] = False
                changed = True

    # Can the adversary reach the core while avoiding the goal?  Forward
    # search over goal-free states along any transition edge.
    avoid_possible = core.copy()
    changed = True
    while changed:
        changed = False
        for state in range(n):
            if avoid_possible[state] or mask[state]:
                continue
            for targets in successors[state]:
                if any(avoid_possible[int(t)] for t in targets):
                    avoid_possible[state] = True
                    changed = True
                    break
    return ~avoid_possible
