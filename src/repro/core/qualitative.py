"""Qualitative (graph-based) reachability analysis for CTMDPs.

Whether a goal set is reached *almost surely* is a purely structural
question -- actual rates do not matter -- and answering it numerically
by value iteration is fragile (convergence towards 1 can be arbitrarily
slow).  The algorithms live in :mod:`repro.graph.qualitative`, which
covers the full Prob0E/Prob0A/Prob1E/Prob1A family over every model
class; this module keeps the original CTMDP-facing names:

* :func:`almost_sure_max` (Prob1E): states from which *some* scheduler
  reaches the goal with probability one;
* :func:`almost_sure_min` (Prob1A): states from which *every* scheduler
  does -- equivalently, from which the adversary cannot retain positive
  probability of avoiding the goal forever;
* :func:`cannot_reach` (Prob0A): states from which the goal is
  unreachable under every scheduler (no path at all).

Used by :func:`repro.core.expected_time.expected_reachability_time` to
classify states with infinite expected hitting time exactly, and by the
timed solvers to clamp known-zero states before iterating.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.ctmdp import CTMDP
from repro.graph.qualitative import prob0_forall, prob1_exists, prob1_forall
from repro.graph.structure import TransitionGraph

__all__ = ["almost_sure_max", "almost_sure_min", "cannot_reach"]


def cannot_reach(ctmdp: CTMDP, goal: Iterable[int] | np.ndarray) -> np.ndarray:
    """States with no path to the goal at all (``Pr_max = 0``)."""
    return prob0_forall(TransitionGraph.from_ctmdp(ctmdp), goal)


def almost_sure_max(ctmdp: CTMDP, goal: Iterable[int] | np.ndarray) -> np.ndarray:
    """States where some scheduler reaches the goal with probability one."""
    return prob1_exists(TransitionGraph.from_ctmdp(ctmdp), goal)


def almost_sure_min(ctmdp: CTMDP, goal: Iterable[int] | np.ndarray) -> np.ndarray:
    """States where every scheduler reaches the goal with probability one."""
    return prob1_forall(TransitionGraph.from_ctmdp(ctmdp), goal)