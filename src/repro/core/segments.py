"""Segmented per-state optimisation shared by every value recursion.

The CTMDP and DTMDP solvers all store transitions sorted by source
state, so "optimise over the choices of each state" is a segmented
reduction over contiguous blocks of a per-transition value vector
(Section 4.2 of the paper).  Three different modules used to repeat the
same ``reduceat`` + tie-tolerance pattern -- and one of them carried a
sign bug in the ``min``-objective argmax (every value is ``>=`` the
segment minimum, so the recorded "minimiser" was always the first
transition).  This module is the single home of that pattern so the bug
cannot recur:

* :class:`SegmentIndex` -- the per-state segment bookkeeping derived
  from a ``choice_ptr`` array;
* :func:`segment_reduce` -- the per-segment max/min;
* :func:`segment_argbest` -- the first transition attaining the
  optimum within each segment, with the tie tolerance applied on the
  correct side for each objective.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError

__all__ = [
    "TIE_TOLERANCE",
    "SegmentIndex",
    "validate_objective",
    "segment_reduce",
    "segment_argbest",
]

#: Absolute tolerance under which two transition values count as tied;
#: ties resolve to the first transition of the segment.
TIE_TOLERANCE = 1e-15


def validate_objective(objective: str) -> str:
    """Return ``objective`` if it is ``"max"`` or ``"min"``, raise otherwise."""
    if objective not in ("max", "min"):
        raise ModelError(f"objective must be 'max' or 'min', got {objective!r}")
    return objective


@dataclass(frozen=True)
class SegmentIndex:
    """Bookkeeping for the contiguous transition block of each state.

    Attributes
    ----------
    nonempty:
        Boolean mask over states; true where the state has transitions.
        States without transitions take part in no reduction (their
        value is pinned by the caller, typically to zero).
    starts:
        Per *nonempty* state, the row index of its first transition.
    counts:
        Per *nonempty* state, the number of its transitions.
    """

    nonempty: np.ndarray
    starts: np.ndarray
    counts: np.ndarray

    @classmethod
    def from_choice_ptr(cls, choice_ptr: np.ndarray) -> "SegmentIndex":
        """Build from a cumulative ``choice_ptr`` (one entry per state + 1)."""
        counts = np.diff(choice_ptr)
        nonempty = counts > 0
        return cls(
            nonempty=nonempty,
            starts=np.asarray(choice_ptr[:-1][nonempty]),
            counts=counts[nonempty],
        )


def segment_reduce(
    values: np.ndarray, segments: SegmentIndex, objective: str
) -> np.ndarray:
    """Per-segment optimum of ``values``; one entry per nonempty state.

    An empty segment index yields an empty result (a model without any
    transition has nothing to optimise over).
    """
    if segments.starts.size == 0:
        return np.empty(0, dtype=np.float64)
    reduce_fn = np.maximum.reduceat if objective == "max" else np.minimum.reduceat
    return reduce_fn(values, segments.starts)


def segment_argbest(
    values: np.ndarray,
    best: np.ndarray,
    segments: SegmentIndex,
    objective: str,
    tol: float = TIE_TOLERANCE,
) -> np.ndarray:
    """First transition attaining the segment optimum, per nonempty state.

    Returns the *local* choice index (offset within the state's block)
    of the first transition whose value is within ``tol`` of ``best``.
    The tolerance is applied on the side matching the objective: a
    maximiser must be ``>= best - tol``, a minimiser ``<= best + tol``
    -- using ``>=`` for both is exactly the historical ``min`` bug
    (every value is ``>=`` the minimum, so the first transition always
    "won").
    """
    if segments.starts.size == 0:
        return np.empty(0, dtype=np.int64)
    expanded = np.repeat(best, segments.counts)
    if objective == "max":
        hits = np.flatnonzero(values >= expanded - tol)
    else:
        hits = np.flatnonzero(values <= expanded + tol)
    firsts = np.searchsorted(hits, segments.starts, side="left")
    return hits[firsts] - segments.starts
