"""Expected time to reach a goal set in a uniform CTMDP.

A natural companion to timed reachability: instead of the probability of
hitting ``B`` within ``t``, the optimal *expected hitting time*.  For a
uniform CTMDP every sojourn has mean ``1/E`` regardless of the chosen
transition, so the problem is a total-expected-reward MDP on the
embedded jump chain with step reward ``1/E``:

    v(s) = 0                                   for s in B,
    v(s) = opt over (s, a, R) of 1/E + sum_{s'} Pr_R(s, s') v(s').

Finiteness: a scheduler that misses ``B`` with positive probability has
infinite expected time, so

* ``sup_D E[T]``  is finite at ``s`` iff *every* scheduler reaches ``B``
  almost surely from ``s`` (the minimal unbounded reachability
  probability is one);
* ``inf_D E[T]``  is finite iff *some* scheduler does (the maximal
  probability is one; for finite CTMDPs the supremum is attained by a
  memoryless scheduler).

States violating the respective condition are reported as ``inf``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.core.ctmdp import CTMDP
from repro.core.qualitative import almost_sure_max, almost_sure_min
from repro.core.reachability import _goal_mask
from repro.errors import ModelError, NonUniformError
from repro.obs import NumericalCertificate, iterative_certificate

__all__ = [
    "ExpectedTimeResult",
    "expected_reachability_time",
    "expected_time_analysis",
]


@dataclass(frozen=True)
class ExpectedTimeResult:
    """Expected-time values plus their numerical-health certificate."""

    values: np.ndarray
    certificate: NumericalCertificate


def _proper_initial_policy(
    ctmdp: CTMDP, mask: np.ndarray, finite: np.ndarray
) -> np.ndarray:
    """A policy guaranteed to reach the goal almost surely from every
    finite state: the Prob1E certificate -- per state, a transition that
    keeps all mass inside the finite set and makes progress towards the
    goal (following these witnesses, the distance-to-goal layer index
    strictly decreases with positive probability at every step)."""
    matrix = ctmdp.rate_matrix
    policy = np.zeros(ctmdp.num_states, dtype=np.int64)
    settled = mask.copy()
    changed = True
    while changed:
        changed = False
        for state in np.flatnonzero(finite & ~settled):
            lo, hi = ctmdp.choice_ptr[state], ctmdp.choice_ptr[state + 1]
            for row in range(lo, hi):
                start, end = matrix.indptr[row], matrix.indptr[row + 1]
                targets = matrix.indices[start:end]
                if all(finite[int(t)] for t in targets) and any(
                    settled[int(t)] for t in targets
                ):
                    policy[state] = row - lo
                    settled[state] = True
                    changed = True
                    break
    return policy


def expected_reachability_time(
    ctmdp: CTMDP,
    goal: Iterable[int] | np.ndarray,
    objective: str = "min",
    max_policy_iterations: int = 10_000,
) -> np.ndarray:
    """Optimal expected time, per state, until ``goal`` is first hit.

    Kept for callers that only want the bare value vector; delegates to
    :func:`expected_time_analysis` so both paths are bitwise-identical.
    """
    return expected_time_analysis(
        ctmdp, goal, objective=objective, max_policy_iterations=max_policy_iterations
    ).values


def expected_time_analysis(
    ctmdp: CTMDP,
    goal: Iterable[int] | np.ndarray,
    objective: str = "min",
    max_policy_iterations: int = 10_000,
    tolerance: float = 1e-9,
) -> ExpectedTimeResult:
    """Optimal expected time, per state, until ``goal`` is first hit.

    Solved by *policy iteration*: policies are evaluated exactly through
    a sparse linear solve of ``(I - P_policy) v = 1/E`` on the finite
    non-goal states, then improved greedily; for positive step costs and
    a proper initial policy this terminates in finitely many steps with
    the exact optimum (no value-iteration convergence tail).

    The certificate (algorithm ``"ctmdp.expected_time"``, via
    :func:`repro.obs.iterative_certificate`) records the a-posteriori
    Bellman residual of the returned values over the finite solve
    states, scaled by the largest finite value -- at a true policy-
    iteration fixed point this is floating-point noise, and a residual
    above ``tolerance`` (e.g. the ``max_policy_iterations`` safety bound
    tripping first) marks the certificate degraded.

    Parameters
    ----------
    ctmdp:
        A uniform CTMDP.
    goal:
        The goal set; its states have expected time zero.
    objective:
        ``"min"`` (best-case hitting time) or ``"max"`` (worst case).
    max_policy_iterations:
        Safety bound; policy iteration terminates far earlier.
    tolerance:
        Admissible scaled Bellman residual for a healthy certificate.

    Returns
    -------
    ExpectedTimeResult
        Expected times (``inf`` where the respective finiteness
        condition fails, see module docstring) plus the certificate.
    """
    if objective not in ("max", "min"):
        raise ModelError(f"objective must be 'max' or 'min', got {objective!r}")
    mask = _goal_mask(ctmdp, goal)
    n = ctmdp.num_states
    if not mask.any():
        return ExpectedTimeResult(
            values=np.full(n, np.inf),
            certificate=iterative_certificate(
                "ctmdp.expected_time", epsilon=tolerance, residual=0.0, iterations=0
            ),
        )

    rate = ctmdp.uniform_rate()
    if rate <= 0.0:
        raise NonUniformError("uniform rate must be strictly positive")
    step = 1.0 / rate

    # Finiteness (decided qualitatively, on the graph): max E[T] is
    # finite iff *every* scheduler reaches B almost surely, min E[T] iff
    # *some* scheduler does.
    if objective == "max":
        finite = almost_sure_min(ctmdp, mask) | mask
    else:
        finite = almost_sure_max(ctmdp, mask) | mask

    import scipy.sparse as sp
    import scipy.sparse.linalg

    prob = ctmdp.probability_matrix()
    counts = np.diff(ctmdp.choice_ptr)
    nonempty = counts > 0

    # Unknowns: finite, non-goal states with at least one transition.
    solve_states = np.flatnonzero(finite & ~mask & nonempty)
    if len(solve_states) == 0:
        v = np.full(n, np.inf)
        v[mask] = 0.0
        return ExpectedTimeResult(
            values=v,
            certificate=iterative_certificate(
                "ctmdp.expected_time", epsilon=tolerance, residual=0.0, iterations=0
            ),
        )
    position = -np.ones(n, dtype=np.int64)
    position[solve_states] = np.arange(len(solve_states))

    # Transitions touching infinite states can never be part of a finite
    # policy and are excluded from improvement.
    infinite_vec = (~finite).astype(np.float64)
    touches_infinite = np.asarray(prob @ infinite_vec).ravel() > 0.0

    def _bellman_residual(v: np.ndarray, iterations: int) -> "NumericalCertificate":
        """Certificate from the a-posteriori Bellman defect at ``v``."""
        finite_v = np.where(np.isfinite(v), v, 0.0)
        values = step + np.asarray(prob @ finite_v).ravel()
        values[touches_infinite] = np.inf
        worst = 0.0
        for state in solve_states:
            lo, hi = ctmdp.choice_ptr[state], ctmdp.choice_ptr[state + 1]
            candidates = values[lo:hi]
            if objective == "max":
                usable = np.where(np.isfinite(candidates), candidates, -np.inf)
                best = float(usable.max())
            else:
                best = float(candidates.min())
            worst = max(worst, abs(float(v[state]) - best))
        finite_vals = v[np.isfinite(v)]
        scale = max(1.0, float(np.abs(finite_vals).max()) if len(finite_vals) else 1.0)
        return iterative_certificate(
            "ctmdp.expected_time",
            epsilon=tolerance,
            residual=worst / scale,
            iterations=iterations,
            # Goal states and the qualitatively-infinite states never
            # enter the linear solves.
            states_eliminated=n - len(solve_states),
        )

    policy = _proper_initial_policy(ctmdp, mask, finite)

    v = np.full(n, np.inf)
    v[mask] = 0.0
    for iteration in range(max_policy_iterations):
        # --- Evaluate the current policy exactly. ---------------------
        rows = ctmdp.choice_ptr[solve_states] + policy[solve_states]
        p_policy = prob[rows]  # len(solve) x n
        p_ff = p_policy[:, solve_states]
        identity = sp.identity(len(solve_states), format="csr")
        solution = scipy.sparse.linalg.spsolve(
            sp.csr_matrix(identity - p_ff), np.full(len(solve_states), step)
        )
        v = np.full(n, np.inf)
        v[mask] = 0.0
        v[solve_states] = np.atleast_1d(solution)

        # --- Greedy improvement. --------------------------------------
        # Transitions touching infinite states are unusable: for "min"
        # the optimum avoids them (a finite alternative exists by the
        # witness policy); for "max" they cannot occur from finite
        # states at all (a transition into a sometimes-avoiding state
        # would make the source sometimes-avoiding too).
        finite_v = np.where(np.isfinite(v), v, 0.0)
        values = step + np.asarray(prob @ finite_v).ravel()
        values[touches_infinite] = np.inf
        improved = False
        for state in solve_states:
            lo, hi = ctmdp.choice_ptr[state], ctmdp.choice_ptr[state + 1]
            candidates = values[lo:hi]
            if objective == "max":
                usable = np.where(np.isfinite(candidates), candidates, -np.inf)
                best = int(np.argmax(usable))
                better = candidates[best] > candidates[policy[state]] + 1e-12
            else:
                best = int(np.argmin(candidates))
                better = candidates[best] < candidates[policy[state]] - 1e-12
            if better:
                policy[state] = best
                improved = True
        if not improved:
            return ExpectedTimeResult(
                values=v, certificate=_bellman_residual(v, iteration + 1)
            )
    return ExpectedTimeResult(
        values=v, certificate=_bellman_residual(v, max_policy_iterations)
    )
