"""Continuous-time Markov decision processes (CTMDPs).

This implements the mild variation of CTMDPs used in the paper
(Definition 1): a transition is a triple ``(s, a, R)`` of a source state,
an action label, and a *rate function* ``R : S -> R+``; several
transitions out of one state may carry the *same* action label, because
the uIMC-to-uCTMDP transformation naturally produces word-labelled
transitions that may collide.

Storage follows the paper's implementation notes (Section 4.2): the
transition relation is kept as sparse matrices storing action and rate
information separately, with rate functions in one-to-one correspondence
to the Markov states of the underlying strictly alternating IMC.
Concretely:

* ``rate_matrix`` is a ``T x S`` CSR matrix, one row per transition
  (= rate function = Markov state), holding ``R(s')``;
* ``sources`` maps each row to its source state;
* ``labels`` holds each row's action label (a *word* after the
  transformation, cf. Section 4.1);
* rows are sorted by source state so per-state maximisation can use
  contiguous segments (``choice_ptr``), the dominant operation of the
  timed-reachability algorithm.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np
import scipy.sparse as sp

from repro.errors import ModelError, NonUniformError

__all__ = ["CTMDP", "Transition"]


@dataclass(frozen=True)
class Transition:
    """A single CTMDP transition ``(source, action, R)`` in dictionary form."""

    source: int
    action: str
    rates: Mapping[int, float]

    def total_rate(self) -> float:
        """The exit rate ``E_R`` of this transition's rate function.

        ``math.fsum`` keeps the value independent of dictionary order:
        exit rates feed uniformity checks and bisimulation signatures,
        where two orderings of the same rates must not disagree.
        """
        return math.fsum(self.rates.values())


class CTMDP:
    """A CTMDP with sparse, source-sorted transition storage.

    Use :meth:`from_transitions` to construct instances; the constructor
    expects already-sorted arrays and is mostly internal.
    """

    def __init__(
        self,
        num_states: int,
        sources: np.ndarray,
        labels: list[str],
        rate_matrix: sp.csr_matrix,
        initial: int = 0,
        state_names: list[str] | None = None,
    ) -> None:
        if num_states <= 0:
            raise ModelError("a CTMDP needs at least one state")
        if rate_matrix.shape != (len(labels), num_states):
            raise ModelError(
                f"rate matrix shape {rate_matrix.shape} inconsistent with "
                f"{len(labels)} transitions over {num_states} states"
            )
        if sources.shape != (len(labels),):
            raise ModelError("one source per transition required")
        if len(labels) and (np.diff(sources) < 0).any():
            raise ModelError("transitions must be sorted by source state")
        if not 0 <= initial < num_states:
            raise ModelError(f"initial state {initial} out of range")
        if state_names is not None and len(state_names) != num_states:
            raise ModelError("state_names length must match the number of states")
        if rate_matrix.nnz and not (
            np.isfinite(rate_matrix.data).all() and rate_matrix.data.min() > 0.0
        ):
            raise ModelError("stored rates must be strictly positive and finite")

        self.num_states = num_states
        self.sources = sources.astype(np.int64)
        self.labels = labels
        self.rate_matrix = sp.csr_matrix(rate_matrix, dtype=np.float64)
        self.initial = initial
        self.state_names = state_names

        # choice_ptr[s] .. choice_ptr[s+1] delimit the transitions of s.
        counts = np.bincount(self.sources, minlength=num_states)
        self.choice_ptr = np.concatenate(([0], np.cumsum(counts)))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_transitions(
        cls,
        num_states: int,
        transitions: Iterable[tuple[int, str, Mapping[int, float]]],
        initial: int = 0,
        state_names: Sequence[str] | None = None,
    ) -> "CTMDP":
        """Build a CTMDP from ``(source, action, {target: rate})`` triples.

        Transitions are sorted by source state; empty rate functions are
        rejected (a transition must lead somewhere).
        """
        triples = sorted(
            ((src, action, dict(rates)) for src, action, rates in transitions),
            key=lambda item: item[0],
        )
        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        sources: list[int] = []
        labels: list[str] = []
        for row, (src, action, rates) in enumerate(triples):
            if not 0 <= src < num_states:
                raise ModelError(f"transition source {src} out of range")
            if not rates:
                raise ModelError(f"transition ({src}, {action}) has an empty rate function")
            sources.append(src)
            labels.append(action)
            for dst, rate in rates.items():
                if not 0 <= dst < num_states:
                    raise ModelError(f"transition target {dst} out of range")
                if not (math.isfinite(rate) and rate > 0.0):
                    raise ModelError(
                        f"rates must be positive and finite, got {rate} on ({src}, {action})"
                    )
                rows.append(row)
                cols.append(dst)
                data.append(float(rate))
        matrix = sp.csr_matrix(
            (data, (rows, cols)), shape=(len(labels), num_states), dtype=np.float64
        )
        matrix.sum_duplicates()
        return cls(
            num_states=num_states,
            sources=np.array(sources, dtype=np.int64),
            labels=labels,
            rate_matrix=matrix,
            initial=initial,
            state_names=list(state_names) if state_names is not None else None,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_transitions(self) -> int:
        """Number of transitions (rate functions / hyperedges)."""
        return len(self.labels)

    @property
    def num_rate_entries(self) -> int:
        """Number of stored positive rates (sparse non-zeros)."""
        return self.rate_matrix.nnz

    def transitions_of(self, state: int) -> list[Transition]:
        """All transitions emanating from ``state`` (``R(s)`` in the paper)."""
        lo, hi = self.choice_ptr[state], self.choice_ptr[state + 1]
        result = []
        for row in range(lo, hi):
            entries = self.rate_matrix.getrow(row)
            rates = dict(zip(entries.indices.tolist(), entries.data.tolist()))
            result.append(Transition(source=state, action=self.labels[row], rates=rates))
        return result

    def num_choices(self, state: int) -> int:
        """Number of nondeterministic alternatives in ``state``."""
        return int(self.choice_ptr[state + 1] - self.choice_ptr[state])

    def exit_rates(self) -> np.ndarray:
        """Per-transition exit rates ``E_R`` (row sums of the rate matrix)."""
        return np.asarray(self.rate_matrix.sum(axis=1)).ravel()

    def states_without_choices(self) -> np.ndarray:
        """Indices of absorbing states (no outgoing transition)."""
        return np.flatnonzero(np.diff(self.choice_ptr) == 0)

    # ------------------------------------------------------------------
    # Uniformity
    # ------------------------------------------------------------------
    def is_uniform(self, tol: float = 1e-9) -> bool:
        """True iff all transitions share one exit rate ``E`` (uCTMDP)."""
        exits = self.exit_rates()
        if len(exits) == 0:
            return True
        reference = exits[0]
        return bool(np.all(np.abs(exits - reference) <= tol * max(1.0, abs(reference))))

    def uniform_rate(self, tol: float = 1e-9) -> float:
        """The common exit rate ``E`` of a uniform CTMDP.

        Raises
        ------
        NonUniformError
            If exit rates differ; the timed-reachability algorithm would
            be unsound on such a model.
        """
        exits = self.exit_rates()
        if len(exits) == 0:
            raise NonUniformError("CTMDP without transitions has no uniform rate")
        reference = float(exits[0])
        if not self.is_uniform(tol):
            spread = (float(exits.min()), float(exits.max()))
            raise NonUniformError(f"CTMDP is not uniform; exit rates span {spread}")
        return reference

    def probability_matrix(self) -> sp.csr_matrix:
        """Row-stochastic ``T x S`` matrix ``P[R, s'] = R(s') / E_R``."""
        exits = self.exit_rates()
        inv = sp.diags(1.0 / exits)
        return sp.csr_matrix(inv @ self.rate_matrix)

    # ------------------------------------------------------------------
    # Derived models
    # ------------------------------------------------------------------
    def induced_ctmc(self, choice: np.ndarray | Sequence[int]):
        """CTMC induced by a stationary deterministic scheduler.

        ``choice[s]`` selects, per state, an index into
        ``transitions_of(s)``.  Absorbing states are kept absorbing.
        """
        from repro.ctmc.model import CTMC  # local import to avoid a cycle

        choice = np.asarray(choice, dtype=np.int64)
        if choice.shape != (self.num_states,):
            raise ModelError("one choice per state required")
        rows = []
        for state in range(self.num_states):
            lo, hi = self.choice_ptr[state], self.choice_ptr[state + 1]
            if lo == hi:
                continue
            if not 0 <= choice[state] < hi - lo:
                raise ModelError(
                    f"choice {choice[state]} out of range for state {state} "
                    f"with {hi - lo} alternatives"
                )
            rows.append((state, int(lo + choice[state])))
        transitions = []
        for state, row in rows:
            entries = self.rate_matrix.getrow(row)
            transitions.extend(
                (state, dst, rate) for dst, rate in zip(entries.indices, entries.data)
            )
        return CTMC.from_transitions(
            self.num_states,
            transitions,
            initial=self.initial,
            state_names=self.state_names,
        )

    def embedded_dtmdp(self):
        """The embedded jump-chain DTMDP.

        States, actions and sources are shared; each rate function
        becomes its branching distribution.  For *uniform* CTMDPs the
        embedded DTMDP together with the Poisson jump clock is a
        complete description of the timed behaviour -- the observation
        the whole timed-reachability algorithm rests on.
        """
        from repro.mdp.model import DTMDP  # local import to avoid a cycle

        return DTMDP(
            num_states=self.num_states,
            sources=self.sources.copy(),
            actions=list(self.labels),
            probabilities=self.probability_matrix(),
            initial=self.initial,
        )

    def memory_bytes(self) -> int:
        """Approximate size of the sparse representation in bytes.

        Counts the rate matrix (data + indices + indptr), the source
        array and the per-state choice pointers -- the analogue of the
        "Mem" column of Table 1.
        """
        m = self.rate_matrix
        return int(
            m.data.nbytes
            + m.indices.nbytes
            + m.indptr.nbytes
            + self.sources.nbytes
            + self.choice_ptr.nbytes
        )

    def statistics(self) -> dict[str, int | float]:
        """Size statistics in the shape of Table 1's model columns."""
        return {
            "states": self.num_states,
            "transitions": self.num_transitions,
            "rate_entries": self.num_rate_entries,
            "max_choices": int(np.diff(self.choice_ptr).max()) if self.num_states else 0,
            "memory_bytes": self.memory_bytes(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CTMDP(states={self.num_states}, transitions={self.num_transitions}, "
            f"rate_entries={self.num_rate_entries}, initial={self.initial})"
        )
