"""The paper's analysis core: CTMDPs, schedulers, timed reachability."""

from repro.core.ctmdp import CTMDP, Transition
from repro.core.reachability import (
    ReachabilityResult,
    timed_reachability,
    unbounded_reachability,
)
from repro.core.expected_time import expected_reachability_time
from repro.core.qualitative import almost_sure_max, almost_sure_min, cannot_reach
from repro.core.until import timed_until
from repro.core.uniformity import uniformize_ctmdp
from repro.core.scheduler import (
    Scheduler,
    StationaryScheduler,
    StepScheduler,
    UniformRandomScheduler,
    greedy_scheduler_from_decisions,
)

__all__ = [
    "CTMDP",
    "Transition",
    "ReachabilityResult",
    "timed_reachability",
    "unbounded_reachability",
    "Scheduler",
    "StationaryScheduler",
    "StepScheduler",
    "UniformRandomScheduler",
    "greedy_scheduler_from_decisions",
    "uniformize_ctmdp",
    "timed_until",
    "expected_reachability_time",
    "almost_sure_max",
    "almost_sure_min",
    "cannot_reach",
]
