"""Schedulers for CTMDPs.

A scheduler (Definition 2 of the paper) resolves the nondeterminism of a
CTMDP: given the time-abstract history, it selects a distribution over
the outgoing transitions of the current state.  The library works with
the class the timed-reachability algorithm optimises over -- randomized
*time-abstract* (the decision may not depend on sojourn times) *history
dependent* schedulers -- and with two practically important subclasses:

* :class:`StationaryScheduler` -- deterministic, memoryless; induces a
  CTMC on the model (used for cross-validation against CTMC analysis);
* :class:`StepScheduler` -- deterministic, step-counting; the optimal
  schedulers produced by Algorithm 1 are of this shape (the decision at
  step ``i`` of the backward recursion depends on the number of jumps
  performed so far).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from repro.core.ctmdp import CTMDP
from repro.errors import SchedulerError

__all__ = [
    "Scheduler",
    "StationaryScheduler",
    "StepScheduler",
    "UniformRandomScheduler",
    "greedy_scheduler_from_decisions",
]


class Scheduler(Protocol):
    """Protocol: map ``(state, step, history)`` to a transition distribution.

    ``history`` is the time-abstract path prefix as a sequence of
    ``(state, action)`` pairs; ``step`` is its length.  The returned
    array holds one probability per transition of ``state`` (in the
    order of ``ctmdp.transitions_of(state)``).
    """

    def distribution(
        self, ctmdp: CTMDP, state: int, step: int, history: Sequence[tuple[int, str]]
    ) -> np.ndarray:
        """Distribution over the outgoing transitions of ``state``."""
        ...  # pragma: no cover - protocol


def _check_state_has_choices(ctmdp: CTMDP, state: int) -> int:
    count = ctmdp.num_choices(state)
    if count == 0:
        raise SchedulerError(f"state {state} has no outgoing transitions to schedule")
    return count


@dataclass(frozen=True)
class StationaryScheduler:
    """Deterministic memoryless scheduler: one fixed choice per state."""

    choices: np.ndarray

    @classmethod
    def from_list(cls, choices: Sequence[int]) -> "StationaryScheduler":
        """Build from a plain list of per-state choice indices."""
        return cls(choices=np.asarray(choices, dtype=np.int64))

    def distribution(
        self, ctmdp: CTMDP, state: int, step: int, history: Sequence[tuple[int, str]]
    ) -> np.ndarray:
        count = _check_state_has_choices(ctmdp, state)
        choice = int(self.choices[state])
        if not 0 <= choice < count:
            raise SchedulerError(
                f"choice {choice} out of range for state {state} with {count} alternatives"
            )
        result = np.zeros(count)
        result[choice] = 1.0
        return result


@dataclass(frozen=True)
class StepScheduler:
    """Deterministic step-dependent scheduler.

    ``decisions[i][s]`` is the transition index chosen in state ``s``
    after ``i`` jumps; pasts beyond the recorded horizon reuse the last
    row (by then the Poisson tail is negligible for the objective the
    scheduler was extracted for).
    """

    decisions: np.ndarray

    def distribution(
        self, ctmdp: CTMDP, state: int, step: int, history: Sequence[tuple[int, str]]
    ) -> np.ndarray:
        count = _check_state_has_choices(ctmdp, state)
        row = min(step, len(self.decisions) - 1)
        choice = int(self.decisions[row][state])
        if choice < 0:
            choice = 0
        if choice >= count:
            raise SchedulerError(
                f"recorded choice {choice} out of range for state {state}"
            )
        result = np.zeros(count)
        result[choice] = 1.0
        return result


@dataclass(frozen=True)
class UniformRandomScheduler:
    """Randomized memoryless scheduler giving every transition equal weight."""

    def distribution(
        self, ctmdp: CTMDP, state: int, step: int, history: Sequence[tuple[int, str]]
    ) -> np.ndarray:
        count = _check_state_has_choices(ctmdp, state)
        return np.full(count, 1.0 / count)


def greedy_scheduler_from_decisions(decisions: np.ndarray) -> StepScheduler:
    """Wrap Algorithm 1's recorded decisions into a :class:`StepScheduler`.

    Algorithm 1 writes the decision of backward index ``i`` into row
    ``i - 1``; forward execution after ``j`` jumps is governed by
    backward index ``j + 1``, i.e. row ``j`` -- so the recorded array can
    be used directly by :class:`StepScheduler`.

    Accepts both the dense int32 matrix and the compressed store of
    ``record_scheduler=True`` solves: anything exposing ``len()`` and
    ``decisions[row][state]`` passes through without densification
    (:class:`~repro.policy.store.CompressedDecisions` does), so wrapping
    a 62k-step policy stays cheap.
    """
    if isinstance(decisions, np.ndarray) or not hasattr(decisions, "row"):
        decisions = np.asarray(decisions, dtype=np.int32)
    return StepScheduler(decisions=decisions)
