"""Interchange formats: ETMCC-style .tra/.lab files and GraphViz DOT."""

from repro.io.dot import ctmc_to_dot, ctmdp_to_dot, imc_to_dot, write_dot
from repro.io.json_io import (
    ctmc_from_json,
    ctmc_to_json,
    ctmdp_from_json,
    ctmdp_to_json,
    imc_from_json,
    imc_to_json,
    load_model,
    save_model,
)
from repro.io.tra import (
    read_ctmc_tra,
    read_ctmdp_tra,
    read_labels,
    write_ctmc_tra,
    write_ctmdp_tra,
    write_labels,
)

__all__ = [
    "ctmc_to_dot",
    "ctmdp_to_dot",
    "imc_to_dot",
    "write_dot",
    "ctmc_from_json",
    "ctmc_to_json",
    "ctmdp_from_json",
    "ctmdp_to_json",
    "imc_from_json",
    "imc_to_json",
    "load_model",
    "save_model",
    "read_ctmc_tra",
    "read_ctmdp_tra",
    "read_labels",
    "write_ctmc_tra",
    "write_ctmdp_tra",
    "write_labels",
]
