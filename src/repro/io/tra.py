"""ETMCC/MRMC-style ``.tra`` / ``.lab`` interchange files.

The paper's implementation lives inside the ETMCC model checker, whose
on-disk format stores transitions as whitespace-separated triples under
a ``STATES``/``TRANSITIONS`` header.  We support that format for CTMCs
and a natural extension for CTMDPs (one line per rate entry, carrying
the transition index and action label), plus the companion ``.lab``
format mapping states to atomic propositions.  Round-tripping through
these files is covered by the test suite.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, TextIO

import numpy as np

from repro.core.ctmdp import CTMDP
from repro.ctmc.model import CTMC
from repro.errors import ModelError

__all__ = [
    "write_ctmc_tra",
    "read_ctmc_tra",
    "write_ctmdp_tra",
    "read_ctmdp_tra",
    "write_labels",
    "read_labels",
]


def write_ctmc_tra(ctmc: CTMC, path: str | Path) -> None:
    """Write a CTMC in ETMCC ``.tra`` format (1-based state indices)."""
    with open(path, "w", encoding="ascii") as handle:
        handle.write(f"STATES {ctmc.num_states}\n")
        handle.write(f"TRANSITIONS {ctmc.num_transitions}\n")
        matrix = ctmc.rates.tocoo()
        for src, dst, rate in zip(matrix.row, matrix.col, matrix.data):
            handle.write(f"{src + 1} {dst + 1} {float(rate)!r}\n")


def read_ctmc_tra(path: str | Path, initial: int = 0) -> CTMC:
    """Read a CTMC from ETMCC ``.tra`` format."""
    with open(path, "r", encoding="ascii") as handle:
        num_states = _expect_header(handle, "STATES")
        num_transitions = _expect_header(handle, "TRANSITIONS")
        transitions = []
        for line in handle:
            line = line.strip()
            if not line:
                continue
            src, dst, rate = line.split()
            transitions.append((int(src) - 1, int(dst) - 1, float(rate)))
    if len(transitions) != num_transitions:
        raise ModelError(
            f"header announced {num_transitions} transitions, found {len(transitions)}"
        )
    return CTMC.from_transitions(num_states, transitions, initial=initial)


def write_ctmdp_tra(ctmdp: CTMDP, path: str | Path) -> None:
    """Write a CTMDP: ``transition-index action source target rate`` lines."""
    with open(path, "w", encoding="ascii") as handle:
        handle.write(f"STATES {ctmdp.num_states}\n")
        handle.write(f"CHOICES {ctmdp.num_transitions}\n")
        handle.write(f"INITIAL {ctmdp.initial + 1}\n")
        matrix = ctmdp.rate_matrix
        for row in range(ctmdp.num_transitions):
            src = int(ctmdp.sources[row])
            action = ctmdp.labels[row]
            lo, hi = matrix.indptr[row], matrix.indptr[row + 1]
            for dst, rate in zip(matrix.indices[lo:hi], matrix.data[lo:hi]):
                handle.write(f"{row + 1} {action} {src + 1} {int(dst) + 1} {float(rate)!r}\n")


def read_ctmdp_tra(path: str | Path) -> CTMDP:
    """Read a CTMDP written by :func:`write_ctmdp_tra`."""
    with open(path, "r", encoding="ascii") as handle:
        num_states = _expect_header(handle, "STATES")
        num_choices = _expect_header(handle, "CHOICES")
        initial = _expect_header(handle, "INITIAL") - 1
        rows: dict[int, tuple[int, str, dict[int, float]]] = {}
        for line in handle:
            line = line.strip()
            if not line:
                continue
            row_str, action, src, dst, rate = line.split()
            row = int(row_str) - 1
            entry = rows.setdefault(row, (int(src) - 1, action, {}))
            if entry[0] != int(src) - 1 or entry[1] != action:
                raise ModelError(f"inconsistent transition metadata in row {row + 1}")
            entry[2][int(dst) - 1] = float(rate)
    if len(rows) != num_choices:
        raise ModelError(f"header announced {num_choices} choices, found {len(rows)}")
    transitions = [rows[row] for row in sorted(rows)]
    return CTMDP.from_transitions(num_states, transitions, initial=initial)


def write_labels(mask: np.ndarray, proposition: str, path: str | Path) -> None:
    """Write a boolean state mask as a ``.lab`` file."""
    with open(path, "w", encoding="ascii") as handle:
        handle.write("#DECLARATION\n")
        handle.write(f"{proposition}\n")
        handle.write("#END\n")
        for state, flag in enumerate(mask):
            if flag:
                handle.write(f"{state + 1} {proposition}\n")


def read_labels(path: str | Path, num_states: int) -> dict[str, np.ndarray]:
    """Read a ``.lab`` file into per-proposition boolean masks."""
    masks: dict[str, np.ndarray] = {}
    with open(path, "r", encoding="ascii") as handle:
        line = handle.readline().strip()
        if line != "#DECLARATION":
            raise ModelError("missing #DECLARATION header")
        for line in handle:
            line = line.strip()
            if line == "#END":
                break
            masks[line] = np.zeros(num_states, dtype=bool)
        else:
            raise ModelError("missing #END marker")
        for line in handle:
            line = line.strip()
            if not line:
                continue
            state_str, *props = line.split()
            state = int(state_str) - 1
            if not 0 <= state < num_states:
                raise ModelError(f"labelled state {state + 1} out of range")
            for prop in props:
                if prop not in masks:
                    raise ModelError(f"undeclared proposition {prop!r}")
                masks[prop][state] = True
    return masks


def _expect_header(handle: TextIO, keyword: str) -> int:
    line = handle.readline().strip()
    parts = line.split()
    if len(parts) != 2 or parts[0] != keyword:
        raise ModelError(f"expected '{keyword} <n>' header, got {line!r}")
    return int(parts[1])
