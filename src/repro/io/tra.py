"""ETMCC/MRMC-style ``.tra`` / ``.lab`` interchange files.

The paper's implementation lives inside the ETMCC model checker, whose
on-disk format stores transitions as whitespace-separated triples under
a ``STATES``/``TRANSITIONS`` header.  We support that format for CTMCs
and a natural extension for CTMDPs (one line per rate entry, carrying
the transition index and action label), plus the companion ``.lab``
format mapping states to atomic propositions.  Round-tripping through
these files is covered by the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import TextIO

import numpy as np

from repro.core.ctmdp import CTMDP
from repro.ctmc.model import CTMC
from repro.errors import ModelError

__all__ = [
    "TraScan",
    "scan_tra",
    "write_ctmc_tra",
    "read_ctmc_tra",
    "write_ctmdp_tra",
    "read_ctmdp_tra",
    "write_labels",
    "read_labels",
]


@dataclass(frozen=True)
class TraScan:
    """The raw content of a ``.tra`` file, before any validation.

    The scanner is deliberately lenient about *values* (NaN, infinite or
    negative rates and out-of-range indices are recorded, not rejected)
    while strict about *shape* (headers and per-line field counts must
    parse).  The strict readers and the linter both build on this: the
    readers validate and refuse, the linter diagnoses.

    Attributes
    ----------
    kind:
        ``"ctmc"`` (``TRANSITIONS`` header) or ``"ctmdp"`` (``CHOICES``).
    num_states:
        Declared state count.
    declared:
        Declared transition (CTMC) or choice (CTMDP) count.
    initial:
        Declared initial state (CTMDPs; ``0`` for CTMCs), 0-based.
    ctmc_entries:
        CTMC lines as ``(source, target, rate)``, 0-based.
    ctmdp_entries:
        CTMDP lines as ``(row, action, source, target, rate)``, 0-based.
    """

    kind: str
    num_states: int
    declared: int
    initial: int = 0
    ctmc_entries: list[tuple[int, int, float]] = field(default_factory=list)
    ctmdp_entries: list[tuple[int, str, int, int, float]] = field(default_factory=list)


def _parse_rate(token: str, line: str) -> float:
    try:
        return float(token)
    except ValueError:
        raise ModelError(f"unparseable rate {token!r} in line {line!r}") from None


def _parse_index(token: str, line: str) -> int:
    try:
        return int(token) - 1
    except ValueError:
        raise ModelError(f"unparseable state index {token!r} in line {line!r}") from None


def scan_tra(path: str | Path) -> TraScan:
    """Read a ``.tra`` file into raw records, sniffing CTMC vs CTMDP.

    Raises
    ------
    ModelError
        On malformed headers or lines (wrong field counts, unparseable
        numbers).  Bad *values* are preserved for the caller to judge.
    """
    with open(path, "r", encoding="ascii") as handle:
        num_states = _expect_header(handle, "STATES")
        second = handle.readline().strip()
        parts = second.split()
        if len(parts) != 2 or parts[0] not in ("TRANSITIONS", "CHOICES"):
            raise ModelError(
                f"expected 'TRANSITIONS <n>' or 'CHOICES <n>' header, got {second!r}"
            )
        declared = int(parts[1])
        if parts[0] == "TRANSITIONS":
            ctmc_entries: list[tuple[int, int, float]] = []
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                fields = line.split()
                if len(fields) != 3:
                    raise ModelError(f"expected 'src dst rate', got {line!r}")
                src, dst, rate = fields
                ctmc_entries.append(
                    (
                        _parse_index(src, line),
                        _parse_index(dst, line),
                        _parse_rate(rate, line),
                    )
                )
            return TraScan(
                kind="ctmc",
                num_states=num_states,
                declared=declared,
                ctmc_entries=ctmc_entries,
            )
        initial = _expect_header(handle, "INITIAL") - 1
        ctmdp_entries: list[tuple[int, str, int, int, float]] = []
        for line in handle:
            line = line.strip()
            if not line:
                continue
            fields = line.split()
            if len(fields) != 5:
                raise ModelError(
                    f"expected 'row action src dst rate', got {line!r}"
                )
            row, action, src, dst, rate = fields
            ctmdp_entries.append(
                (
                    _parse_index(row, line),
                    action,
                    _parse_index(src, line),
                    _parse_index(dst, line),
                    _parse_rate(rate, line),
                )
            )
        return TraScan(
            kind="ctmdp",
            num_states=num_states,
            declared=declared,
            initial=initial,
            ctmdp_entries=ctmdp_entries,
        )


def write_ctmc_tra(ctmc: CTMC, path: str | Path) -> None:
    """Write a CTMC in ETMCC ``.tra`` format (1-based state indices)."""
    with open(path, "w", encoding="ascii") as handle:
        handle.write(f"STATES {ctmc.num_states}\n")
        handle.write(f"TRANSITIONS {ctmc.num_transitions}\n")
        matrix = ctmc.rates.tocoo()
        for src, dst, rate in zip(matrix.row, matrix.col, matrix.data):
            handle.write(f"{src + 1} {dst + 1} {float(rate)!r}\n")


def read_ctmc_tra(path: str | Path, initial: int = 0) -> CTMC:
    """Read a CTMC from ETMCC ``.tra`` format.

    The loader refuses exactly what the linter would flag as an error:
    NaN, infinite, negative or zero rates and state indices outside the
    declared range.
    """
    scan = scan_tra(path)
    if scan.kind != "ctmc":
        raise ModelError(f"{path} is a {scan.kind} file, expected a CTMC")
    if len(scan.ctmc_entries) != scan.declared:
        raise ModelError(
            f"header announced {scan.declared} transitions, "
            f"found {len(scan.ctmc_entries)}"
        )
    for src, dst, rate in scan.ctmc_entries:
        if not (math.isfinite(rate) and rate > 0.0):
            raise ModelError(
                f"rate {rate!r} on transition {src + 1} -> {dst + 1} is not "
                "a positive finite number"
            )
    return CTMC.from_transitions(scan.num_states, scan.ctmc_entries, initial=initial)


def write_ctmdp_tra(ctmdp: CTMDP, path: str | Path) -> None:
    """Write a CTMDP: ``transition-index action source target rate`` lines."""
    with open(path, "w", encoding="ascii") as handle:
        handle.write(f"STATES {ctmdp.num_states}\n")
        handle.write(f"CHOICES {ctmdp.num_transitions}\n")
        handle.write(f"INITIAL {ctmdp.initial + 1}\n")
        matrix = ctmdp.rate_matrix
        for row in range(ctmdp.num_transitions):
            src = int(ctmdp.sources[row])
            action = ctmdp.labels[row]
            lo, hi = matrix.indptr[row], matrix.indptr[row + 1]
            for dst, rate in zip(matrix.indices[lo:hi], matrix.data[lo:hi]):
                handle.write(f"{row + 1} {action} {src + 1} {int(dst) + 1} {float(rate)!r}\n")


def read_ctmdp_tra(path: str | Path) -> CTMDP:
    """Read a CTMDP written by :func:`write_ctmdp_tra`.

    Like :func:`read_ctmc_tra`, the loader refuses non-finite and
    non-positive rates up front; range checks are enforced by the
    :class:`~repro.core.ctmdp.CTMDP` constructor.
    """
    scan = scan_tra(path)
    if scan.kind != "ctmdp":
        raise ModelError(f"{path} is a {scan.kind} file, expected a CTMDP")
    rows: dict[int, tuple[int, str, dict[int, float]]] = {}
    for row, action, src, dst, rate in scan.ctmdp_entries:
        if not (math.isfinite(rate) and rate > 0.0):
            raise ModelError(
                f"rate {rate!r} in row {row + 1} is not a positive finite number"
            )
        entry = rows.setdefault(row, (src, action, {}))
        if entry[0] != src or entry[1] != action:
            raise ModelError(f"inconsistent transition metadata in row {row + 1}")
        entry[2][dst] = rate
    if len(rows) != scan.declared:
        raise ModelError(
            f"header announced {scan.declared} choices, found {len(rows)}"
        )
    transitions = [rows[row] for row in sorted(rows)]
    return CTMDP.from_transitions(scan.num_states, transitions, initial=scan.initial)


def write_labels(mask: np.ndarray, proposition: str, path: str | Path) -> None:
    """Write a boolean state mask as a ``.lab`` file."""
    with open(path, "w", encoding="ascii") as handle:
        handle.write("#DECLARATION\n")
        handle.write(f"{proposition}\n")
        handle.write("#END\n")
        for state, flag in enumerate(mask):
            if flag:
                handle.write(f"{state + 1} {proposition}\n")


def read_labels(path: str | Path, num_states: int) -> dict[str, np.ndarray]:
    """Read a ``.lab`` file into per-proposition boolean masks."""
    masks: dict[str, np.ndarray] = {}
    with open(path, "r", encoding="ascii") as handle:
        line = handle.readline().strip()
        if line != "#DECLARATION":
            raise ModelError("missing #DECLARATION header")
        for line in handle:
            line = line.strip()
            if line == "#END":
                break
            masks[line] = np.zeros(num_states, dtype=bool)
        else:
            raise ModelError("missing #END marker")
        for line in handle:
            line = line.strip()
            if not line:
                continue
            state_str, *props = line.split()
            state = int(state_str) - 1
            if not 0 <= state < num_states:
                raise ModelError(f"labelled state {state + 1} out of range")
            for prop in props:
                if prop not in masks:
                    raise ModelError(f"undeclared proposition {prop!r}")
                masks[prop][state] = True
    return masks


def _expect_header(handle: TextIO, keyword: str) -> int:
    line = handle.readline().strip()
    parts = line.split()
    if len(parts) != 2 or parts[0] != keyword:
        raise ModelError(f"expected '{keyword} <n>' header, got {line!r}")
    return int(parts[1])
