"""GraphViz DOT export for IMCs, CTMCs and CTMDPs.

Intended for debugging and documentation: solid edges are interactive
transitions (dashed for ``tau``), dotted edges are Markov transitions
labelled with their rates; CTMDP hyperedges are rendered through small
decision nodes, one per rate function.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.ctmdp import CTMDP
from repro.ctmc.model import CTMC
from repro.imc.model import IMC, TAU

__all__ = ["imc_to_dot", "ctmc_to_dot", "ctmdp_to_dot", "write_dot"]


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def imc_to_dot(imc: IMC, name: str = "imc") -> str:
    """Render an IMC as a DOT digraph string."""
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    for state in range(imc.num_states):
        shape = "doublecircle" if state == imc.initial else "circle"
        lines.append(f'  s{state} [label="{_escape(imc.name_of(state))}", shape={shape}];')
    for src, action, dst in imc.interactive:
        style = "dashed" if action == TAU else "solid"
        lines.append(f'  s{src} -> s{dst} [label="{_escape(action)}", style={style}];')
    for src, rate, dst in imc.markov:
        lines.append(f'  s{src} -> s{dst} [label="{rate:g}", style=dotted];')
    lines.append("}")
    return "\n".join(lines)


def ctmc_to_dot(ctmc: CTMC, name: str = "ctmc") -> str:
    """Render a CTMC as a DOT digraph string."""
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    for state in range(ctmc.num_states):
        label = ctmc.state_names[state] if ctmc.state_names else str(state)
        shape = "doublecircle" if state == ctmc.initial else "circle"
        lines.append(f'  s{state} [label="{_escape(label)}", shape={shape}];')
    matrix = ctmc.rates.tocoo()
    for src, dst, rate in zip(matrix.row, matrix.col, matrix.data):
        lines.append(f'  s{src} -> s{dst} [label="{rate:g}"];')
    lines.append("}")
    return "\n".join(lines)


def ctmdp_to_dot(ctmdp: CTMDP, name: str = "ctmdp") -> str:
    """Render a CTMDP as a DOT digraph with explicit decision nodes."""
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    for state in range(ctmdp.num_states):
        label = ctmdp.state_names[state] if ctmdp.state_names else str(state)
        shape = "doublecircle" if state == ctmdp.initial else "circle"
        lines.append(f'  s{state} [label="{_escape(label)}", shape={shape}];')
    matrix = ctmdp.rate_matrix
    for row in range(ctmdp.num_transitions):
        src = int(ctmdp.sources[row])
        action = ctmdp.labels[row]
        lines.append(f'  d{row} [label="{_escape(action)}", shape=point];')
        lines.append(f"  s{src} -> d{row} [arrowhead=none];")
        lo, hi = matrix.indptr[row], matrix.indptr[row + 1]
        for dst, rate in zip(matrix.indices[lo:hi], matrix.data[lo:hi]):
            lines.append(f'  d{row} -> s{int(dst)} [label="{rate:g}"];')
    lines.append("}")
    return "\n".join(lines)


def write_dot(text: str, path: str | Path) -> None:
    """Write a DOT string to a file."""
    Path(path).write_text(text + "\n", encoding="ascii")
