"""JSON persistence for IMCs, CTMCs and CTMDPs.

Generated state spaces (a compositional FTWC build, a large direct
model) are worth caching; this module provides a versioned, schema-
checked JSON round trip for all three model classes.  The format stores
transitions explicitly (not matrices), so files are diff-able and
portable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.ctmdp import CTMDP
from repro.ctmc.model import CTMC
from repro.errors import ModelError
from repro.imc.model import IMC

__all__ = [
    "imc_to_json",
    "imc_from_json",
    "ctmc_to_json",
    "ctmc_from_json",
    "ctmdp_to_json",
    "ctmdp_from_json",
    "save_model",
    "load_model",
]

_FORMAT_VERSION = 1


def _header(kind: str) -> dict[str, Any]:
    return {"format": "repro-model", "version": _FORMAT_VERSION, "kind": kind}


def _check_header(data: dict[str, Any], kind: str) -> None:
    if data.get("format") != "repro-model":
        raise ModelError("not a repro model document")
    if data.get("version") != _FORMAT_VERSION:
        raise ModelError(f"unsupported format version {data.get('version')!r}")
    if data.get("kind") != kind:
        raise ModelError(f"expected kind {kind!r}, found {data.get('kind')!r}")


def imc_to_json(imc: IMC) -> dict[str, Any]:
    """Serialise an IMC to a JSON-compatible dictionary."""
    document = _header("imc")
    document.update(
        {
            "num_states": imc.num_states,
            "initial": imc.initial,
            "interactive": [[s, a, t] for s, a, t in imc.interactive],
            "markov": [[s, r, t] for s, r, t in imc.markov],
        }
    )
    if imc.state_names is not None:
        document["state_names"] = list(imc.state_names)
    return document


def imc_from_json(data: dict[str, Any]) -> IMC:
    """Deserialise an IMC."""
    _check_header(data, "imc")
    return IMC(
        num_states=int(data["num_states"]),
        interactive=[(int(s), str(a), int(t)) for s, a, t in data["interactive"]],
        markov=[(int(s), float(r), int(t)) for s, r, t in data["markov"]],
        initial=int(data["initial"]),
        state_names=list(data["state_names"]) if "state_names" in data else None,
    )


def ctmc_to_json(ctmc: CTMC) -> dict[str, Any]:
    """Serialise a CTMC."""
    document = _header("ctmc")
    matrix = ctmc.rates.tocoo()
    document.update(
        {
            "num_states": ctmc.num_states,
            "initial": ctmc.initial,
            "transitions": [
                [int(s), int(t), float(r)]
                for s, t, r in zip(matrix.row, matrix.col, matrix.data)
            ],
        }
    )
    if ctmc.state_names is not None:
        document["state_names"] = list(ctmc.state_names)
    return document


def ctmc_from_json(data: dict[str, Any]) -> CTMC:
    """Deserialise a CTMC."""
    _check_header(data, "ctmc")
    return CTMC.from_transitions(
        int(data["num_states"]),
        [(int(s), int(t), float(r)) for s, t, r in data["transitions"]],
        initial=int(data["initial"]),
        state_names=data.get("state_names"),
    )


def ctmdp_to_json(ctmdp: CTMDP) -> dict[str, Any]:
    """Serialise a CTMDP (one entry per transition/rate function)."""
    document = _header("ctmdp")
    matrix = ctmdp.rate_matrix
    transitions = []
    for row in range(ctmdp.num_transitions):
        lo, hi = matrix.indptr[row], matrix.indptr[row + 1]
        transitions.append(
            {
                "source": int(ctmdp.sources[row]),
                "action": ctmdp.labels[row],
                "rates": {
                    str(int(t)): float(r)
                    for t, r in zip(matrix.indices[lo:hi], matrix.data[lo:hi])
                },
            }
        )
    document.update(
        {
            "num_states": ctmdp.num_states,
            "initial": ctmdp.initial,
            "transitions": transitions,
        }
    )
    if ctmdp.state_names is not None:
        document["state_names"] = list(ctmdp.state_names)
    return document


def ctmdp_from_json(data: dict[str, Any]) -> CTMDP:
    """Deserialise a CTMDP."""
    _check_header(data, "ctmdp")
    return CTMDP.from_transitions(
        int(data["num_states"]),
        [
            (
                int(entry["source"]),
                str(entry["action"]),
                {int(t): float(r) for t, r in entry["rates"].items()},
            )
            for entry in data["transitions"]
        ],
        initial=int(data["initial"]),
        state_names=data.get("state_names"),
    )


_SERIALIZERS = {
    IMC: ("imc", imc_to_json),
    CTMC: ("ctmc", ctmc_to_json),
    CTMDP: ("ctmdp", ctmdp_to_json),
}
_DESERIALIZERS = {
    "imc": imc_from_json,
    "ctmc": ctmc_from_json,
    "ctmdp": ctmdp_from_json,
}


def save_model(model: IMC | CTMC | CTMDP, path: str | Path) -> None:
    """Write any supported model to a JSON file."""
    for cls, (_kind, serializer) in _SERIALIZERS.items():
        if isinstance(model, cls):
            Path(path).write_text(
                json.dumps(serializer(model), indent=1), encoding="utf-8"
            )
            return
    raise ModelError(f"cannot serialise objects of type {type(model).__name__}")


def load_model(path: str | Path) -> IMC | CTMC | CTMDP:
    """Read a model written by :func:`save_model` (kind auto-detected)."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    kind = data.get("kind")
    if kind not in _DESERIALIZERS:
        raise ModelError(f"unknown model kind {kind!r}")
    return _DESERIALIZERS[kind](data)
