"""Monte-Carlo simulation of CTMCs and scheduled CTMDPs."""

from repro.sim.imc_sim import (
    Resolver,
    first_resolver,
    random_resolver,
    simulate_imc_reachability,
)
from repro.sim.smc import SPRTResult, sprt, sprt_ctmc_reachability, sprt_ctmdp_reachability
from repro.sim.simulate import (
    SimulationEstimate,
    simulate_ctmc_reachability,
    simulate_ctmdp_reachability,
)

__all__ = [
    "SPRTResult",
    "sprt",
    "sprt_ctmc_reachability",
    "sprt_ctmdp_reachability",
    "Resolver",
    "first_resolver",
    "random_resolver",
    "simulate_imc_reachability",
    "SimulationEstimate",
    "simulate_ctmc_reachability",
    "simulate_ctmdp_reachability",
]
