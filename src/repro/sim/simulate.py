"""Monte-Carlo simulation of CTMCs and scheduled CTMDPs.

Discrete-event simulation provides an independent implementation of the
timed semantics: the statistical estimates obtained here must bracket
the analytic answers of the uniformization-based algorithms.  The test
suite uses this to cross-validate Algorithm 1 (any scheduler's simulated
reachability probability must fall between the ``min`` and ``max``
analytic values) and the CTMC transient solver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ctmdp import CTMDP
from repro.core.scheduler import Scheduler
from repro.ctmc.model import CTMC
from repro.errors import ModelError

__all__ = ["SimulationEstimate", "simulate_ctmc_reachability", "simulate_ctmdp_reachability"]


@dataclass(frozen=True)
class SimulationEstimate:
    """A Monte-Carlo estimate with its standard error.

    Attributes
    ----------
    probability:
        Fraction of runs that reached the goal within the bound.
    standard_error:
        Binomial standard error of the estimate.
    runs:
        Number of simulated trajectories.
    """

    probability: float
    standard_error: float
    runs: int

    def confidence_interval(self, z: float = 3.0) -> tuple[float, float]:
        """``z``-sigma confidence interval, clipped to ``[0, 1]``."""
        low = max(0.0, self.probability - z * self.standard_error)
        high = min(1.0, self.probability + z * self.standard_error)
        return low, high


def _estimate(hits: int, runs: int) -> SimulationEstimate:
    p = hits / runs
    se = float(np.sqrt(max(p * (1.0 - p), 1.0 / runs) / runs))
    return SimulationEstimate(probability=p, standard_error=se, runs=runs)


def simulate_ctmc_reachability(
    ctmc: CTMC,
    goal: set[int],
    t: float,
    runs: int = 10_000,
    rng: np.random.Generator | None = None,
    start: int | None = None,
) -> SimulationEstimate:
    """Estimate ``Pr(start |= diamond^{<=t} goal)`` by simulation.

    Self-loop rates are simulated faithfully (they prolong nothing
    observable but consume events), so uniformized chains may be passed
    directly.
    """
    if runs <= 0:
        raise ModelError("need at least one simulation run")
    rng = rng or np.random.default_rng()
    state0 = ctmc.initial if start is None else start
    hits = 0
    successor_cache: dict[int, tuple[np.ndarray, np.ndarray, float]] = {}

    def successors(state: int) -> tuple[np.ndarray, np.ndarray, float]:
        if state not in successor_cache:
            row = ctmc.rates.getrow(state)
            total = float(row.data.sum())
            probs = row.data / total if total > 0.0 else row.data
            successor_cache[state] = (row.indices, probs, total)
        return successor_cache[state]

    for _ in range(runs):
        state = state0
        clock = 0.0
        while True:
            if state in goal:
                hits += 1
                break
            targets, probs, total = successors(state)
            if total <= 0.0:
                break  # absorbing, goal unreachable
            clock += rng.exponential(1.0 / total)
            if clock > t:
                break
            state = int(targets[rng.choice(len(targets), p=probs)]) if len(targets) > 1 else int(targets[0])
    return _estimate(hits, runs)


def simulate_ctmdp_reachability(
    ctmdp: CTMDP,
    scheduler: Scheduler,
    goal: set[int],
    t: float,
    runs: int = 10_000,
    rng: np.random.Generator | None = None,
    start: int | None = None,
) -> SimulationEstimate:
    """Estimate timed reachability of a CTMDP under a given scheduler.

    The scheduler picks a transition upon every arrival in a state; the
    sojourn is then exponential with that transition's exit rate and the
    successor is drawn from its branching distribution -- exactly the
    behavioural reading of Definition 1.
    """
    if runs <= 0:
        raise ModelError("need at least one simulation run")
    rng = rng or np.random.default_rng()
    state0 = ctmdp.initial if start is None else start
    hits = 0

    row_cache: dict[int, tuple[np.ndarray, np.ndarray, float]] = {}

    def row_data(row: int) -> tuple[np.ndarray, np.ndarray, float]:
        if row not in row_cache:
            entries = ctmdp.rate_matrix.getrow(row)
            total = float(entries.data.sum())
            row_cache[row] = (entries.indices, entries.data / total, total)
        return row_cache[row]

    for _ in range(runs):
        state = state0
        clock = 0.0
        history: list[tuple[int, str]] = []
        while True:
            if state in goal:
                hits += 1
                break
            lo, hi = ctmdp.choice_ptr[state], ctmdp.choice_ptr[state + 1]
            if lo == hi:
                break  # absorbing
            dist = scheduler.distribution(ctmdp, state, len(history), history)
            if len(dist) != hi - lo or abs(dist.sum() - 1.0) > 1e-9:
                raise ModelError("scheduler returned an invalid distribution")
            pick = int(rng.choice(hi - lo, p=dist))
            row = int(lo + pick)
            targets, probs, total = row_data(row)
            clock += rng.exponential(1.0 / total)
            if clock > t:
                break
            history.append((state, ctmdp.labels[row]))
            state = int(targets[rng.choice(len(targets), p=probs)]) if len(targets) > 1 else int(targets[0])
    return _estimate(hits, runs)
