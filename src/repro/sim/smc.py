"""Statistical model checking: sequential hypothesis testing.

For models too large to solve numerically, Wald's sequential probability
ratio test (SPRT) decides hypotheses of the form

    H0:  p >= theta + delta      versus      H1:  p <= theta - delta

about a reachability probability ``p`` by simulating one trajectory at a
time and stopping as soon as the accumulated likelihood ratio crosses
the error thresholds derived from the prescribed type-I/II error bounds
``alpha`` and ``beta``.  The expected sample size is far below the fixed
size a Chernoff bound would dictate when ``p`` is far from ``theta``.

Works with any Bernoulli trajectory source; convenience wrappers run it
against the CTMC simulator and the scheduled-CTMDP simulator from
:mod:`repro.sim.simulate`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.ctmdp import CTMDP
from repro.core.scheduler import Scheduler
from repro.ctmc.model import CTMC
from repro.errors import ModelError

__all__ = ["SPRTResult", "sprt", "sprt_ctmc_reachability", "sprt_ctmdp_reachability"]


@dataclass(frozen=True)
class SPRTResult:
    """Outcome of a sequential probability ratio test.

    Attributes
    ----------
    accept_h0:
        ``True`` -- evidence for ``p >= theta + delta``; ``False`` --
        evidence for ``p <= theta - delta``.
    samples:
        Trajectories consumed.
    successes:
        Goal-hitting trajectories among them.
    """

    accept_h0: bool
    samples: int
    successes: int

    @property
    def estimate(self) -> float:
        """Crude point estimate (successes / samples)."""
        return self.successes / self.samples if self.samples else float("nan")


def sprt(
    sample: Callable[[], bool],
    theta: float,
    delta: float = 0.01,
    alpha: float = 0.05,
    beta: float = 0.05,
    max_samples: int = 1_000_000,
) -> SPRTResult:
    """Wald's SPRT for a Bernoulli parameter against threshold ``theta``.

    Parameters
    ----------
    sample:
        Draws one Bernoulli observation (one simulated trajectory).
    theta:
        The threshold of the query ``P >= theta``.
    delta:
        Half-width of the indifference region; results are only
        guaranteed for true values outside ``(theta - delta,
        theta + delta)``.
    alpha, beta:
        Bounds on false-rejection and false-acceptance probability.
    max_samples:
        Hard cap; reaching it raises ``ModelError`` (the test is
        inconclusive -- typically the true value lies inside the
        indifference region).
    """
    if not 0.0 < theta < 1.0:
        raise ModelError("theta must lie strictly between 0 and 1")
    if delta <= 0.0 or theta - delta <= 0.0 or theta + delta >= 1.0:
        raise ModelError("indifference region must fit inside (0, 1)")
    if not (0.0 < alpha < 1.0 and 0.0 < beta < 1.0):
        raise ModelError("error bounds must lie in (0, 1)")

    p0 = theta + delta  # H0
    p1 = theta - delta  # H1
    log_accept_h1 = math.log((1.0 - beta) / alpha)
    log_accept_h0 = math.log(beta / (1.0 - alpha))
    step_success = math.log(p1 / p0)
    step_failure = math.log((1.0 - p1) / (1.0 - p0))

    ratio = 0.0
    successes = 0
    for n in range(1, max_samples + 1):
        if sample():
            successes += 1
            ratio += step_success
        else:
            ratio += step_failure
        if ratio >= log_accept_h1:
            return SPRTResult(accept_h0=False, samples=n, successes=successes)
        if ratio <= log_accept_h0:
            return SPRTResult(accept_h0=True, samples=n, successes=successes)
    raise ModelError(
        f"SPRT inconclusive after {max_samples} samples; the true probability "
        "likely lies inside the indifference region -- widen delta"
    )


def _ctmc_trajectory_sampler(
    ctmc: CTMC, goal: set[int], t: float, rng: np.random.Generator
) -> Callable[[], bool]:
    from repro.sim.simulate import simulate_ctmc_reachability

    def sample() -> bool:
        return simulate_ctmc_reachability(ctmc, goal, t, runs=1, rng=rng).probability > 0.5

    return sample


def sprt_ctmc_reachability(
    ctmc: CTMC,
    goal: set[int],
    t: float,
    theta: float,
    delta: float = 0.01,
    alpha: float = 0.05,
    beta: float = 0.05,
    rng: np.random.Generator | None = None,
    max_samples: int = 1_000_000,
) -> SPRTResult:
    """Test ``Pr(reach goal within t) >= theta`` on a CTMC by SPRT."""
    rng = rng or np.random.default_rng()
    return sprt(
        _ctmc_trajectory_sampler(ctmc, goal, t, rng),
        theta,
        delta=delta,
        alpha=alpha,
        beta=beta,
        max_samples=max_samples,
    )


def sprt_ctmdp_reachability(
    ctmdp: CTMDP,
    scheduler: Scheduler,
    goal: set[int],
    t: float,
    theta: float,
    delta: float = 0.01,
    alpha: float = 0.05,
    beta: float = 0.05,
    rng: np.random.Generator | None = None,
    max_samples: int = 1_000_000,
) -> SPRTResult:
    """Test timed reachability of a scheduled CTMDP by SPRT.

    Note the result is relative to the supplied scheduler; statistical
    verification of the ``sup``/``inf`` over schedulers would require
    scheduler optimisation, for which the analytic Algorithm 1 exists.
    """
    from repro.sim.simulate import simulate_ctmdp_reachability

    rng = rng or np.random.default_rng()

    def sample() -> bool:
        return (
            simulate_ctmdp_reachability(ctmdp, scheduler, goal, t, runs=1, rng=rng).probability
            > 0.5
        )

    return sprt(
        sample, theta, delta=delta, alpha=alpha, beta=beta, max_samples=max_samples
    )
