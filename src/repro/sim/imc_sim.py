"""Direct simulation of closed IMCs.

This is an *independent* implementation of the closed-system semantics
of Section 2 -- urgency (interactive transitions preempt Markov
transitions and take zero time), races between Markov transitions, and
nondeterminism resolved by an explicit policy -- used to cross-validate
the strictly-alternating transformation: simulated reachability
probabilities of the IMC must fall between the ``inf`` and ``sup``
values computed on the transformed CTMDP (Theorem 1), and must match
them exactly when the resolution policy mirrors an extracted scheduler.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from repro.errors import ModelError
from repro.imc.model import IMC
from repro.sim.simulate import SimulationEstimate, _estimate

__all__ = ["Resolver", "random_resolver", "first_resolver", "simulate_imc_reachability"]

#: A resolution policy: given the IMC, the current state and the
#: time-abstract history (state sequence), return the index of the
#: interactive transition to take (into ``interactive_successors``).
Resolver = Callable[[IMC, int, Sequence[int]], int]


def random_resolver(rng: np.random.Generator) -> Resolver:
    """Resolve nondeterminism uniformly at random."""

    def resolve(imc: IMC, state: int, history: Sequence[int]) -> int:
        return int(rng.integers(len(imc.interactive_successors(state))))

    return resolve


def first_resolver() -> Resolver:
    """Always take the first listed interactive transition."""

    def resolve(imc: IMC, state: int, history: Sequence[int]) -> int:
        return 0

    return resolve


def simulate_imc_reachability(
    imc: IMC,
    goal: set[int],
    t: float,
    resolver: Resolver | None = None,
    runs: int = 10_000,
    rng: np.random.Generator | None = None,
    max_interactive_steps: int = 10_000,
) -> SimulationEstimate:
    """Estimate ``Pr(reach goal within t)`` on the closed IMC directly.

    Parameters
    ----------
    imc:
        A closed IMC (remaining visible actions are treated as urgent,
        like ``tau``).
    goal:
        Goal states of the IMC; visiting one at any instant ``<= t``
        counts, including zero-time visits along interactive runs.
    t:
        The time bound.
    resolver:
        Resolution policy for interactive nondeterminism; defaults to
        uniformly random.
    runs, rng:
        Monte-Carlo parameters.
    max_interactive_steps:
        Safety bound against Zeno models: a run performing this many
        consecutive interactive steps raises ``ModelError``.
    """
    if runs <= 0:
        raise ModelError("need at least one simulation run")
    rng = rng or np.random.default_rng()
    resolve = resolver or random_resolver(rng)

    hits = 0
    for _ in range(runs):
        state = imc.initial
        clock = 0.0
        history: list[int] = []
        interactive_streak = 0
        while True:
            if state in goal:
                hits += 1
                break
            moves = imc.interactive_successors(state)
            if moves:
                # Urgency: interactive transitions happen immediately.
                interactive_streak += 1
                if interactive_streak > max_interactive_steps:
                    raise ModelError(
                        "interactive step limit exceeded; the model appears Zeno"
                    )
                choice = resolve(imc, state, history)
                if not 0 <= choice < len(moves):
                    raise ModelError(f"resolver returned invalid choice {choice}")
                history.append(state)
                state = moves[choice][1]
                continue
            interactive_streak = 0
            markov = imc.markov_successors(state)
            if not markov:
                break  # absorbing, goal unreachable
            total = math.fsum(rate for rate, _ in markov)
            clock += rng.exponential(1.0 / total)
            if clock > t:
                break
            weights = np.array([rate for rate, _ in markov]) / total
            pick = int(rng.choice(len(markov), p=weights)) if len(markov) > 1 else 0
            history.append(state)
            state = markov[pick][1]
    return _estimate(hits, runs)
