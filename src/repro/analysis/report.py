"""One-shot reproduction report.

Runs the complete experiment battery at a configurable scale and writes
a self-contained Markdown report: Table 1 (with the paper's numbers side
by side), Figure 4 as a table, the compositional-route cross-check, and
the sensitivity sweeps.  This is the artefact a reviewer would ask for;
``repro report --out report.md`` regenerates it from scratch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.experiments import (
    compositional_row,
    figure4_curves,
    table1_row,
)
from repro.analysis.sweeps import sweep_failure_rate, sweep_repair_speed
from repro.analysis.tables import (
    render_compositional,
    render_figure4,
    render_table1,
)

__all__ = ["ReportScale", "generate_report", "write_report"]


@dataclass(frozen=True)
class ReportScale:
    """How much work the report performs.

    The defaults regenerate everything in a few minutes; ``quick()``
    finishes in seconds (for CI), ``full()`` adds the larger sizes.
    """

    table1_ns: tuple[int, ...] = (1, 2, 4, 8, 16)
    table1_solve: tuple[float, ...] = (100.0,)
    figure4_ns: tuple[int, ...] = (4, 16)
    figure4_points: tuple[float, ...] = tuple(float(t) for t in range(0, 501, 100))
    compositional_ns: tuple[int, ...] = (1, 2)
    sweep_n: int = 2
    sweep_factors: tuple[float, ...] = (0.5, 1.0, 2.0)

    @classmethod
    def quick(cls) -> "ReportScale":
        """Seconds-scale report (smoke test)."""
        return cls(
            table1_ns=(1, 2),
            figure4_ns=(1,),
            figure4_points=(0.0, 100.0, 200.0),
            compositional_ns=(1,),
            sweep_n=1,
            sweep_factors=(0.5, 1.0, 2.0),
        )

    @classmethod
    def full(cls) -> "ReportScale":
        """Adds the larger model sizes (minutes to an hour)."""
        return cls(
            table1_ns=(1, 2, 4, 8, 16, 32, 64),
            figure4_ns=(4, 16, 32),
            compositional_ns=(1, 2),
        )


def generate_report(scale: ReportScale | None = None) -> str:
    """Run the battery and return the Markdown report text."""
    scale = scale or ReportScale()
    started = time.perf_counter()
    sections: list[str] = []

    sections.append(
        "# Reproduction report\n\n"
        "Hermanns & Johr, *Uniformity by Construction in the Analysis of "
        "Nondeterministic Stochastic Systems* (DSN 2007).  All numbers "
        "below were computed by this run; paper values are shown where "
        "the paper reports them.  See EXPERIMENTS.md for the full "
        "discussion of expected deviations.\n"
    )

    rows = [
        table1_row(n, time_bounds=(100.0, 30000.0), solve_bounds=scale.table1_solve)
        for n in scale.table1_ns
    ]
    sections.append("## Table 1 -- model sizes, memory, iterations\n")
    sections.append("```\n" + render_table1(rows) + "\n```\n")

    sections.append("## Figure 4 -- worst-case CTMDP vs CTMC\n")
    for n in scale.figure4_ns:
        curves = figure4_curves(n, scale.figure4_points, gamma=10.0)
        sections.append("```\n" + render_figure4(curves) + "\n```\n")
        overestimates = all(
            c > m for c, m in zip(curves.ctmc[1:], curves.ctmdp_max[1:])
        )
        sections.append(
            f"CTMC overestimates the worst case at every positive bound: "
            f"**{overestimates}**.\n"
        )

    sections.append("## Compositional route (Section 5)\n")
    comp_rows = [compositional_row(n) for n in scale.compositional_ns]
    sections.append("```\n" + render_compositional(comp_rows) + "\n```\n")

    sections.append("## Sensitivity sweeps (worst-case P within 100 h)\n")
    repair = sweep_repair_speed(scale.sweep_n, scale.sweep_factors)
    failure = sweep_failure_rate(scale.sweep_n, scale.sweep_factors)
    lines = ["```", f"N = {scale.sweep_n}", "factor  repair-speed  failure-rate"]
    for r_point, f_point in zip(repair, failure):
        lines.append(
            f"{r_point.parameter:6g}  {r_point.probability:12.6e}  "
            f"{f_point.probability:12.6e}"
        )
    lines.append("```")
    sections.append("\n".join(lines) + "\n")

    elapsed = time.perf_counter() - started
    sections.append(f"---\nGenerated in {elapsed:.1f} s.\n")
    return "\n".join(sections)


def write_report(path: str | Path, scale: ReportScale | None = None) -> Path:
    """Generate and write the report; returns the path."""
    path = Path(path)
    path.write_text(generate_report(scale), encoding="utf-8")
    return path
