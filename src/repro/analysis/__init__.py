"""Experiment harness: Table 1, Figure 4, compositional statistics."""

from repro.analysis.experiments import (
    CompositionalRow,
    Figure4Curves,
    PAPER_TABLE1,
    Table1Row,
    compositional_row,
    figure4_curves,
    run_figure4,
    run_table1,
    table1_row,
)
from repro.analysis.report import ReportScale, generate_report, write_report
from repro.analysis.validate import CheckOutcome, run_selfcheck
from repro.analysis.sweeps import (
    SweepPoint,
    curves_to_csv,
    sweep_cluster_size,
    sweep_failure_rate,
    sweep_repair_speed,
)
from repro.analysis.stats import AlternatingStatistics, ctmdp_alternating_statistics
from repro.analysis.tables import (
    format_bytes,
    render_compositional,
    render_figure4,
    render_table1,
)

__all__ = [
    "CompositionalRow",
    "Figure4Curves",
    "PAPER_TABLE1",
    "Table1Row",
    "compositional_row",
    "figure4_curves",
    "run_figure4",
    "run_table1",
    "table1_row",
    "CheckOutcome",
    "run_selfcheck",
    "ReportScale",
    "generate_report",
    "write_report",
    "SweepPoint",
    "curves_to_csv",
    "sweep_cluster_size",
    "sweep_failure_rate",
    "sweep_repair_speed",
    "AlternatingStatistics",
    "ctmdp_alternating_statistics",
    "format_bytes",
    "render_compositional",
    "render_figure4",
    "render_table1",
]
