"""Model statistics in the shape of Table 1.

The paper reports, per model, the numbers of interactive and Markov
states and transitions of the strictly alternating IMC "which comprises
precisely what needs to be stored for the corresponding CTMDP", plus the
memory footprint.  For models produced by the IMC transformation these
numbers fall out of :class:`repro.imc.transform.TransformStatistics`;
for directly generated CTMDPs this module reconstructs them from the
sparse representation:

* interactive states  = CTMDP states,
* Markov states       = distinct rate functions (several transitions may
  share one -- e.g. all grab choices of the FTWC whose races coincide),
* interactive transitions = CTMDP transitions (word-labelled edges),
* Markov transitions  = rate entries summed over distinct rate functions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ctmdp import CTMDP

__all__ = ["AlternatingStatistics", "ctmdp_alternating_statistics"]


@dataclass(frozen=True)
class AlternatingStatistics:
    """Strictly-alternating size statistics of a CTMDP."""

    interactive_states: int
    markov_states: int
    interactive_transitions: int
    markov_transitions: int
    memory_bytes: int

    def as_row(self) -> dict[str, int]:
        """Dictionary form for table rendering."""
        return {
            "inter_states": self.interactive_states,
            "markov_states": self.markov_states,
            "inter_transitions": self.interactive_transitions,
            "markov_transitions": self.markov_transitions,
            "memory_bytes": self.memory_bytes,
        }


def ctmdp_alternating_statistics(ctmdp: CTMDP) -> AlternatingStatistics:
    """Reconstruct Table-1-style statistics from a CTMDP.

    Rate functions are deduplicated structurally (same targets, same
    rates); each distinct function corresponds to one Markov state of
    the underlying strictly alternating IMC.
    """
    matrix = ctmdp.rate_matrix
    seen: dict[tuple, int] = {}
    markov_transitions = 0
    for row in range(matrix.shape[0]):
        lo, hi = matrix.indptr[row], matrix.indptr[row + 1]
        key = (
            tuple(matrix.indices[lo:hi].tolist()),
            tuple(np.round(matrix.data[lo:hi], 12).tolist()),
        )
        if key not in seen:
            seen[key] = row
            markov_transitions += hi - lo
    return AlternatingStatistics(
        interactive_states=ctmdp.num_states,
        markov_states=len(seen),
        interactive_transitions=ctmdp.num_transitions,
        markov_transitions=markov_transitions,
        memory_bytes=ctmdp.memory_bytes(),
    )
