"""Experiment harness regenerating every table and figure of the paper.

* :func:`table1_row` / :func:`run_table1` -- Table 1: model sizes,
  memory, transformation/generation time, analysis runtime and iteration
  counts for time bounds of 100 h and 30000 h at precision 1e-6.
* :func:`figure4_curves` / :func:`run_figure4` -- Figure 4: worst-case
  CTMDP probabilities versus the probabilities of the CTMC
  approximation of [13], over a sweep of time bounds.
* :func:`compositional_row` -- the "Technicalities" paragraph of
  Section 5: state-space sizes along the compositional route.

All entry points return plain dataclasses; rendering to the paper's
table layout lives in :mod:`repro.analysis.tables`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.stats import AlternatingStatistics, ctmdp_alternating_statistics
from repro.core.reachability import timed_reachability
from repro.ctmc.reachability import timed_reachability_curve
from repro.engine import Query, QueryEngine
from repro.models import ftwc
from repro.numerics.foxglynn import poisson_right_truncation

__all__ = [
    "Table1Row",
    "table1_row",
    "run_table1",
    "Figure4Curves",
    "figure4_curves",
    "run_figure4",
    "CompositionalRow",
    "compositional_row",
    "PAPER_TABLE1",
]

#: The paper's Table 1, for side-by-side comparison in EXPERIMENTS.md:
#: N -> (interactive states, Markov states, interactive transitions,
#:       Markov transitions, iterations at 100 h, iterations at 30000 h).
PAPER_TABLE1: dict[int, tuple[int, int, int, int, int, int]] = {
    1: (110, 81, 155, 324, 372, 62161),
    2: (274, 205, 403, 920, 372, 62284),
    4: (818, 621, 1235, 3000, 373, 62528),
    8: (2770, 2125, 4243, 10712, 375, 63016),
    16: (10130, 7821, 15635, 40344, 378, 63993),
    32: (38674, 29965, 59923, 156440, 384, 65945),
    64: (151058, 117261, 234515, 615960, 397, 69849),
    128: (597010, 463885, 927763, 2444312, 423, 77651),
}


@dataclass
class Table1Row:
    """One row of Table 1 (our reproduction).

    ``runtime_seconds`` and ``probability`` hold one entry per analysed
    time bound; ``iterations`` additionally holds predicted iteration
    counts for bounds that were not solved (they only depend on
    ``E * t``, not on the model size).
    """

    n: int
    stats: AlternatingStatistics
    generation_seconds: float
    uniform_rate: float
    time_bounds: tuple[float, ...]
    iterations: dict[float, int] = field(default_factory=dict)
    runtime_seconds: dict[float, float] = field(default_factory=dict)
    probability: dict[float, float] = field(default_factory=dict)


def table1_row(
    n: int,
    time_bounds: tuple[float, ...] = (100.0, 30000.0),
    solve_bounds: tuple[float, ...] | None = None,
    epsilon: float = 1e-6,
    engine: QueryEngine | None = None,
) -> Table1Row:
    """Generate the FTWC for ``n`` and analyse it per Table 1.

    Parameters
    ----------
    n:
        Workstations per sub-cluster.
    time_bounds:
        Bounds for which iteration counts are reported (predicted via
        the Fox-Glynn truncation point; this is exact and cheap).
    solve_bounds:
        Bounds for which the value iteration is actually run (runtime
        and probability columns).  Defaults to all of ``time_bounds``;
        pass a subset to skip the long horizons for large ``n`` -- the
        paper's N=128/30000 h cell took almost six hours on the authors'
        machine, and a Python reproduction of that single cell is
        measured in days.
    epsilon:
        Truncation precision (the paper uses 1e-6).
    engine:
        Optional :class:`~repro.engine.QueryEngine` to issue the
        analyses through; all solve bounds then share one registered
        model and one prepared solver, and repeated rows (or a warm
        registry) skip construction entirely.  A private memory-only
        engine is created when omitted.
    """
    if solve_bounds is None:
        solve_bounds = time_bounds
    engine = engine if engine is not None else QueryEngine()
    spec = {"family": "ftwc", "n": n}
    built = engine.model(spec)
    rate = built.model.uniform_rate()

    row = Table1Row(
        n=n,
        stats=ctmdp_alternating_statistics(built.model),
        generation_seconds=float(built.stats.get("build_seconds", 0.0)),
        uniform_rate=rate,
        time_bounds=tuple(time_bounds),
    )
    for bound in time_bounds:
        row.iterations[bound] = poisson_right_truncation(rate * bound, epsilon)
    batch = engine.run(
        [Query(model=spec, t=bound, epsilon=epsilon) for bound in solve_bounds]
    )
    for bound, result in zip(solve_bounds, batch.results):
        if result.error is not None:
            raise RuntimeError(f"table1 query at t={bound} failed: {result.error}")
        row.runtime_seconds[bound] = result.seconds
        row.probability[bound] = result.value
        row.iterations[bound] = result.iterations
    return row


def run_table1(
    ns: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128),
    time_bounds: tuple[float, ...] = (100.0, 30000.0),
    solve_bounds: tuple[float, ...] | None = (100.0,),
    epsilon: float = 1e-6,
    engine: QueryEngine | None = None,
) -> list[Table1Row]:
    """All rows of Table 1.

    By default only the 100 h bound is solved (the 30000 h iteration
    counts are still reported exactly); pass ``solve_bounds=None`` to
    solve every bound.  All rows share one query engine (one registry),
    so re-running a table against a warm registry re-solves nothing it
    has seen before.
    """
    engine = engine if engine is not None else QueryEngine()
    return [table1_row(n, time_bounds, solve_bounds, epsilon, engine=engine) for n in ns]


@dataclass
class Figure4Curves:
    """The curves of one Figure 4 panel."""

    n: int
    time_points: np.ndarray
    ctmdp_max: np.ndarray
    ctmdp_min: np.ndarray | None
    ctmc: np.ndarray
    gamma: float


def figure4_curves(
    n: int,
    time_points: tuple[float, ...] | np.ndarray = tuple(float(t) for t in range(0, 501, 50)),
    gamma: float = 10.0,
    epsilon: float = 1e-6,
    include_min: bool = True,
    engine: QueryEngine | None = None,
) -> Figure4Curves:
    """Worst-case CTMDP vs CTMC probabilities over a time-bound sweep.

    Regenerates one panel of Figure 4.  The paper's headline
    observation -- the CTMC *overestimates* the worst case, exposing the
    modelling flaw of replacing nondeterminism by fast races -- shows as
    ``ctmc >= ctmdp_max`` pointwise.

    All queries run through the batched engine: the CTMDP is built
    exactly once and shared by the sup and inf sweeps (one prepared
    solver per objective, one Fox-Glynn computation per time bound), and
    the CTMC curve reuses the registry-cached chain with the forward
    mass-series optimisation of :func:`timed_reachability_curve`.
    """
    ts = np.asarray(list(time_points), dtype=np.float64)
    engine = engine if engine is not None else QueryEngine()
    spec = {"family": "ftwc", "n": n}
    queries = [Query(model=spec, t=float(t), epsilon=epsilon) for t in ts]
    if include_min:
        queries += [
            Query(model=spec, t=float(t), objective="min", epsilon=epsilon) for t in ts
        ]
    batch = engine.run(queries)
    failed = [result for result in batch.results if result.error is not None]
    if failed:
        raise RuntimeError(f"figure4 query failed: {failed[0].error}")
    values = batch.values()
    ctmdp_max = np.array(values[: len(ts)])
    ctmdp_min = np.array(values[len(ts) :]) if include_min else None
    chain = engine.model({"family": "ftwc-ctmc", "n": n, "gamma": gamma})
    ctmc = timed_reachability_curve(
        chain.model, chain.goal_mask, ts, epsilon=min(epsilon, 1e-8)
    )
    return Figure4Curves(
        n=n, time_points=ts, ctmdp_max=ctmdp_max, ctmdp_min=ctmdp_min, ctmc=ctmc, gamma=gamma
    )


def run_figure4(
    small_n: int = 4,
    large_n: int = 16,
    time_points: tuple[float, ...] = tuple(float(t) for t in range(0, 501, 50)),
    gamma: float = 10.0,
    engine: QueryEngine | None = None,
) -> list[Figure4Curves]:
    """Both panels of Figure 4.

    The paper plots N=4 and N=128; the default large panel here is N=16
    so the figure regenerates in minutes rather than days -- pass
    ``large_n=128`` for the full-size run.
    """
    engine = engine if engine is not None else QueryEngine()
    return [
        figure4_curves(small_n, time_points, gamma, engine=engine),
        figure4_curves(large_n, time_points, gamma, engine=engine),
    ]


@dataclass
class CompositionalRow:
    """Size statistics of the compositional route (Section 5 technicalities)."""

    n: int
    final_imc_states: int
    final_imc_interactive: int
    final_imc_markov: int
    ctmdp_states: int
    ctmdp_transitions: int
    build_seconds: float
    probability_100h: float


def compositional_row(n: int, epsilon: float = 1e-6) -> CompositionalRow:
    """Build the FTWC compositionally and measure the resulting sizes."""
    started = time.perf_counter()
    model = ftwc.build_compositional(n)
    build = time.perf_counter() - started
    result = timed_reachability(model.ctmdp, model.goal_mask, 100.0, epsilon=epsilon)
    system = model.system.imc
    return CompositionalRow(
        n=n,
        final_imc_states=system.num_states,
        final_imc_interactive=system.num_interactive_transitions,
        final_imc_markov=system.num_markov_transitions,
        ctmdp_states=model.ctmdp.num_states,
        ctmdp_transitions=model.ctmdp.num_transitions,
        build_seconds=build,
        probability_100h=result.value(model.ctmdp.initial),
    )
