"""Plain-text rendering of the experiment results in the paper's layout."""

from __future__ import annotations

from typing import Sequence

from repro.analysis.experiments import (
    CompositionalRow,
    Figure4Curves,
    PAPER_TABLE1,
    Table1Row,
)

__all__ = ["format_bytes", "render_table1", "render_figure4", "render_compositional"]


def format_bytes(size: int) -> str:
    """Human-readable byte size (KB/MB as in the paper's Mem column)."""
    value = float(size)
    for unit in ("B", "KB", "MB", "GB"):
        if value < 1024.0 or unit == "GB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    return f"{value:.1f} GB"  # pragma: no cover - unreachable


def _format_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))


def _render_grid(header: Sequence[str], rows: list[list[str]]) -> str:
    widths = [
        max(len(header[col]), *(len(row[col]) for row in rows)) if rows else len(header[col])
        for col in range(len(header))
    ]
    lines = [_format_row(header, widths)]
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(_format_row(row, widths) for row in rows)
    return "\n".join(lines)


def render_table1(rows: list[Table1Row], compare_paper: bool = True) -> str:
    """Render Table 1: model sizes, memory, timings, iterations.

    With ``compare_paper`` the paper's interactive-state counts and
    iteration numbers are shown next to ours.
    """
    header = [
        "N",
        "Inter.st",
        "Markov.st",
        "Inter.tr",
        "Markov.tr",
        "Mem",
        "Gen(s)",
    ]
    bound_set: set[float] = set()
    for row in rows:
        bound_set.update(row.time_bounds)
        bound_set.update(row.runtime_seconds)
    bounds = tuple(sorted(bound_set))
    for bound in bounds:
        header.append(f"Runtime {bound:g}h (s)")
    for bound in bounds:
        header.append(f"Iter {bound:g}h")
    if compare_paper:
        header.extend(["paper Inter.st", "paper Iter"])

    grid: list[list[str]] = []
    for row in rows:
        cells = [
            str(row.n),
            str(row.stats.interactive_states),
            str(row.stats.markov_states),
            str(row.stats.interactive_transitions),
            str(row.stats.markov_transitions),
            format_bytes(row.stats.memory_bytes),
            f"{row.generation_seconds:.2f}",
        ]
        for bound in bounds:
            runtime = row.runtime_seconds.get(bound)
            cells.append(f"{runtime:.2f}" if runtime is not None else "-")
        for bound in bounds:
            cells.append(str(row.iterations.get(bound, "-")))
        if compare_paper:
            paper = PAPER_TABLE1.get(row.n)
            if paper is not None:
                cells.append(str(paper[0]))
                cells.append(f"{paper[4]}/{paper[5]}")
            else:
                cells.extend(["-", "-"])
        grid.append(cells)
    return _render_grid(header, grid)


def render_figure4(curves: Figure4Curves) -> str:
    """Render one Figure 4 panel as a table of probabilities over time."""
    header = ["t (h)", "CTMDP sup", "CTMC"]
    if curves.ctmdp_min is not None:
        header.insert(2, "CTMDP inf")
    header.append("CTMC/sup")
    grid: list[list[str]] = []
    for idx, t in enumerate(curves.time_points):
        sup = curves.ctmdp_max[idx]
        ctmc = curves.ctmc[idx]
        cells = [f"{t:g}", f"{sup:.6e}"]
        if curves.ctmdp_min is not None:
            cells.append(f"{curves.ctmdp_min[idx]:.6e}")
        cells.append(f"{ctmc:.6e}")
        cells.append(f"{ctmc / sup:.4f}" if sup > 0.0 else "-")
        grid.append(cells)
    title = f"Figure 4 panel: FTWC N={curves.n}, gamma={curves.gamma:g}"
    return title + "\n" + _render_grid(header, grid)


def render_compositional(rows: list[CompositionalRow]) -> str:
    """Render the compositional-route statistics."""
    header = [
        "N",
        "IMC states",
        "IMC inter.tr",
        "IMC markov.tr",
        "CTMDP states",
        "CTMDP trans",
        "Build(s)",
        "p(100h)",
    ]
    grid = [
        [
            str(row.n),
            str(row.final_imc_states),
            str(row.final_imc_interactive),
            str(row.final_imc_markov),
            str(row.ctmdp_states),
            str(row.ctmdp_transitions),
            f"{row.build_seconds:.2f}",
            f"{row.probability_100h:.6e}",
        ]
        for row in rows
    ]
    return _render_grid(header, grid)
