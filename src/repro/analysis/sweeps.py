"""Parameter sweeps over the FTWC: sensitivity analysis and CSV export.

The paper evaluates one parameterisation of the workstation cluster;
a library user typically wants to know how the worst-case risk moves
with the design parameters.  These sweeps vary

* the cluster size ``N`` (redundancy),
* the repair rates (maintenance capacity),
* the failure rates (component quality),

and report the worst-case probability of losing premium service within
a mission time, each point being one run of Algorithm 1 on a freshly
generated uniform CTMDP.  ``curves_to_csv`` exports any Figure-4-style
curve set for external plotting.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.analysis.experiments import Figure4Curves
from repro.core.reachability import timed_reachability
from repro.models.ftwc_direct import FTWCParameters, build_ctmdp

__all__ = [
    "SweepPoint",
    "sweep_cluster_size",
    "sweep_repair_speed",
    "sweep_failure_rate",
    "curves_to_csv",
]


@dataclass(frozen=True)
class SweepPoint:
    """One point of a parameter sweep."""

    parameter: float
    probability: float
    states: int
    uniform_rate: float


def _worst_case(params: FTWCParameters, t: float, epsilon: float) -> SweepPoint:
    model = build_ctmdp(params.n, params)
    result = timed_reachability(model.ctmdp, model.goal_mask, t, epsilon=epsilon)
    return SweepPoint(
        parameter=float("nan"),
        probability=result.value(model.ctmdp.initial),
        states=model.ctmdp.num_states,
        uniform_rate=result.uniform_rate,
    )


def sweep_cluster_size(
    ns: Sequence[int], t: float = 100.0, epsilon: float = 1e-6
) -> list[SweepPoint]:
    """Worst-case non-premium probability as the cluster grows.

    Larger ``N`` means both more redundancy *required* (premium needs
    ``N`` operational workstations) and more components that can fail;
    the sweep shows which effect wins.
    """
    points = []
    for n in ns:
        point = _worst_case(FTWCParameters(n=n), t, epsilon)
        points.append(replace(point, parameter=float(n)))
    return points


def sweep_repair_speed(
    n: int,
    factors: Sequence[float],
    t: float = 100.0,
    epsilon: float = 1e-6,
) -> list[SweepPoint]:
    """Scale all repair rates by each factor (maintenance capacity)."""
    points = []
    for factor in factors:
        if factor <= 0.0:
            raise ValueError("repair-speed factors must be positive")
        base = FTWCParameters(n=n)
        params = FTWCParameters(
            n=n,
            ws_repair=base.ws_repair * factor,
            sw_repair=base.sw_repair * factor,
            bb_repair=base.bb_repair * factor,
        )
        point = _worst_case(params, t, epsilon)
        points.append(replace(point, parameter=float(factor)))
    return points


def sweep_failure_rate(
    n: int,
    factors: Sequence[float],
    t: float = 100.0,
    epsilon: float = 1e-6,
) -> list[SweepPoint]:
    """Scale all failure rates by each factor (component quality)."""
    points = []
    for factor in factors:
        if factor <= 0.0:
            raise ValueError("failure-rate factors must be positive")
        base = FTWCParameters(n=n)
        params = FTWCParameters(
            n=n,
            ws_fail=base.ws_fail * factor,
            sw_fail=base.sw_fail * factor,
            bb_fail=base.bb_fail * factor,
        )
        point = _worst_case(params, t, epsilon)
        points.append(replace(point, parameter=float(factor)))
    return points


def curves_to_csv(curves: Figure4Curves, path: str | Path) -> None:
    """Export one Figure 4 panel as CSV (for gnuplot/matplotlib/etc.)."""
    with open(path, "w", newline="", encoding="ascii") as handle:
        writer = csv.writer(handle)
        header = ["t_hours", "ctmdp_sup", "ctmc"]
        if curves.ctmdp_min is not None:
            header.insert(2, "ctmdp_inf")
        writer.writerow(header)
        for idx, t in enumerate(curves.time_points):
            row = [f"{t:g}", f"{curves.ctmdp_max[idx]:.12e}"]
            if curves.ctmdp_min is not None:
                row.append(f"{curves.ctmdp_min[idx]:.12e}")
            row.append(f"{curves.ctmc[idx]:.12e}")
            writer.writerow(row)
