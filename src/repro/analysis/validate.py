"""Installation self-check: run the cross-validations end to end.

``repro selfcheck`` executes the independent-implementation agreements
that give the reproduction its credibility, at smoke-test scale:

1. Algorithm 1 against closed-form answers (exponential / Erlang);
2. Algorithm 1 against the CTMC solver on a single-action model;
3. the compositional FTWC route against the direct generator (values
   *and* strong bisimilarity of the CTMDPs);
4. the Figure 4 relationship (CTMC overestimates the worst case);
5. Monte-Carlo simulation of the untransformed IMC inside the
   transformed model's [inf, sup] envelope;
6. Fox-Glynn weights against direct pmf evaluation.

Each check returns pass/fail with a one-line summary; any failure means
the installation (or a modification) broke a core invariant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["CheckOutcome", "run_selfcheck"]


@dataclass(frozen=True)
class CheckOutcome:
    """Result of one self-check."""

    name: str
    passed: bool
    detail: str


def _check_closed_forms() -> CheckOutcome:
    from repro.core.ctmdp import CTMDP
    from repro.core.reachability import timed_reachability

    ctmdp = CTMDP.from_transitions(2, [(0, "a", {1: 3.0}), (1, "a", {1: 3.0})])
    value = timed_reachability(ctmdp, [1], 1.0, epsilon=1e-10).value(0)
    expected = 1.0 - math.exp(-3.0)
    passed = abs(value - expected) < 1e-8
    return CheckOutcome(
        name="closed-form exponential",
        passed=passed,
        detail=f"computed {value:.10f}, expected {expected:.10f}",
    )


def _check_ctmc_agreement() -> CheckOutcome:
    from repro.core.reachability import timed_reachability
    from repro.ctmc.reachability import timed_reachability as ctmc_reachability
    from repro.models.zoo import two_phase_race_ctmdp

    ctmdp, goal = two_phase_race_ctmdp()
    chain = ctmdp.induced_ctmc([0, 0, 0])
    t = 0.4
    mdp_value = float(
        np.max(
            [
                ctmc_reachability(chain, goal, t, epsilon=1e-12)[0],
                ctmc_reachability(ctmdp.induced_ctmc([1, 0, 0]), goal, t, epsilon=1e-12)[0],
            ]
        )
    )
    sup = timed_reachability(ctmdp, goal, t, epsilon=1e-10).value(0)
    passed = sup >= mdp_value - 1e-9
    return CheckOutcome(
        name="CTMDP sup dominates stationary schedulers",
        passed=passed,
        detail=f"sup {sup:.8f} vs best stationary {mdp_value:.8f}",
    )


def _check_routes_agree() -> CheckOutcome:
    from repro.bisim.ctmdp_bisim import ctmdp_equivalent
    from repro.core.reachability import timed_reachability
    from repro.models.ftwc import build_compositional
    from repro.models.ftwc_direct import build_ctmdp

    comp = build_compositional(1)
    direct = build_ctmdp(1)
    value_comp = timed_reachability(comp.ctmdp, comp.goal_mask, 100.0, epsilon=1e-8).value(
        comp.ctmdp.initial
    )
    value_direct = timed_reachability(
        direct.ctmdp, direct.goal_mask, 100.0, epsilon=1e-8
    ).value(direct.ctmdp.initial)
    values_match = abs(value_comp - value_direct) < 1e-10
    bisimilar = ctmdp_equivalent(
        comp.ctmdp,
        direct.ctmdp,
        comp.goal_mask.tolist(),
        direct.goal_mask.tolist(),
        respect_actions=False,
    )
    return CheckOutcome(
        name="compositional route = direct generator (FTWC N=1)",
        passed=values_match and bisimilar,
        detail=(
            f"values {value_comp:.3e} / {value_direct:.3e}, "
            f"strongly bisimilar: {bisimilar}"
        ),
    )


def _check_figure4_relationship() -> CheckOutcome:
    from repro.core.reachability import timed_reachability
    from repro.ctmc.reachability import timed_reachability as ctmc_reachability
    from repro.models.ftwc_direct import build_ctmc, build_ctmdp

    model = build_ctmdp(1)
    chain, _configs, goal = build_ctmc(1, gamma=10.0)
    t = 100.0
    sup = timed_reachability(model.ctmdp, model.goal_mask, t, epsilon=1e-8).value(0)
    approx = float(ctmc_reachability(chain, goal, t, epsilon=1e-10)[0])
    return CheckOutcome(
        name="CTMC overestimates the worst case (Figure 4)",
        passed=approx > sup,
        detail=f"CTMC {approx:.6e} > sup {sup:.6e}",
    )


def _check_simulation_envelope() -> CheckOutcome:
    from repro.core.reachability import timed_reachability
    from repro.imc.model import IMCBuilder
    from repro.imc.transform import imc_to_ctmdp
    from repro.sim.imc_sim import random_resolver, simulate_imc_reachability

    builder = IMCBuilder()
    start = builder.state("start")
    choice = builder.state("choice")
    fast = builder.state("fast")
    slow = builder.state("slow")
    goal_state = builder.state("goal")
    builder.markov(start, 4.0, choice)
    builder.tau(choice, fast)
    builder.tau(choice, slow)
    builder.markov(fast, 4.0, goal_state)
    builder.markov(slow, 1.0, goal_state)
    builder.markov(slow, 3.0, start)
    builder.tau(goal_state, start)
    imc = builder.build(initial=start)

    result = imc_to_ctmdp(imc, require_uniform=True)
    mask = result.goal_mask_from_predicate(lambda s: s == goal_state, via="interactive")
    t = 0.8
    sup = timed_reachability(result.ctmdp, mask, t, epsilon=1e-9).value(result.ctmdp.initial)
    inf = timed_reachability(
        result.ctmdp, mask, t, epsilon=1e-9, objective="min"
    ).value(result.ctmdp.initial)
    rng = np.random.default_rng(2007)
    estimate = simulate_imc_reachability(
        imc, {goal_state}, t, resolver=random_resolver(rng), runs=4000, rng=rng
    )
    low, high = estimate.confidence_interval(z=4.0)
    passed = low <= sup + 1e-9 and high >= inf - 1e-9
    return CheckOutcome(
        name="IMC simulation inside [inf, sup] envelope (Theorem 1)",
        passed=passed,
        detail=f"simulated {estimate.probability:.4f} in [{inf:.4f}, {sup:.4f}]",
    )


def _check_fox_glynn() -> CheckOutcome:
    from repro.numerics.foxglynn import fox_glynn, poisson_pmf

    fg = fox_glynn(200.0, 1e-10)
    sample = range(fg.left, fg.right + 1, 25)
    error = max(abs(fg.probability(i) - poisson_pmf(i, 200.0)) for i in sample)
    return CheckOutcome(
        name="Fox-Glynn weights vs direct pmf",
        passed=error < 1e-12,
        detail=f"max abs deviation {error:.2e}",
    )


_CHECKS: list[Callable[[], CheckOutcome]] = [
    _check_closed_forms,
    _check_ctmc_agreement,
    _check_routes_agree,
    _check_figure4_relationship,
    _check_simulation_envelope,
    _check_fox_glynn,
]


def run_selfcheck() -> list[CheckOutcome]:
    """Run every self-check; a raising check counts as failed."""
    outcomes: list[CheckOutcome] = []
    for check_fn in _CHECKS:
        try:
            outcomes.append(check_fn())
        except Exception as error:  # noqa: BLE001 - report, do not crash
            outcomes.append(
                CheckOutcome(
                    name=check_fn.__name__.removeprefix("_check_"),
                    passed=False,
                    detail=f"raised {type(error).__name__}: {error}",
                )
            )
    return outcomes
