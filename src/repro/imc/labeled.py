"""Labelled IMCs: observations that survive composition and minimisation.

Verifying a property of a composed system requires evaluating a state
predicate on the final model -- but composition scrambles state
identities and minimisation merges states.  The pragmatic solution used
throughout the compositional-verification literature (and by the FTWC
construction here) is to attach a small *observation* to every state,
combine observations through parallel composition, and seed every
bisimulation quotient with them so no merge ever crosses an observation
boundary.

:class:`LabeledIMC` packages an IMC with one hashable observation per
state and lifts the composition operators:

* :meth:`LabeledIMC.parallel` combines observations with a supplied
  function (defaults to tuple-wise addition, the natural choice for
  counting observations);
* :meth:`LabeledIMC.hide` / :meth:`LabeledIMC.relabel` keep them;
* :meth:`LabeledIMC.minimize` quotients by stochastic branching
  bisimulation seeded with the observations and projects them onto the
  quotient;
* :meth:`LabeledIMC.relabel_observations` post-processes observations
  (e.g. collapsing count tuples to a final boolean predicate before the
  last quotient, to maximise reduction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Sequence

from repro.errors import ModelError
from repro.imc.composition import hide as _hide
from repro.imc.composition import parallel_with_map
from repro.imc.composition import relabel as _relabel
from repro.imc.model import IMC

__all__ = ["LabeledIMC", "add_tuples"]


def add_tuples(left: tuple, right: tuple) -> tuple:
    """Element-wise addition of two equally long observation tuples."""
    if len(left) != len(right):
        raise ModelError("observation tuples must have equal length")
    return tuple(a + b for a, b in zip(left, right))


@dataclass
class LabeledIMC:
    """An IMC with one observation per state."""

    imc: IMC
    observations: list

    def __post_init__(self) -> None:
        if len(self.observations) != self.imc.num_states:
            raise ModelError("one observation per state required")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def constant(cls, imc: IMC, observation: Hashable) -> "LabeledIMC":
        """All states share one observation (e.g. the zero tuple)."""
        return cls(imc=imc, observations=[observation] * imc.num_states)

    @classmethod
    def from_function(
        cls, imc: IMC, observe: Callable[[int], Hashable]
    ) -> "LabeledIMC":
        """Observation computed per state index."""
        return cls(imc=imc, observations=[observe(s) for s in range(imc.num_states)])

    # ------------------------------------------------------------------
    # Lifted operators
    # ------------------------------------------------------------------
    def parallel(
        self,
        other: "LabeledIMC",
        sync: Sequence[str] = (),
        combine: Callable[[Hashable, Hashable], Hashable] = add_tuples,
    ) -> "LabeledIMC":
        """Parallel composition, combining the observations pairwise."""
        product, pairs = parallel_with_map(self.imc, other.imc, sync)
        observations = [
            combine(self.observations[s], other.observations[v]) for s, v in pairs
        ]
        return LabeledIMC(imc=product, observations=observations)

    def hide(self, actions: Sequence[str]) -> "LabeledIMC":
        """Hide actions; observations unchanged."""
        return LabeledIMC(imc=_hide(self.imc, actions), observations=list(self.observations))

    def hide_all_but(self, keep: Sequence[str] = ()) -> "LabeledIMC":
        """Close the system; observations unchanged."""
        from repro.imc.composition import hide_all_but as _hide_all_but

        return LabeledIMC(
            imc=_hide_all_but(self.imc, keep), observations=list(self.observations)
        )

    def relabel(self, mapping: dict[str, str]) -> "LabeledIMC":
        """Relabel actions; observations unchanged."""
        return LabeledIMC(
            imc=_relabel(self.imc, mapping), observations=list(self.observations)
        )

    def minimize(self, engine: str = "worklist") -> "LabeledIMC":
        """Branching-bisimulation quotient respecting the observations.

        ``engine`` selects the refinement implementation (``"worklist"``
        or ``"naive"``, see :mod:`repro.bisim.branching`).
        """
        # Imported here: repro.bisim depends on repro.imc.model, so a
        # top-level import would be circular.
        from repro.bisim.branching import branching_minimize
        from repro.bisim.quotient import map_labels_through

        quotient, partition = branching_minimize(
            self.imc, labels=self.observations, engine=engine
        )
        return LabeledIMC(
            imc=quotient,
            observations=map_labels_through(partition, self.observations),
        )

    def relabel_observations(
        self, transform: Callable[[Hashable], Hashable]
    ) -> "LabeledIMC":
        """Apply ``transform`` to every observation (coarsening them
        before a final quotient increases the achievable reduction)."""
        return LabeledIMC(
            imc=self.imc,
            observations=[transform(obs) for obs in self.observations],
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def observation_of(self, state: int) -> Hashable:
        """Observation attached to ``state``."""
        return self.observations[state]

    def states_where(self, predicate: Callable[[Hashable], bool]) -> list[int]:
        """States whose observation satisfies ``predicate``."""
        return [s for s, obs in enumerate(self.observations) if predicate(obs)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LabeledIMC({self.imc!r}, observations={len(set(self.observations))} distinct)"
