"""The three transformation steps from closed IMCs to strictly alternating form.

Section 4.1 of the paper turns a closed (u)IMC into a *strictly
alternating* (u)IMC -- one in which interactive and Markov states occur
strictly alternatingly and hybrid states are absent -- via three steps:

1. **Alternating** (:func:`make_alternating`): under the closed-system
   *urgency* assumption, interactive transitions preempt Markov
   transitions; hybrid states therefore lose their Markov transitions
   and become interactive states.
2. **Markov alternating** (:func:`make_markov_alternating`): sequences
   of Markov transitions are broken by inserting, per pair ``(s, s')``
   of Markov states connected by a transition, a fresh interactive state
   reached with the original rate and leaving via ``tau`` to ``s'``.
3. **Interactive alternating** (:func:`make_interactive_alternating`):
   sequences of interactive transitions are compressed into single
   transitions labelled with *words* over ``Act+ \\ {tau} + {tau}``;
   only interactive states that are the initial state or have a Markov
   predecessor survive.

Each step preserves the timed probabilistic behaviour (Theorem 1) and
uniformity.  Zeno behaviour (cycles of interactive transitions, which
under the closed view could fire infinitely fast) and interactive
deadlocks are rejected.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field

from repro.errors import TransformationError
from repro.imc.model import IMC, TAU, StateClass

__all__ = [
    "make_alternating",
    "make_markov_alternating",
    "make_interactive_alternating",
    "strictly_alternating",
    "word_label",
    "AlternationResult",
]


def word_label(word: tuple[str, ...]) -> str:
    """Render a word over visible actions; the empty word is ``tau``."""
    return ".".join(word) if word else TAU


def make_alternating(imc: IMC) -> IMC:
    """Step (1): cut Markov transitions of hybrid states (urgency).

    The closed-system view makes every interactive transition urgent, so
    Markov transitions of hybrid states can never fire; removing them
    moves each hybrid state into ``S_I``.
    """
    markov = [
        (src, rate, dst)
        for src, rate, dst in imc.markov
        if not imc.interactive_successors(src)
    ]
    return IMC(
        num_states=imc.num_states,
        interactive=list(imc.interactive),
        markov=markov,
        initial=imc.initial,
        state_names=list(imc.state_names) if imc.state_names else None,
    )


def make_markov_alternating(imc: IMC) -> tuple[IMC, dict[int, int]]:
    """Step (2): make every Markov transition end in an interactive state.

    For each pair of Markov states ``s --lambda--> s'`` a fresh
    interactive state ``(s, s')`` is inserted with ``s --lambda--> (s,
    s') --tau--> s'``.  Returns the new IMC together with a map sending
    each fresh state to the state ``s'`` it stutters into (used to
    evaluate state predicates on synthetic states).

    Precondition: ``imc`` is alternating (no hybrid states).
    """
    classes = [imc.state_class(s) for s in range(imc.num_states)]
    if StateClass.HYBRID in classes:
        raise TransformationError("make_markov_alternating requires an alternating IMC")

    fresh_index: dict[tuple[int, int], int] = {}
    fresh_target: dict[int, int] = {}
    next_id = imc.num_states
    names = list(imc.state_names) if imc.state_names else [str(s) for s in range(imc.num_states)]

    interactive = list(imc.interactive)
    markov: list[tuple[int, float, int]] = []
    for src, rate, dst in imc.markov:
        if classes[dst] is StateClass.MARKOV:
            pair = (src, dst)
            if pair not in fresh_index:
                fresh_index[pair] = next_id
                fresh_target[next_id] = dst
                names.append(f"({names[src]},{names[dst]})")
                interactive.append((next_id, TAU, dst))
                next_id += 1
            markov.append((src, rate, fresh_index[pair]))
        else:
            markov.append((src, rate, dst))

    result = IMC(
        num_states=next_id,
        interactive=interactive,
        markov=markov,
        initial=imc.initial,
        state_names=names,
    )
    return result, fresh_target


def _interactive_closures(
    imc: IMC, roots: list[int], max_words_per_state: int
) -> dict[int, set[tuple[tuple[str, ...], int]]]:
    """Compute, per interactive state, the set of ``(word, markov_state)`` pairs.

    ``s ==W==> t`` holds iff a sequence of interactive transitions leads
    from ``s`` through interactive states to the Markov state ``t``, and
    the visible actions along the way spell ``W`` (``tau`` steps are
    dropped; the all-internal word is the empty tuple).

    Raises
    ------
    TransformationError
        On interactive cycles (Zeno behaviour under urgency), on
        interactive deadlocks, and when the number of distinct
        ``(word, target)`` pairs of one state exceeds the cap.
    """
    classes = [imc.state_class(s) for s in range(imc.num_states)]
    memo: dict[int, set[tuple[tuple[str, ...], int]]] = {}
    on_stack: set[int] = set()

    limit = max(sys.getrecursionlimit(), imc.num_states + 1000)
    sys.setrecursionlimit(limit)

    def closure(state: int) -> set[tuple[tuple[str, ...], int]]:
        if state in memo:
            return memo[state]
        if state in on_stack:
            raise TransformationError(
                f"interactive cycle through state {imc.name_of(state)}: "
                "Zeno behaviour is not allowed under the closed-system view"
            )
        on_stack.add(state)
        results: set[tuple[tuple[str, ...], int]] = set()
        for action, target in imc.interactive_successors(state):
            prefix: tuple[str, ...] = () if action == TAU else (action,)
            target_class = classes[target]
            if target_class is StateClass.MARKOV:
                results.add((prefix, target))
            elif target_class is StateClass.INTERACTIVE:
                for word, markov_state in closure(target):
                    results.add((prefix + word, markov_state))
            else:  # ABSORBING (hybrid is excluded by step 1)
                raise TransformationError(
                    f"interactive deadlock: state {imc.name_of(target)} has no "
                    "outgoing transitions; the transformation assumes S_A is empty"
                )
            if len(results) > max_words_per_state:
                raise TransformationError(
                    f"word enumeration exceeded {max_words_per_state} entries at "
                    f"state {imc.name_of(state)}; the visible branching structure "
                    "is too rich -- hide more actions or raise the cap"
                )
        on_stack.discard(state)
        memo[state] = results
        return results

    for root in roots:
        closure(root)
    return memo


@dataclass
class AlternationResult:
    """Outcome of the full strictly-alternating transformation.

    Attributes
    ----------
    imc:
        The strictly alternating IMC.  Interactive transitions carry
        word labels (rendered via :func:`word_label`).
    interactive_states:
        The surviving interactive states ``S_I'`` (initial state plus
        states with a Markov predecessor), in a fixed order.  These
        become the CTMDP states.
    markov_states:
        The Markov states, in a fixed order; these are in one-to-one
        correspondence with the CTMDP rate functions.
    original_of:
        Per strictly-alternating state, the original-IMC state whose
        configuration it represents (synthetic step-2 states map to the
        Markov state they stutter into).
    """

    imc: IMC
    interactive_states: list[int]
    markov_states: list[int]
    original_of: list[int]


def make_interactive_alternating(
    imc: IMC,
    fresh_targets: dict[int, int],
    original_states: int,
    max_words_per_state: int = 1_000_000,
) -> AlternationResult:
    """Step (3): compress interactive sequences into word-labelled transitions.

    Parameters
    ----------
    imc:
        A Markov-alternating IMC (output of step 2).
    fresh_targets:
        Map from step-2 synthetic states to the Markov state they lead
        into, used to compute ``original_of``.
    original_states:
        Number of states of the pre-transformation IMC (original state
        indices are ``0 .. original_states - 1``).
    max_words_per_state:
        Safety cap on word enumeration per state.
    """
    classes = [imc.state_class(s) for s in range(imc.num_states)]

    if classes[imc.initial] is StateClass.ABSORBING:
        raise TransformationError("the initial state is absorbing; nothing to analyse")

    # Interactive states that survive: the initial state (if interactive)
    # plus every target of a Markov transition.
    relevant: list[int] = []
    seen: set[int] = set()
    if classes[imc.initial] is StateClass.INTERACTIVE:
        relevant.append(imc.initial)
        seen.add(imc.initial)
    for _src, _rate, dst in imc.markov:
        if dst not in seen:
            if classes[dst] is StateClass.ABSORBING:
                raise TransformationError(
                    f"Markov transition into absorbing state {imc.name_of(dst)}; "
                    "the transformation assumes S_A is empty"
                )
            if classes[dst] is StateClass.MARKOV:
                raise TransformationError(
                    "Markov transition into a Markov state; run step 2 first"
                )
            seen.add(dst)
            relevant.append(dst)

    closures = _interactive_closures(imc, relevant, max_words_per_state)

    # A Markov initial state is handled by a synthetic interactive
    # initial state with a single tau word into it (keeps the CTMDP
    # definition applicable without changing the behaviour).
    synthetic_initial = classes[imc.initial] is StateClass.MARKOV

    markov_states = sorted({src for src, _rate, _dst in imc.markov})
    markov_order = {m: k for k, m in enumerate(markov_states)}

    # Assemble the strictly alternating IMC: keep original indices for
    # Markov states and surviving interactive states; prune the rest.
    kept = list(relevant) + markov_states
    if synthetic_initial:
        new_initial_old_id = imc.num_states  # virtual fresh id
        kept = [new_initial_old_id] + kept
    index = {state: i for i, state in enumerate(kept)}

    names: list[str] = []
    for state in kept:
        if synthetic_initial and state == imc.num_states:
            names.append("<init>")
        else:
            names.append(imc.name_of(state))

    interactive: list[tuple[int, str, int]] = []
    for state in relevant:
        for word, markov_state in sorted(closures[state]):
            interactive.append((index[state], word_label(word), index[markov_state]))
    if synthetic_initial:
        interactive.append((index[imc.num_states], TAU, index[imc.initial]))

    markov = [
        (index[src], rate, index[dst])
        for src, rate, dst in imc.markov
        if dst in index  # targets are always relevant by construction
    ]

    result_imc = IMC(
        num_states=len(kept),
        interactive=interactive,
        markov=markov,
        initial=index[imc.num_states] if synthetic_initial else index[imc.initial],
        state_names=names,
    )

    # Map every kept state to the original state whose configuration it
    # carries: synthetic step-2 states stutter into their Markov target;
    # the synthetic initial carries the initial configuration.
    original_of: list[int] = []
    for state in kept:
        if synthetic_initial and state == imc.num_states:
            original_of.append(imc.initial if imc.initial < original_states else 0)
        elif state < original_states:
            original_of.append(state)
        else:
            # Step-2 synthetic state (s, s'): its configuration is s',
            # which is always an original Markov state.
            original_of.append(fresh_targets[state])

    interactive_new_ids = [index[s] for s in ([imc.num_states] if synthetic_initial else []) + relevant]
    markov_new_ids = [index[m] for m in markov_states]

    return AlternationResult(
        imc=result_imc,
        interactive_states=interactive_new_ids,
        markov_states=markov_new_ids,
        original_of=original_of,
    )


def strictly_alternating(imc: IMC, max_words_per_state: int = 1_000_000) -> AlternationResult:
    """Apply steps (1)-(3) to a closed IMC.

    The input is pruned to its (closed-view) reachable states first, so
    uniformity -- which the paper defines with respect to reachable
    states -- is judged on the relevant part only.  The returned
    ``original_of`` map refers to the state indices of the *unpruned*
    input, so predicates written against the caller's IMC keep working.
    """
    order = imc.reachable_states(closed=True)
    pruned = imc.restricted_to_reachable(closed=True)
    alternating = make_alternating(pruned)
    markov_alt, fresh_targets = make_markov_alternating(alternating)
    result = make_interactive_alternating(
        markov_alt,
        fresh_targets,
        original_states=pruned.num_states,
        max_words_per_state=max_words_per_state,
    )
    result.original_of = [order[i] for i in result.original_of]
    return result
