"""The elapse operator: phase-type time constraints as uniform IMCs.

``El(Ph, f, r)`` (Section 3 of the paper, a special case of the *time
constraint* operator of Hermanns & Katoen's plain-old telephone system
study) wraps a phase-type distribution ``Ph`` into an IMC with
"synchronisation potential":

* the action ``f`` may occur only once the ``Ph``-distributed delay has
  elapsed, i.e. only in the distinguished absorbing state ``a`` of the
  (uniformized) carrier chain;
* the action ``r`` (re)starts the delay: from every state it leads back
  to the entry state ``i``.

Because the carrier chain is uniformized before wrapping -- so even the
absorbing state keeps ticking with a Poisson self-loop -- every state of
``El(Ph, f, r)`` is stable with exit rate exactly the uniform rate of
``Ph``.  The elapse IMC is therefore **uniform by construction**, and by
Lemma 2 it contributes its rate additively to any composition it enters.
"""

from __future__ import annotations

from repro.ctmc.phase_type import PhaseType
from repro.errors import CompositionError
from repro.imc.model import IMC, TAU

__all__ = ["elapse"]


def elapse(
    ph: PhaseType,
    fire: str,
    reset: str,
    uniform_rate: float | None = None,
    started: bool = True,
) -> IMC:
    """Build the time-constraint IMC ``El(ph, fire, reset)``.

    Parameters
    ----------
    ph:
        The delay distribution.  It is uniformized internally (at
        ``uniform_rate``, defaulting to its maximal exit rate), so any
        phase-type may be passed.
    fire:
        The action whose occurrence is delayed: it is enabled exactly in
        the absorbing state of the carrier chain and leaves the state
        unchanged (the environment decides what happens next, typically
        by synchronising and subsequently issuing ``reset``).
    reset:
        The action that (re)starts the delay; enabled in every state,
        leading to the entry state of the carrier chain.
    uniform_rate:
        Optional uniformization rate override; must dominate the maximal
        exit rate of ``ph``.
    started:
        If true (default) the constraint starts with the delay running
        (entry state); otherwise it starts in the expired state, where
        ``fire`` is immediately enabled and the first ``reset`` arms the
        delay.  The FTWC failure constraints start armed, because every
        component is initially operational.

    Returns
    -------
    IMC
        A uniform IMC over the states of the uniformized carrier chain.

    Raises
    ------
    CompositionError
        If ``fire`` or ``reset`` is ``tau`` (time constraints must be
        controllable by composition) or if both coincide.
    """
    if fire == TAU or reset == TAU:
        raise CompositionError("elapse actions must be visible (not tau)")
    if fire == reset:
        raise CompositionError("elapse needs distinct fire and reset actions")

    uniform = ph.uniformized(uniform_rate)
    chain = uniform.chain
    n = chain.num_states

    interactive: list[tuple[int, str, int]] = [(uniform.absorbing, fire, uniform.absorbing)]
    # Resetting while already at the entry state is a no-op; omitting the
    # degenerate self-loop avoids spurious Zeno cycles once the reset
    # action is hidden.
    interactive.extend(
        (state, reset, uniform.initial)
        for state in range(n)
        if state != uniform.initial
    )

    markov = [
        (src, rate, dst)
        for src in range(n)
        for dst, rate in chain.successors(src)
    ]

    names = [f"ph{k}" for k in range(n)]
    names[uniform.initial] = "armed"
    names[uniform.absorbing] = "expired"

    return IMC(
        num_states=n,
        interactive=interactive,
        markov=markov,
        initial=uniform.initial if started else uniform.absorbing,
        state_names=names,
    )
