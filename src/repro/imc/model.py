"""Interactive Markov chains (IMCs).

An IMC (Definition 3 of the paper) orthogonally combines a labelled
transition system (interactive transitions ``s --a--> s'``) with a CTMC
(Markov transitions ``s --lambda--> s'``).  Two interpretations of the
same object are distinguished:

* the **open** view, in which the IMC may still be composed with an
  environment; here the *maximal progress* assumption applies: internal
  ``tau`` transitions preempt Markov transitions, while visible actions
  (being delayable by composition) do not;
* the **closed** view, applied to complete models only; here the
  *urgency* assumption applies: every interactive transition preempts
  Markov transitions.

Uniformity (Definition 4) constrains only the *stable* states -- those
without outgoing ``tau`` -- to share one exit rate ``E``.  LTSs are the
``E = 0`` instance, CTMCs the instance with empty interactive relation.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import ModelError

__all__ = ["TAU", "StateClass", "IMC", "IMCBuilder"]

#: The distinguished internal action.
TAU = "tau"


class StateClass(enum.Enum):
    """State partitioning of Section 2 of the paper."""

    MARKOV = "markov"  #: at least one Markov, no interactive transition (S_M)
    INTERACTIVE = "interactive"  #: at least one interactive, no Markov transition (S_I)
    HYBRID = "hybrid"  #: both kinds of outgoing transitions (S_H)
    ABSORBING = "absorbing"  #: no outgoing transitions at all (S_A)


@dataclass
class IMC:
    """An interactive Markov chain with explicit transition lists.

    Attributes
    ----------
    num_states:
        Size of the state space; states are ``0 .. num_states - 1``.
    interactive:
        List of interactive transitions ``(source, action, target)``.
        The action :data:`TAU` is the internal action.
    markov:
        List of Markov transitions ``(source, rate, target)``.  The list
        is a *relation with multiplicities*: several entries between the
        same pair of states are allowed and their rates accumulate in
        ``Rate(s, s')``.
    initial:
        Index of the initial state.
    state_names:
        Optional human-readable state names.
    """

    num_states: int
    interactive: list[tuple[int, str, int]] = field(default_factory=list)
    markov: list[tuple[int, float, int]] = field(default_factory=list)
    initial: int = 0
    state_names: list[str] | None = None

    def __post_init__(self) -> None:
        if self.num_states <= 0:
            raise ModelError("an IMC needs at least one state")
        if not 0 <= self.initial < self.num_states:
            raise ModelError(f"initial state {self.initial} out of range")
        if self.state_names is not None and len(self.state_names) != self.num_states:
            raise ModelError("state_names length must match the number of states")
        for src, action, dst in self.interactive:
            if not (0 <= src < self.num_states and 0 <= dst < self.num_states):
                raise ModelError(f"interactive transition ({src}, {action}, {dst}) out of range")
            if not action:
                raise ModelError("actions must be non-empty strings")
        for src, rate, dst in self.markov:
            if not (0 <= src < self.num_states and 0 <= dst < self.num_states):
                raise ModelError(f"Markov transition ({src}, {rate}, {dst}) out of range")
            if not (math.isfinite(rate) and rate > 0.0):
                raise ModelError(f"Markov rates must be positive and finite, got {rate}")
        self._inter_by_src: list[list[tuple[str, int]]] | None = None
        self._markov_by_src: list[list[tuple[float, int]]] | None = None
        self._stable_mask: np.ndarray | None = None
        self._encoded_interactive: tuple | None = None
        self._encoded_markov: tuple | None = None

    # ------------------------------------------------------------------
    # Adjacency caches
    # ------------------------------------------------------------------
    def _interactive_adj(self) -> list[list[tuple[str, int]]]:
        if self._inter_by_src is None:
            adj: list[list[tuple[str, int]]] = [[] for _ in range(self.num_states)]
            for src, action, dst in self.interactive:
                adj[src].append((action, dst))
            self._inter_by_src = adj
        return self._inter_by_src

    def _markov_adj(self) -> list[list[tuple[float, int]]]:
        if self._markov_by_src is None:
            adj: list[list[tuple[float, int]]] = [[] for _ in range(self.num_states)]
            for src, rate, dst in self.markov:
                adj[src].append((rate, dst))
            self._markov_by_src = adj
        return self._markov_by_src

    def interactive_successors(self, state: int) -> list[tuple[str, int]]:
        """All ``(action, target)`` pairs of interactive transitions from ``state``."""
        return self._interactive_adj()[state]

    def markov_successors(self, state: int) -> list[tuple[float, int]]:
        """All ``(rate, target)`` pairs of Markov transitions from ``state``."""
        return self._markov_adj()[state]

    # ------------------------------------------------------------------
    # Vectorised views (shared by the bisimulation engines)
    # ------------------------------------------------------------------
    def stable_mask(self) -> np.ndarray:
        """Boolean array: ``mask[s]`` iff ``s`` has no outgoing ``tau``."""
        if self._stable_mask is None:
            mask = np.ones(self.num_states, dtype=bool)
            for src, action, _ in self.interactive:
                if action == TAU:
                    mask[src] = False
            self._stable_mask = mask
        return self._stable_mask

    def encoded_interactive(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[str]]:
        """Interactive transitions as ``(src, act, dst, actions)`` arrays.

        ``act`` holds indices into the returned ``actions`` table;
        :data:`TAU` is always action code ``0`` (present in the table
        even when the model has no internal transitions).  The arrays
        are cached on the (immutable-by-convention) model.
        """
        if self._encoded_interactive is None:
            codes: dict[str, int] = {TAU: 0}
            count = len(self.interactive)
            src = np.empty(count, dtype=np.int64)
            act = np.empty(count, dtype=np.int64)
            dst = np.empty(count, dtype=np.int64)
            for i, (s, action, t) in enumerate(self.interactive):
                src[i] = s
                dst[i] = t
                code = codes.get(action)
                if code is None:
                    code = codes[action] = len(codes)
                act[i] = code
            actions = [""] * len(codes)
            for action, code in codes.items():
                actions[code] = action
            self._encoded_interactive = (src, act, dst, actions)
        return self._encoded_interactive

    def encoded_markov(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Markov transitions as ``(src, rate, dst)`` arrays (cached)."""
        if self._encoded_markov is None:
            count = len(self.markov)
            src = np.empty(count, dtype=np.int64)
            rate = np.empty(count, dtype=np.float64)
            dst = np.empty(count, dtype=np.int64)
            for i, (s, r, t) in enumerate(self.markov):
                src[i] = s
                rate[i] = r
                dst[i] = t
            self._encoded_markov = (src, rate, dst)
        return self._encoded_markov

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    def actions(self) -> set[str]:
        """The set of actions occurring on interactive transitions."""
        return {action for _, action, _ in self.interactive}

    def visible_actions(self) -> set[str]:
        """All occurring actions except :data:`TAU`."""
        return self.actions() - {TAU}

    def is_stable(self, state: int) -> bool:
        """A state is *stable* iff it has no outgoing ``tau`` transition."""
        return all(action != TAU for action, _ in self.interactive_successors(state))

    def state_class(self, state: int) -> StateClass:
        """Classify ``state`` into Markov / interactive / hybrid / absorbing."""
        has_inter = bool(self.interactive_successors(state))
        has_markov = bool(self.markov_successors(state))
        if has_inter and has_markov:
            return StateClass.HYBRID
        if has_inter:
            return StateClass.INTERACTIVE
        if has_markov:
            return StateClass.MARKOV
        return StateClass.ABSORBING

    def partition(self) -> dict[StateClass, list[int]]:
        """Partition ``S = S_M + S_I + S_H + S_A`` as in Section 2."""
        result: dict[StateClass, list[int]] = {cls: [] for cls in StateClass}
        for state in range(self.num_states):
            result[self.state_class(state)].append(state)
        return result

    def exit_rate(self, state: int) -> float:
        """The exit rate ``E_s = r(s, S)`` (order-independent ``fsum``)."""
        return math.fsum(rate for rate, _ in self.markov_successors(state))

    def rate(self, src: int, dst: int) -> float:
        """Cumulative rate ``Rate(src, dst)``."""
        return math.fsum(
            rate for rate, target in self.markov_successors(src) if target == dst
        )

    def rate_into(self, src: int, targets: Iterable[int]) -> float:
        """Cumulative rate ``r(src, C)`` into a set of states ``C``."""
        target_set = set(targets)
        return math.fsum(
            rate for rate, dst in self.markov_successors(src) if dst in target_set
        )

    # ------------------------------------------------------------------
    # Reachability and uniformity
    # ------------------------------------------------------------------
    def reachable_states(self, closed: bool = False) -> list[int]:
        """States reachable from the initial state, in exploration order.

        Under the open view (``closed=False``), Markov transitions of
        ``tau``-unstable states are not explored (maximal progress);
        under the closed view, Markov transitions of any state with an
        interactive transition are skipped (urgency).
        """
        seen = {self.initial}
        frontier = [self.initial]
        order = [self.initial]
        inter = self._interactive_adj()
        markov = self._markov_adj()
        while frontier:
            state = frontier.pop()
            successors: list[int] = [dst for _, dst in inter[state]]
            preempted = bool(inter[state]) if closed else not self.is_stable(state)
            if not preempted:
                successors.extend(dst for _, dst in markov[state])
            for dst in successors:
                if dst not in seen:
                    seen.add(dst)
                    order.append(dst)
                    frontier.append(dst)
        return order

    def is_uniform(self, tol: float = 1e-9, closed: bool = False) -> bool:
        """Uniformity check (Definition 4), restricted to reachable states.

        ``True`` iff all reachable stable states share one exit rate.
        Following the paper, unreachable states may carry arbitrary rates.
        """
        rates = [
            self.exit_rate(state)
            for state in self.reachable_states(closed=closed)
            if self.is_stable(state)
        ]
        if not rates:
            return True
        reference = rates[0]
        return all(abs(rate - reference) <= tol * max(1.0, abs(reference)) for rate in rates)

    def uniform_rate(self, tol: float = 1e-9, closed: bool = False) -> float:
        """The common exit rate ``E`` of a uniform IMC.

        Raises
        ------
        ModelError
            If the IMC is not uniform on its reachable states.
        """
        if not self.is_uniform(tol=tol, closed=closed):
            raise ModelError("IMC is not uniform on its reachable states")
        for state in self.reachable_states(closed=closed):
            if self.is_stable(state):
                return self.exit_rate(state)
        return 0.0

    # ------------------------------------------------------------------
    # Structural helpers
    # ------------------------------------------------------------------
    def restricted_to_reachable(self, closed: bool = False) -> "IMC":
        """Prune unreachable states, renumbering the survivors."""
        order = self.reachable_states(closed=closed)
        index = {state: i for i, state in enumerate(order)}
        keep = set(order)
        names = None
        if self.state_names is not None:
            names = [self.state_names[s] for s in order]
        return IMC(
            num_states=len(order),
            interactive=[
                (index[s], a, index[t])
                for s, a, t in self.interactive
                if s in keep and t in keep
            ],
            markov=[
                (index[s], r, index[t])
                for s, r, t in self.markov
                if s in keep and t in keep
            ],
            initial=index[self.initial],
            state_names=names,
        )

    def name_of(self, state: int) -> str:
        """Readable name of ``state`` (falls back to the index)."""
        if self.state_names is not None:
            return self.state_names[state]
        return str(state)

    @property
    def num_interactive_transitions(self) -> int:
        """Number of interactive transitions."""
        return len(self.interactive)

    @property
    def num_markov_transitions(self) -> int:
        """Number of Markov transitions."""
        return len(self.markov)

    def is_lts(self) -> bool:
        """True iff the Markov transition relation is empty."""
        return not self.markov

    def is_ctmc(self) -> bool:
        """True iff the interactive transition relation is empty."""
        return not self.interactive

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IMC(states={self.num_states}, interactive={len(self.interactive)}, "
            f"markov={len(self.markov)}, initial={self.initial})"
        )


class IMCBuilder:
    """Incremental construction of IMCs with named states.

    Example
    -------
    >>> b = IMCBuilder()
    >>> up = b.state("up")
    >>> down = b.state("down")
    >>> b.interactive(up, "fail", down)
    >>> b.markov(down, 2.0, up)
    >>> imc = b.build(initial=up)
    """

    def __init__(self) -> None:
        self._names: list[str] = []
        self._index: dict[str, int] = {}
        self._interactive: list[tuple[int, str, int]] = []
        self._markov: list[tuple[int, float, int]] = []

    def state(self, name: str | None = None) -> int:
        """Create (or fetch) a state; returns its index."""
        if name is not None and name in self._index:
            return self._index[name]
        idx = len(self._names)
        if name is None:
            name = f"s{idx}"
        if name in self._index:
            raise ModelError(f"duplicate state name {name!r}")
        self._names.append(name)
        self._index[name] = idx
        return idx

    def interactive(self, src: int, action: str, dst: int) -> "IMCBuilder":
        """Add an interactive transition; returns ``self`` for chaining."""
        self._interactive.append((src, action, dst))
        return self

    def tau(self, src: int, dst: int) -> "IMCBuilder":
        """Add an internal transition."""
        return self.interactive(src, TAU, dst)

    def markov(self, src: int, rate: float, dst: int) -> "IMCBuilder":
        """Add a Markov transition; returns ``self`` for chaining."""
        self._markov.append((src, float(rate), dst))
        return self

    def build(self, initial: int = 0) -> IMC:
        """Finalise the IMC."""
        return IMC(
            num_states=len(self._names),
            interactive=list(self._interactive),
            markov=list(self._markov),
            initial=initial,
            state_names=list(self._names),
        )
