"""Labelled transition systems as the Markov-free special case of IMCs.

The paper treats LTSs as IMCs whose Markov transition relation is empty;
by definition they are uniform with rate ``E = 0``.  This module provides
small conveniences for building the behavioural skeletons (workstations,
switches, repair units, ...) that are later composed with time
constraints.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.errors import ModelError
from repro.imc.model import IMC

__all__ = ["lts", "cycle_lts"]


def lts(
    num_states: int,
    transitions: Iterable[tuple[int, str, int]],
    initial: int = 0,
    state_names: Sequence[str] | None = None,
) -> IMC:
    """Build an LTS (an IMC without Markov transitions).

    Parameters
    ----------
    num_states:
        Number of states.
    transitions:
        Interactive transitions as ``(source, action, target)`` triples.
    initial:
        Initial state index.
    state_names:
        Optional state names.
    """
    return IMC(
        num_states=num_states,
        interactive=list(transitions),
        markov=[],
        initial=initial,
        state_names=list(state_names) if state_names is not None else None,
    )


def cycle_lts(actions: Sequence[str], state_names: Sequence[str] | None = None) -> IMC:
    """An LTS cycling through ``actions``: ``s0 -a0-> s1 -a1-> ... -> s0``.

    This is the shape of every FTWC component (Figure 2 of the paper):
    a workstation cycles through ``fail``, ``grab``, ``repair``,
    ``release`` and is back in its operational state.
    """
    if not actions:
        raise ModelError("cycle_lts needs at least one action")
    n = len(actions)
    transitions = [(k, actions[k], (k + 1) % n) for k in range(n)]
    if state_names is not None and len(state_names) != n:
        raise ModelError("cycle_lts needs one state name per action")
    return lts(n, transitions, initial=0, state_names=state_names)
