"""Model linting: diagnose an IMC before transformation and analysis.

The transformation pipeline rejects bad models with exceptions at the
point of failure; this linter instead collects *all* problems (and
warnings) of a model in one pass, with state names attached -- the kind
of diagnostics one wants while building a new model:

* Zeno cycles (interactive cycles, fatal under the closed view),
* interactive deadlocks reachable through Markov transitions (fatal),
* non-uniformity with the offending states and rates (fatal for
  Algorithm 1),
* remaining visible actions in a model about to be closed (warning:
  they will be treated as urgent),
* unreachable states (warning: they are ignored but usually indicate a
  modelling slip).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.imc.model import IMC, TAU, StateClass

__all__ = ["Severity", "Finding", "lint_imc"]


class Severity(enum.Enum):
    """How bad a finding is."""

    ERROR = "error"  #: the transformation/analysis will fail or be unsound
    WARNING = "warning"  #: suspicious but well-defined


@dataclass(frozen=True)
class Finding:
    """One diagnostic."""

    severity: Severity
    code: str
    message: str
    states: tuple[int, ...] = ()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.severity.value}] {self.code}: {self.message}"


def _interactive_cycle(imc: IMC, reachable: set[int]) -> tuple[int, ...] | None:
    """Find a cycle of interactive transitions among reachable states."""
    colour: dict[int, int] = {}
    stack_trace: list[int] = []

    def visit(state: int) -> tuple[int, ...] | None:
        colour[state] = 1
        stack_trace.append(state)
        for _action, target in imc.interactive_successors(state):
            if target not in reachable:
                continue
            mark = colour.get(target, 0)
            if mark == 1:
                cycle_start = stack_trace.index(target)
                return tuple(stack_trace[cycle_start:])
            if mark == 0:
                found = visit(target)
                if found is not None:
                    return found
        colour[state] = 2
        stack_trace.pop()
        return None

    for state in reachable:
        if colour.get(state, 0) == 0:
            found = visit(state)
            if found is not None:
                return found
    return None


def lint_imc(imc: IMC, closed: bool = True) -> list[Finding]:
    """Collect diagnostics for ``imc``.

    Parameters
    ----------
    imc:
        The model to check.
    closed:
        Analyse under the closed-system view (urgency); this is the view
        of the transformation pipeline.

    Returns
    -------
    list[Finding]
        All findings, errors first.
    """
    findings: list[Finding] = []
    reachable = set(imc.reachable_states(closed=closed))

    # --- Zeno cycles. --------------------------------------------------
    cycle = _interactive_cycle(imc, reachable)
    if cycle is not None:
        names = " -> ".join(imc.name_of(s) for s in cycle)
        findings.append(
            Finding(
                severity=Severity.ERROR,
                code="zeno-cycle",
                message=f"interactive cycle ({names}): Zeno under urgency",
                states=cycle,
            )
        )

    # --- Absorbing states (interactive deadlocks). ----------------------
    dead = tuple(
        s
        for s in sorted(reachable)
        if imc.state_class(s) is StateClass.ABSORBING
    )
    if dead:
        findings.append(
            Finding(
                severity=Severity.ERROR,
                code="deadlock",
                message=(
                    f"{len(dead)} reachable state(s) without outgoing "
                    "transitions; the transformation assumes none"
                ),
                states=dead,
            )
        )

    # --- Uniformity. ----------------------------------------------------
    stable_rates = {
        s: imc.exit_rate(s)
        for s in sorted(reachable)
        if imc.is_stable(s)
    }
    if stable_rates:
        rates = sorted(set(round(r, 9) for r in stable_rates.values()))
        if len(rates) > 1:
            offenders = tuple(
                s for s, r in stable_rates.items() if round(r, 9) != rates[-1]
            )
            findings.append(
                Finding(
                    severity=Severity.ERROR,
                    code="non-uniform",
                    message=(
                        f"stable exit rates span {rates[0]:g}..{rates[-1]:g}; "
                        "Algorithm 1 requires a uniform model"
                    ),
                    states=offenders,
                )
            )

    # --- Visible actions in a closed model. -----------------------------
    if closed:
        visible = sorted(
            {
                action
                for s in reachable
                for action, _t in imc.interactive_successors(s)
                if action != TAU
            }
        )
        if visible:
            findings.append(
                Finding(
                    severity=Severity.WARNING,
                    code="visible-actions",
                    message=(
                        f"visible actions remain ({', '.join(visible[:5])}"
                        f"{', ...' if len(visible) > 5 else ''}); under the "
                        "closed view they are urgent like tau"
                    ),
                )
            )

    # --- Unreachable states. ---------------------------------------------
    unreachable = tuple(s for s in range(imc.num_states) if s not in reachable)
    if unreachable:
        findings.append(
            Finding(
                severity=Severity.WARNING,
                code="unreachable",
                message=f"{len(unreachable)} state(s) unreachable; they are ignored",
                states=unreachable,
            )
        )

    findings.sort(key=lambda f: (f.severity is not Severity.ERROR, f.code))
    return findings
