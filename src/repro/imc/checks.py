"""Backwards-compatible facade over :mod:`repro.lint`.

This module used to host the IMC linter with its own ``Finding`` type
and slug codes (``zeno-cycle``, ``deadlock``, ``non-uniform``,
``visible-actions``, ``unreachable``).  The linter now lives in
:mod:`repro.lint.analyzers` as part of the unified diagnostic framework,
emitting :class:`~repro.lint.diagnostics.Diagnostic` records with stable
codes (``A001``, ``A002``, ``U001``, ``S003``, ``S001`` respectively --
the full mapping is documented in :mod:`repro.lint.analyzers`).

Existing callers keep working: ``lint_imc`` is re-exported, ``Finding``
is an alias of ``Diagnostic`` (same ``severity``/``code``/``message``/
``states`` fields), and ``Severity`` is the shared enum.  New code
should import from :mod:`repro.lint` directly.
"""

from __future__ import annotations

from repro.lint.analyzers import lint_imc
from repro.lint.diagnostics import Diagnostic, Severity

#: Backwards-compatible alias; historic callers pattern-matched on
#: ``Finding(severity=..., code=..., message=..., states=...)``.
Finding = Diagnostic

__all__ = ["Severity", "Finding", "lint_imc"]
