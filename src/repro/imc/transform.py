"""From strictly alternating uIMCs to uCTMDPs.

The final move of Section 4.1: a strictly alternating IMC
``(S_I + S_M, Words, -->, --->, s0)`` is read as the CTMDP
``(S_I, Words, R, s0)`` whose transitions are

    (s, W, R)  with  R(s') = sum of the rates lambda_i
               iff   s ==W==> u  and  u --lambda_i--> s'

for a terminal Markov state ``u``.  Each Markov state contributes
exactly one rate function, so the CTMDP keeps one transition per
``(interactive state, word, Markov state)`` triple -- this is why the
paper's CTMDP variation permits several transitions with the same
action label.

The module also produces the model statistics reported in Table 1
(interactive/Markov state and transition counts, memory) and the goal
set plumbing needed to evaluate state predicates of the *original* IMC
on the transformed CTMDP.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.ctmdp import CTMDP
from repro.errors import TransformationError
from repro.imc.alternating import AlternationResult, strictly_alternating
from repro.imc.model import IMC
from repro.obs import span

__all__ = ["TransformStatistics", "TransformResult", "imc_to_ctmdp"]


@dataclass(frozen=True)
class TransformStatistics:
    """Size and timing statistics of one transformation run.

    The fields mirror the columns of Table 1: states and transitions of
    the strictly alternating IMC, differentiated into interactive and
    Markov parts, the memory footprint of the CTMDP representation, and
    the wall-clock transformation time.
    """

    interactive_states: int
    markov_states: int
    interactive_transitions: int
    markov_transitions: int
    memory_bytes: int
    transform_seconds: float

    def as_row(self) -> dict[str, float | int]:
        """Dictionary form, convenient for table rendering."""
        return {
            "inter_states": self.interactive_states,
            "markov_states": self.markov_states,
            "inter_transitions": self.interactive_transitions,
            "markov_transitions": self.markov_transitions,
            "memory_bytes": self.memory_bytes,
            "transform_seconds": self.transform_seconds,
        }


@dataclass
class TransformResult:
    """A transformed model with its provenance.

    Attributes
    ----------
    ctmdp:
        The resulting (uniform, if the input was uniform) CTMDP.
    alternation:
        The underlying strictly alternating IMC and its state maps.
    state_original:
        Per CTMDP state, the original-IMC state whose configuration it
        represents (synthetic alternation states map to the state they
        stutter into).
    row_original:
        Per CTMDP transition row (= Markov state of the alternating
        IMC), the original-IMC state of that Markov state.
    statistics:
        Table-1-style size and timing statistics.
    """

    ctmdp: CTMDP
    alternation: AlternationResult
    state_original: np.ndarray
    row_original: np.ndarray
    statistics: TransformStatistics

    def goal_mask_from_predicate(
        self, predicate: Callable[[int], bool], via: str = "markov"
    ) -> np.ndarray:
        """Boolean goal mask over CTMDP states from an original-state predicate.

        Parameters
        ----------
        predicate:
            Predicate over *original* IMC state indices.
        via:
            ``"markov"`` (default) marks a CTMDP state as goal iff one of
            its transitions enters a Markov state satisfying the
            predicate.  Because time passes in Markov states only, this
            captures "the system dwells in a goal configuration" at the
            instant it is entered and is the faithful reading for
            worst-case (``sup``) reachability.
            ``"interactive"`` marks a CTMDP state by its own
            configuration; it lags goal entry by the word that leads
            into the goal configuration.
        """
        n = self.ctmdp.num_states
        if via == "interactive":
            return np.array([predicate(int(s)) for s in self.state_original], dtype=bool)
        if via != "markov":
            raise ValueError(f"unknown goal mapping {via!r}")
        row_goal = np.array([predicate(int(s)) for s in self.row_original], dtype=bool)
        mask = np.zeros(n, dtype=bool)
        np.logical_or.at(mask, self.ctmdp.sources, row_goal)
        return mask


def imc_to_ctmdp(
    imc: IMC, max_words_per_state: int = 1_000_000, require_uniform: bool = False
) -> TransformResult:
    """Transform a closed IMC into a CTMDP (Section 4.1 end-to-end).

    Parameters
    ----------
    imc:
        The closed IMC.  All remaining visible actions are treated as
        urgent; typically the caller has hidden the full alphabet.
    max_words_per_state:
        Safety cap for the word enumeration of step (3).
    require_uniform:
        If true, raise if the resulting CTMDP is not uniform (use this
        when the model is meant to be uniform by construction and a
        violation indicates a modelling bug).

    Returns
    -------
    TransformResult
    """
    with span("imc.transform", states=imc.num_states) as sp:
        result = _imc_to_ctmdp(imc, max_words_per_state, require_uniform)
        if sp is not None:
            sp.annotate(
                interactive_states=result.statistics.interactive_states,
                markov_states=result.statistics.markov_states,
            )
    return result


def _imc_to_ctmdp(
    imc: IMC, max_words_per_state: int, require_uniform: bool
) -> TransformResult:
    started = time.perf_counter()
    alternation = strictly_alternating(imc, max_words_per_state=max_words_per_state)
    alt = alternation.imc

    interactive_index = {s: i for i, s in enumerate(alternation.interactive_states)}
    markov_rates: dict[int, dict[int, float]] = {m: {} for m in alternation.markov_states}
    for src, rate, dst in alt.markov:
        if dst not in interactive_index:
            raise TransformationError(
                "Markov transition into a pruned state; alternation is inconsistent"
            )
        targets = markov_rates[src]
        targets[interactive_index[dst]] = targets.get(interactive_index[dst], 0.0) + rate

    transitions: list[tuple[int, str, dict[int, float]]] = []
    row_original: list[int] = []
    for src, word, markov_state in alt.interactive:
        if src not in interactive_index:
            raise TransformationError(
                "interactive transition from a pruned state; alternation is inconsistent"
            )
        rates = markov_rates.get(markov_state)
        if rates is None:
            raise TransformationError(
                f"word transition into non-Markov state {alt.name_of(markov_state)}"
            )
        transitions.append((interactive_index[src], word, rates))
        row_original.append(alternation.original_of[markov_state])

    names = [alt.name_of(s) for s in alternation.interactive_states]
    ctmdp = CTMDP.from_transitions(
        num_states=len(alternation.interactive_states),
        transitions=transitions,
        initial=interactive_index[alt.initial],
        state_names=names,
    )

    # from_transitions sorts by source; rebuild row_original in the same
    # order by replaying the sort key (stable sort on source).
    order = np.argsort([t[0] for t in transitions], kind="stable")
    row_original_sorted = np.array(row_original, dtype=np.int64)[order]

    state_original = np.array(
        [alternation.original_of[s] for s in alternation.interactive_states],
        dtype=np.int64,
    )

    elapsed = time.perf_counter() - started
    statistics = TransformStatistics(
        interactive_states=len(alternation.interactive_states),
        markov_states=len(alternation.markov_states),
        interactive_transitions=len(alt.interactive),
        markov_transitions=len(alt.markov),
        memory_bytes=ctmdp.memory_bytes(),
        transform_seconds=elapsed,
    )

    result = TransformResult(
        ctmdp=ctmdp,
        alternation=alternation,
        state_original=state_original,
        row_original=row_original_sorted,
        statistics=statistics,
    )
    if require_uniform and not ctmdp.is_uniform(tol=1e-6):
        raise TransformationError(
            "transformation produced a non-uniform CTMDP although uniformity "
            "was required; the input IMC is not uniform on its reachable states"
        )
    return result
