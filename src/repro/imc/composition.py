"""Compositional operators on IMCs: hiding, relabelling, parallel composition.

These implement the structural operational semantics of Section 3 of the
paper.  The central formal results -- Lemma 1 (hiding preserves
uniformity) and Lemma 2 (parallel composition preserves uniformity, the
uniform rates adding up) -- are consequences of these rules and are
exercised as executable properties in the test suite.

Parallel composition explores the product state space on the fly from
the pair of initial states, so unreachable product states are never
materialised; this matters because the intermediate state spaces of
compositional construction are the dominant cost (cf. the
"Technicalities" paragraph of Section 5).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Mapping, Sequence

from repro.errors import CompositionError
from repro.imc.model import IMC, TAU

__all__ = ["hide", "hide_all_but", "relabel", "parallel", "parallel_many", "parallel_with_map", "interleave"]


def hide(imc: IMC, actions: Iterable[str]) -> IMC:
    """Internalise ``actions``: each becomes the internal action ``tau``.

    Markov transitions are untouched (third SOS rule of the hiding
    operator).  Hiding preserves uniformity (Lemma 1): it never creates
    new stable states, it only makes states unstable.
    """
    hidden = set(actions)
    if TAU in hidden:
        raise CompositionError("tau cannot be hidden; it is already internal")
    return IMC(
        num_states=imc.num_states,
        interactive=[
            (src, TAU if action in hidden else action, dst)
            for src, action, dst in imc.interactive
        ],
        markov=list(imc.markov),
        initial=imc.initial,
        state_names=list(imc.state_names) if imc.state_names else None,
    )


def hide_all_but(imc: IMC, keep: Iterable[str] = ()) -> IMC:
    """Hide every visible action except those in ``keep``.

    Convenience for the *closed system view*: complete models are closed
    for interaction by hiding their entire alphabet.
    """
    keep_set = set(keep)
    return hide(imc, imc.visible_actions() - keep_set)


def relabel(imc: IMC, mapping: Mapping[str, str]) -> IMC:
    """Process-algebraic relabelling of visible actions.

    Used in the FTWC construction to instantiate the generic component
    (actions ``g``, ``r``) for a concrete component (``g_wsL``,
    ``r_wsL``).  Relabelling ``tau`` or onto ``tau`` is rejected; use
    :func:`hide` for internalisation.
    """
    if TAU in mapping:
        raise CompositionError("tau cannot be relabelled")
    if TAU in mapping.values():
        raise CompositionError("relabelling onto tau is hiding; use hide()")
    return IMC(
        num_states=imc.num_states,
        interactive=[
            (src, mapping.get(action, action), dst) for src, action, dst in imc.interactive
        ],
        markov=list(imc.markov),
        initial=imc.initial,
        state_names=list(imc.state_names) if imc.state_names else None,
    )


def parallel(left: IMC, right: IMC, sync: Iterable[str] = ()) -> IMC:
    """CSP/LOTOS-style parallel composition ``left |[sync]| right``.

    Interactive transitions with actions in ``sync`` require both
    partners to move together; all other interactive transitions and all
    Markov transitions are interleaved (the latter justified by the
    memorylessness of exponential distributions).  Only the product
    states reachable from ``(left.initial, right.initial)`` are built.

    Uniformity is preserved and the uniform rates add up (Lemma 2):
    every stable product state combines a stable left state (rate
    ``E_left``) with a stable right state (rate ``E_right``).
    """
    product, _pairs = parallel_with_map(left, right, sync)
    return product


def parallel_with_map(
    left: IMC, right: IMC, sync: Iterable[str] = ()
) -> tuple[IMC, list[tuple[int, int]]]:
    """Like :func:`parallel`, additionally returning the product-state map.

    The second component lists, per product state, the contributing
    ``(left state, right state)`` pair -- needed to combine per-state
    annotations (e.g. the FTWC observation labels) through composition.
    """
    sync_set = set(sync)
    if TAU in sync_set:
        raise CompositionError("tau cannot synchronise")

    index: dict[tuple[int, int], int] = {}
    names: list[str] = []
    pairs: list[tuple[int, int]] = []

    def state_id(pair: tuple[int, int]) -> int:
        if pair not in index:
            index[pair] = len(index)
            pairs.append(pair)
            names.append(f"{left.name_of(pair[0])}|{right.name_of(pair[1])}")
        return index[pair]

    start = (left.initial, right.initial)
    state_id(start)
    queue: deque[tuple[int, int]] = deque([start])
    explored: set[tuple[int, int]] = {start}

    interactive: list[tuple[int, str, int]] = []
    markov: list[tuple[int, float, int]] = []

    while queue:
        pair = queue.popleft()
        s, v = pair
        src = state_id(pair)
        successors: list[tuple[int, int]] = []

        # Interactive moves of the left component.
        for action, s2 in left.interactive_successors(s):
            if action in sync_set:
                for other_action, v2 in right.interactive_successors(v):
                    if other_action == action:
                        target = (s2, v2)
                        interactive.append((src, action, state_id(target)))
                        successors.append(target)
            else:
                target = (s2, v)
                interactive.append((src, action, state_id(target)))
                successors.append(target)

        # Independent interactive moves of the right component.
        for action, v2 in right.interactive_successors(v):
            if action not in sync_set:
                target = (s, v2)
                interactive.append((src, action, state_id(target)))
                successors.append(target)

        # Markov transitions interleave on both sides.
        for rate, s2 in left.markov_successors(s):
            target = (s2, v)
            markov.append((src, rate, state_id(target)))
            successors.append(target)
        for rate, v2 in right.markov_successors(v):
            target = (s, v2)
            markov.append((src, rate, state_id(target)))
            successors.append(target)

        for target in successors:
            if target not in explored:
                explored.add(target)
                queue.append(target)

    product = IMC(
        num_states=len(index),
        interactive=interactive,
        markov=markov,
        initial=0,
        state_names=names,
    )
    return product, pairs


def interleave(left: IMC, right: IMC) -> IMC:
    """Pure interleaving ``left ||| right`` (empty synchronisation set)."""
    return parallel(left, right, sync=())


def parallel_many(components: Sequence[IMC], sync: Iterable[str] = ()) -> IMC:
    """Left-associated fold of :func:`parallel` over ``components``.

    ``parallel_many([a, b, c], A)`` builds ``(a |[A]| b) |[A]| c``; with
    CSP semantics this realises multi-way synchronisation on ``A``.
    """
    if not components:
        raise CompositionError("parallel_many needs at least one component")
    result = components[0]
    for component in components[1:]:
        result = parallel(result, component, sync)
    return result
