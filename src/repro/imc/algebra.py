"""A small process algebra for building LTSs declaratively.

The paper's models are written in a LOTOS-style process calculus and
compiled by CADP; this module provides the corresponding front-end for
the behavioural (interactive) layer: named process equations over
action prefix, choice, and process references.  Example -- the FTWC
component of Figure 2::

    spec = ProcessSpec()
    spec.define("Component", prefix("fail", prefix("g", prefix("rep",
                prefix("r", ref("Component"))))))
    component = spec.to_lts("Component")

Terms
-----
* ``prefix(action, continuation)`` -- perform ``action``, continue;
* ``choice(term, term, ...)`` -- nondeterministic alternative;
* ``ref(name)`` -- jump to a named equation (recursion);
* ``stop()`` -- deadlock (no transitions).

The compiler explores the term graph, mapping each distinct reachable
term to one LTS state.  Guardedness is not required for ``choice`` over
``ref`` (unguarded references are resolved by substitution); genuinely
unproductive equations like ``X = X`` are rejected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import ModelError
from repro.imc.lts import lts
from repro.imc.model import IMC

__all__ = ["prefix", "choice", "ref", "stop", "ProcessSpec",
           "Prefix", "Choice", "Ref", "Stop"]


@dataclass(frozen=True)
class Prefix:
    """Action prefix ``a . P``."""

    action: str
    continuation: "Term"


@dataclass(frozen=True)
class Choice:
    """Nondeterministic choice ``P + Q (+ ...)``."""

    alternatives: tuple["Term", ...]


@dataclass(frozen=True)
class Ref:
    """Reference to a named equation."""

    name: str


@dataclass(frozen=True)
class Stop:
    """The deadlocked process."""


Term = Union[Prefix, Choice, Ref, Stop]


def prefix(action: str, continuation: "Term") -> Prefix:
    """``action . continuation``"""
    if not action:
        raise ModelError("actions must be non-empty strings")
    return Prefix(action=action, continuation=continuation)


def choice(*alternatives: "Term") -> Term:
    """``alternatives[0] + alternatives[1] + ...``"""
    if not alternatives:
        return Stop()
    if len(alternatives) == 1:
        return alternatives[0]
    flattened: list[Term] = []
    for alternative in alternatives:
        if isinstance(alternative, Choice):
            flattened.extend(alternative.alternatives)
        else:
            flattened.append(alternative)
    return Choice(alternatives=tuple(flattened))


def ref(name: str) -> Ref:
    """Reference the equation ``name``."""
    return Ref(name=name)


def stop() -> Stop:
    """The process without behaviour."""
    return Stop()


class ProcessSpec:
    """A system of named process equations."""

    def __init__(self) -> None:
        self._equations: dict[str, Term] = {}

    def define(self, name: str, body: Term) -> "ProcessSpec":
        """Add (or replace) the equation ``name = body``; chainable."""
        self._equations[name] = body
        return self

    def _resolve(self, term: Term, unfolding: frozenset[str]) -> Term:
        """Chase references until the head is a prefix/choice/stop."""
        while isinstance(term, Ref):
            if term.name not in self._equations:
                raise ModelError(f"undefined process {term.name!r}")
            if term.name in unfolding:
                raise ModelError(
                    f"unguarded recursion through {term.name!r} (X = X-style "
                    "equations have no meaning)"
                )
            unfolding = unfolding | {term.name}
            term = self._equations[term.name]
        if isinstance(term, Choice):
            resolved = tuple(
                self._resolve(alternative, unfolding)
                for alternative in term.alternatives
            )
            return Choice(alternatives=resolved)
        return term

    def _moves(self, term: Term) -> list[tuple[str, Term]]:
        """Outgoing ``(action, successor term)`` pairs of a resolved term."""
        if isinstance(term, Prefix):
            return [(term.action, term.continuation)]
        if isinstance(term, Choice):
            moves: list[tuple[str, Term]] = []
            for alternative in term.alternatives:
                moves.extend(self._moves(alternative))
            return moves
        if isinstance(term, Stop):
            return []
        raise ModelError("unresolved reference in moves()")  # pragma: no cover

    def to_lts(self, root: str) -> IMC:
        """Compile the equation system, starting from ``root``, to an LTS.

        Each distinct reachable (resolved) term becomes one state; state
        names show the head equation where one matches, otherwise a
        rendering of the term.
        """
        if root not in self._equations:
            raise ModelError(f"undefined process {root!r}")

        index: dict[Term, int] = {}
        names: list[str] = []
        transitions: list[tuple[int, str, int]] = []

        # Reverse lookup: resolved equation bodies back to their names.
        body_names: dict[Term, str] = {}
        for name in self._equations:
            resolved = self._resolve(Ref(name), frozenset())
            body_names.setdefault(resolved, name)

        def state_of(term: Term) -> int:
            if term not in index:
                index[term] = len(index)
                names.append(body_names.get(term, _render(term)))
            return index[term]

        start = self._resolve(Ref(root), frozenset())
        frontier = [start]
        state_of(start)
        seen = {start}
        while frontier:
            term = frontier.pop()
            src = state_of(term)
            for action, successor in self._moves(term):
                resolved = self._resolve(successor, frozenset())
                transitions.append((src, action, state_of(resolved)))
                if resolved not in seen:
                    seen.add(resolved)
                    frontier.append(resolved)

        return lts(len(index), transitions, initial=0, state_names=names)


def _render(term: Term) -> str:
    if isinstance(term, Prefix):
        return f"{term.action}.{_render(term.continuation)}"
    if isinstance(term, Choice):
        return "(" + " + ".join(_render(a) for a in term.alternatives) + ")"
    if isinstance(term, Ref):
        return term.name
    return "stop"
