"""Interactive Markov chains: model, composition, elapse, transformation."""

from repro.imc.alternating import (
    AlternationResult,
    make_alternating,
    make_interactive_alternating,
    make_markov_alternating,
    strictly_alternating,
    word_label,
)
from repro.imc.algebra import ProcessSpec, choice, prefix, ref, stop
from repro.imc.checks import Finding, Severity, lint_imc
from repro.imc.composition import (
    hide,
    hide_all_but,
    interleave,
    parallel,
    parallel_many,
    parallel_with_map,
    relabel,
)
from repro.imc.elapse import elapse
from repro.imc.labeled import LabeledIMC, add_tuples
from repro.imc.lts import cycle_lts, lts
from repro.imc.model import IMC, TAU, IMCBuilder, StateClass
from repro.imc.transform import TransformResult, TransformStatistics, imc_to_ctmdp

__all__ = [
    "IMC",
    "TAU",
    "IMCBuilder",
    "StateClass",
    "AlternationResult",
    "make_alternating",
    "make_interactive_alternating",
    "make_markov_alternating",
    "strictly_alternating",
    "word_label",
    "hide",
    "hide_all_but",
    "interleave",
    "parallel",
    "parallel_many",
    "parallel_with_map",
    "relabel",
    "elapse",
    "Finding",
    "Severity",
    "lint_imc",
    "ProcessSpec",
    "choice",
    "prefix",
    "ref",
    "stop",
    "LabeledIMC",
    "add_tuples",
    "cycle_lts",
    "lts",
    "TransformResult",
    "TransformStatistics",
    "imc_to_ctmdp",
]
