"""Phase-type time constraints and compositional minimisation.

Demonstrates the paper's Section 3 machinery beyond the FTWC:

1. build several phase-type distributions (exponential, Erlang,
   hypoexponential, Coxian) and verify their moments;
2. wrap one into an elapse time constraint and watch uniformization at
   work: the absorbing state keeps ticking with a Poisson self-loop;
3. compose a small pipeline system (two sequential processing stages
   with a shared operator who must attend each handover -- the
   nondeterminism), minimise it with stochastic branching bisimulation,
   and check the quotient is bisimilar to (and analyses identically to)
   the original.

Run with::

    python examples/time_constraints.py
"""

from repro.bisim import are_branching_bisimilar, branching_minimize
from repro.bisim.quotient import map_labels_through
from repro.core import timed_reachability
from repro.ctmc import PhaseType
from repro.imc import elapse, hide_all_but, imc_to_ctmdp, lts, parallel


def show_phase_types() -> None:
    print("=== phase-type distributions ===")
    distributions = {
        "Exp(0.5)": PhaseType.exponential(0.5),
        "Erlang(4, 2)": PhaseType.erlang(4, 2.0),
        "Hypo(1, 2, 4)": PhaseType.hypoexponential([1.0, 2.0, 4.0]),
        "Coxian": PhaseType.coxian([2.0, 1.0], [0.3, 1.0]),
    }
    for name, ph in distributions.items():
        print(
            f"  {name:14s} mean={ph.mean():7.4f}  var={ph.variance():7.4f}  "
            f"P(X <= mean)={ph.cdf(ph.mean()):.4f}"
        )
    erlang = distributions["Erlang(4, 2)"].uniformized()
    loop = erlang.chain.rate(erlang.absorbing, erlang.absorbing)
    print(
        f"\n  After uniformization the Erlang's absorbing state re-enters "
        f"itself at rate {loop:g} -- 'reentered from itself according to a "
        f"Poisson distribution' (Section 2)."
    )


def build_pipeline():
    """Two stages; a shared operator must attend each stage's handover."""
    stage = lts(
        3,
        [(0, "start", 1), (1, "finish", 2), (2, "handover", 0)],
        state_names=["idle", "busy", "done"],
    )
    # Stage 1 processes Erlang(2)-distributed jobs, stage 2 exponential.
    from repro.imc import relabel

    stage1 = relabel(stage, {"start": "start1", "finish": "finish1", "handover": "h1"})
    stage2 = relabel(stage, {"start": "start2", "finish": "finish2", "handover": "h2"})
    clock1 = elapse(PhaseType.erlang(2, 6.0), fire="finish1", reset="start1", started=False)
    clock2 = elapse(PhaseType.exponential(2.0), fire="finish2", reset="start2", started=False)
    operator = lts(
        2,
        [(0, "h1", 1), (0, "h2", 1), (1, "rest", 0)],
        state_names=["attending", "resting"],
    )
    rest_clock = elapse(PhaseType.exponential(8.0), fire="rest", reset="h1", started=False)

    system = parallel(stage1, clock1, sync=["start1", "finish1"])
    system = parallel(system, stage2, sync=[])
    system = parallel(system, clock2, sync=["start2", "finish2"])
    system = parallel(system, operator, sync=["h1", "h2"])
    system = parallel(system, rest_clock, sync=["rest", "h1"])
    return hide_all_but(system)


def main() -> None:
    show_phase_types()

    print("\n=== compositional pipeline system ===")
    system = build_pipeline()
    print(f"composed closed system: {system}")
    print(f"uniform: {system.is_uniform(closed=True)}  "
          f"E = {system.uniform_rate(closed=True):g}")

    labels = ["done" in system.name_of(s) for s in range(system.num_states)]
    quotient, partition = branching_minimize(system, labels=labels)
    print(f"branching-bisimulation quotient: {quotient} "
          f"({system.num_states} -> {quotient.num_states} states)")
    quotient_labels = map_labels_through(partition, labels)
    equivalent = are_branching_bisimilar(system, quotient, labels, quotient_labels)
    print(f"quotient bisimilar to original: {equivalent}")

    original = imc_to_ctmdp(system, require_uniform=True)
    goal = original.goal_mask_from_predicate(lambda s: labels[s], via="markov")
    for t in (0.5, 2.0):
        result = timed_reachability(original.ctmdp, goal, t, epsilon=1e-8)
        print(
            f"worst-case P(some stage done within {t} h) = "
            f"{result.value(original.ctmdp.initial):.6f}"
        )


if __name__ == "__main__":
    main()
