"""Stochastic job scheduling under a deadline.

A second case study beyond the FTWC: five exponential jobs on two
processors, maximising (or adversarially minimising) the probability of
finishing everything within a deadline.  Illustrates that

* the gap between the best and worst schedule is substantial, and
* the optimal schedule is deadline-dependent: the extracted
  step-dependent scheduler changes its job selection as the remaining
  time budget shrinks.

Run with::

    python examples/job_scheduling.py
"""

import numpy as np

from repro.core import timed_reachability
from repro.models.job_scheduling import build_job_scheduling


def main() -> None:
    rates = [0.4, 0.8, 1.0, 2.5, 5.0]
    processors = 2
    model = build_job_scheduling(rates, processors)
    print(
        f"{len(rates)} jobs (rates {rates}) on {processors} processors: "
        f"{model.ctmdp.num_states} states, {model.ctmdp.num_transitions} "
        f"choices, uniform rate E = {model.ctmdp.uniform_rate():g}"
    )
    print()
    print("deadline t | best schedule | worst schedule |   gap")
    print("-" * 56)
    for t in (0.5, 1.0, 2.0, 4.0, 8.0):
        sup = timed_reachability(model.ctmdp, model.goal_mask, t, epsilon=1e-8)
        inf = timed_reachability(
            model.ctmdp, model.goal_mask, t, epsilon=1e-8, objective="min"
        )
        best = sup.value(model.ctmdp.initial)
        worst = inf.value(model.ctmdp.initial)
        print(f"{t:10.1f} | {best:13.6f} | {worst:14.6f} | {best - worst:6.4f}")

    # What does the optimal scheduler do first, per deadline?
    print()
    print("first decision of the optimal scheduler (all jobs remaining):")
    full = model.ctmdp.num_states - 1
    for t in (0.5, 2.0, 8.0):
        result = timed_reachability(
            model.ctmdp, model.goal_mask, t, epsilon=1e-8, record_scheduler=True
        )
        choice = result.decisions[0][full]
        action = model.ctmdp.transitions_of(full)[choice].action
        print(f"  t = {t:4.1f}: {action}")


if __name__ == "__main__":
    main()
