"""Sensitivity analysis of the workstation cluster.

Beyond reproducing the paper's single parameterisation, a library user
wants to know which design lever moves the worst-case risk: redundancy
(cluster size), maintenance capacity (repair speed), or component
quality (failure rates).  Each sweep point generates a fresh uniform
CTMDP and runs Algorithm 1; the expected time until premium service is
first lost (best and worst repair policy) complements the probabilities.

Run with::

    python examples/ftwc_sensitivity.py
"""

from repro.analysis.sweeps import (
    sweep_cluster_size,
    sweep_failure_rate,
    sweep_repair_speed,
)
from repro.core import expected_reachability_time
from repro.models.ftwc_direct import build_ctmdp


def show(title: str, points, unit: str) -> None:
    print(title)
    print(f"  {unit:>8s}  {'worst-case P(no premium within 100h)':>38s}")
    for point in points:
        print(f"  {point.parameter:8g}  {point.probability:38.6e}")
    print()


def main() -> None:
    show(
        "=== redundancy: cluster size N (premium needs N workstations) ===",
        sweep_cluster_size((1, 2, 4, 8), t=100.0),
        "N",
    )
    show(
        "=== maintenance capacity: repair-speed factor (N=2) ===",
        sweep_repair_speed(2, (0.25, 0.5, 1.0, 2.0, 4.0), t=100.0),
        "factor",
    )
    show(
        "=== component quality: failure-rate factor (N=2) ===",
        sweep_failure_rate(2, (0.25, 0.5, 1.0, 2.0, 4.0), t=100.0),
        "factor",
    )

    print("=== expected time until premium service is first lost (N=2) ===")
    model = build_ctmdp(2)
    # The goal is the BAD event, so the adversary minimises the hitting
    # time and the best repair policy maximises it.
    soonest = expected_reachability_time(model.ctmdp, model.goal_mask, "min")
    latest = expected_reachability_time(model.ctmdp, model.goal_mask, "max")
    start = model.ctmdp.initial
    print(f"  worst repair policy (soonest outage): {soonest[start]:10.1f} h")
    print(f"  best repair policy  (latest outage) : {latest[start]:10.1f} h")


if __name__ == "__main__":
    main()
