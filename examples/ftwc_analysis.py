"""The fault-tolerant workstation cluster, end to end (Section 5).

Reproduces, at laptop-friendly scale, the paper's case study:

1. build the FTWC uCTMDP for a few cluster sizes and print the Table 1
   model statistics next to the paper's numbers;
2. compute the worst-case probability of losing premium service within
   100 h (the property the paper checks);
3. compare against the CTMC approximation of Haverkort et al. [13]
   (Figure 4) and observe the overestimation;
4. cross-validate the direct generator against the fully compositional
   construction for N=1.

Run with::

    python examples/ftwc_analysis.py
"""

from repro.analysis.experiments import PAPER_TABLE1, figure4_curves, table1_row
from repro.analysis.tables import render_figure4, render_table1
from repro.core import timed_reachability
from repro.models.ftwc import build_compositional
from repro.models.ftwc_direct import build_ctmdp


def main() -> None:
    print("=== Table 1 (reproduction; paper columns for comparison) ===")
    rows = [
        table1_row(n, time_bounds=(100.0, 30000.0), solve_bounds=(100.0,))
        for n in (1, 2, 4, 8)
    ]
    print(render_table1(rows))
    print()

    print("=== Figure 4, small panel (N=4) ===")
    curves = figure4_curves(4, time_points=(0.0, 100.0, 250.0, 500.0), gamma=10.0)
    print(render_figure4(curves))
    print()
    print(
        "The CTMC column exceeds the worst-case CTMDP column at every "
        "positive t: replacing the nondeterministic repair-unit "
        "assignment by fast races adds artificial behaviour, the paper's "
        "central observation about earlier FTWC studies."
    )
    print()

    print("=== Compositional route vs direct generator (N=1) ===")
    comp = build_compositional(1)
    direct = build_ctmdp(1)
    for t in (100.0, 1000.0):
        value_comp = timed_reachability(comp.ctmdp, comp.goal_mask, t).value(
            comp.ctmdp.initial
        )
        value_direct = timed_reachability(direct.ctmdp, direct.goal_mask, t).value(
            direct.ctmdp.initial
        )
        print(
            f"t = {t:6.0f} h   compositional = {value_comp:.10e}   "
            f"direct = {value_direct:.10e}"
        )
    print(
        "\nBoth routes agree to solver precision: the elapse/compose/"
        "hide/minimise/transform pipeline and the direct counting "
        "generator describe the same uniform CTMDP."
    )


if __name__ == "__main__":
    main()
