"""Quickstart: uniformity by construction in five minutes.

Builds a tiny repairable system compositionally -- a behavioural LTS
plus two elapse time constraints -- exactly in the style of the paper:

* the component can ``fail`` and be ``repair``-ed (an LTS, uniform with
  rate 0);
* failures happen after an exponential delay of mean 10 (a time
  constraint, uniform with rate 0.1);
* repairs take an Erlang(2) distributed time of mean 1 (uniform rate 4
  after uniformization of the two phases);

so the composed, closed system is uniform with rate 4.1 *by
construction* (Lemmas 1 and 2).  The model is then transformed into a
uniform CTMDP (Section 4.1) and the worst-case probability of being hit
by a failure within ``t`` hours is computed with Algorithm 1.

Run with::

    python examples/quickstart.py
"""

from repro.core import timed_reachability
from repro.ctmc import PhaseType
from repro.imc import elapse, hide_all_but, imc_to_ctmdp, lts, parallel


def main() -> None:
    # The behavioural skeleton: up --fail--> down --repair--> up.
    machine = lts(
        2,
        [(0, "fail", 1), (1, "repair", 0)],
        state_names=["up", "down"],
    )

    # Failures: exponential, mean 10 hours; re-armed by each repair.
    fail_clock = elapse(PhaseType.exponential(0.1), fire="fail", reset="repair")

    # Repairs: Erlang(2) with overall mean 1 hour; armed by each failure.
    repair_clock = elapse(
        PhaseType.erlang(2, 4.0), fire="repair", reset="fail", started=False
    )

    # Compose and close.  Every operator preserves uniformity.
    system = parallel(machine, fail_clock, sync=["fail", "repair"])
    system = parallel(system, repair_clock, sync=["fail", "repair"])
    closed = hide_all_but(system)
    print(f"composed system: {closed}")
    print(f"uniform (closed view): {closed.is_uniform(closed=True)}")
    print(f"uniform rate E = {closed.uniform_rate(closed=True):.2f}")

    # Transform to a uniform CTMDP and analyse.
    result = imc_to_ctmdp(closed, require_uniform=True)
    print(f"transformed: {result.ctmdp}")

    down = result.goal_mask_from_predicate(
        lambda s: closed.name_of(s).startswith("down"), via="markov"
    )
    for t in (1.0, 10.0, 50.0):
        reach = timed_reachability(result.ctmdp, down, t, epsilon=1e-8)
        print(
            f"worst-case P(machine down within {t:5.1f} h) = "
            f"{reach.value(result.ctmdp.initial):.6f}   "
            f"({reach.iterations} iterations)"
        )


if __name__ == "__main__":
    main()
