"""Optimal schedulers are genuinely time-dependent.

The classic example behind the timed-reachability algorithm of Baier et
al.: from the initial state one may either take a *direct* slow
transition to the goal or a *detour* of two fast transitions.  For very
short deadlines the direct slow jump is the best bet; with more time the
detour's two fast jumps almost surely both fit.  No stationary scheduler
is optimal for all horizons -- Algorithm 1's step-indexed greedy
decisions are.

This example extracts the optimal step-dependent scheduler, shows where
its decision flips, and validates the computed optimum by Monte-Carlo
simulation under the extracted scheduler.

Run with::

    python examples/scheduler_extraction.py
"""

import numpy as np

from repro.core import StepScheduler, timed_reachability
from repro.ctmc.reachability import timed_reachability as ctmc_reachability
from repro.models.zoo import two_phase_race_ctmdp
from repro.sim.simulate import simulate_ctmdp_reachability


def main() -> None:
    ctmdp, goal = two_phase_race_ctmdp(fast=10.0, slow=1.0)
    labels = [t.action for t in ctmdp.transitions_of(0)]

    print("horizon t | sup over schedulers | best stationary | first decision")
    print("-" * 72)
    direct = ctmdp.induced_ctmc([labels.index("direct"), 0, 0])
    detour = ctmdp.induced_ctmc([labels.index("detour"), 0, 0])
    for t in (0.01, 0.05, 0.2, 0.5, 1.0, 2.0):
        result = timed_reachability(ctmdp, goal, t, epsilon=1e-10, record_scheduler=True)
        stationary = max(
            ctmc_reachability(direct, [2], t, epsilon=1e-12)[0],
            ctmc_reachability(detour, [2], t, epsilon=1e-12)[0],
        )
        first_choice = labels[result.decisions[0][0]]
        print(
            f"{t:9.2f} | {result.value(0):19.8f} | {stationary:15.8f} | {first_choice}"
        )

    # Inspect where the decision flips along the step index for one horizon.
    t = 0.5
    result = timed_reachability(ctmdp, goal, t, epsilon=1e-10, record_scheduler=True)
    choices = result.decisions[:, 0]
    flips = np.flatnonzero(np.diff(choices)) + 1
    print(
        f"\nAt t = {t}: {result.iterations} decision epochs, choice flips at "
        f"step(s) {flips.tolist()} (0-indexed jumps made so far)."
    )
    print(
        f"Early jumps pick {labels[choices[0]]!r}; once only a few Poisson "
        f"steps remain the scheduler switches to {labels[choices[-1]]!r}."
    )

    # Validate by simulating the extracted scheduler.
    scheduler = StepScheduler(decisions=result.decisions)
    estimate = simulate_ctmdp_reachability(
        ctmdp, scheduler, goal={2}, t=t, runs=20_000, rng=np.random.default_rng(7)
    )
    low, high = estimate.confidence_interval(z=3.0)
    print(
        f"\nMonte-Carlo under the extracted scheduler: {estimate.probability:.5f} "
        f"(99.7% CI [{low:.5f}, {high:.5f}]); analytic optimum {result.value(0):.5f}."
    )


if __name__ == "__main__":
    main()
