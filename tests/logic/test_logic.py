"""Tests for the CSL-style query layer: parser and checker."""

import math

import numpy as np
import pytest

from repro.core.ctmdp import CTMDP
from repro.ctmc.model import CTMC
from repro.errors import ModelError
from repro.logic import (
    Atom,
    Comparison,
    ExpectedTimeQuery,
    Objective,
    ParseError,
    ProbabilityQuery,
    Reach,
    SteadyStateQuery,
    Until,
    check,
    parse_query,
)
from repro.models.zoo import two_phase_race_ctmdp


class TestParser:
    def test_timed_reachability_query(self):
        query = parse_query('Pmax=? [ F<=100 "goal" ]')
        assert isinstance(query, ProbabilityQuery)
        assert query.objective is Objective.MAX
        assert query.comparison is Comparison.QUERY
        assert query.path == Reach(goal=Atom("goal"), bound=100.0)

    def test_threshold_until_query(self):
        query = parse_query('Pmin>=0.99 [ "safe" U<=50 "done" ]')
        assert query.objective is Objective.MIN
        assert query.comparison is Comparison.AT_LEAST
        assert query.threshold == 0.99
        assert query.path == Until(safe=Atom("safe"), goal=Atom("done"), bound=50.0)

    def test_unbounded_reachability(self):
        query = parse_query('P=? [ F "goal" ]')
        assert query.objective is Objective.NONE
        assert query.path == Reach(goal=Atom("goal"), bound=None)

    def test_true_atom(self):
        query = parse_query("Pmax=? [ F<=1 true ]")
        assert query.path.goal.is_true

    def test_steady_state(self):
        query = parse_query('S>=0.95 [ "premium" ]')
        assert isinstance(query, SteadyStateQuery)
        assert query.threshold == 0.95

    def test_expected_time(self):
        query = parse_query('Tmax=? [ F "down" ]')
        assert isinstance(query, ExpectedTimeQuery)
        assert query.objective is Objective.MAX

    def test_scientific_notation_bound(self):
        query = parse_query('P<=1e-3 [ F<=3e4 "bad" ]')
        assert query.threshold == pytest.approx(1e-3)
        assert query.path.bound == pytest.approx(3e4)

    def test_round_trip_rendering(self):
        for text in (
            'Pmax=? [ F<=100 "goal" ]',
            'Pmin>=0.99 [ "safe" U<=50 "done" ]',
            'S=? [ "premium" ]',
            'Tmin=? [ F "down" ]',
        ):
            query = parse_query(text)
            assert parse_query(str(query)) == query

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "Q=? [ F true ]",
            "Pmax [ F true ]",
            "Pmax=? [ G true ]",
            "Pmax=? [ F true",
            'Pmax=? [ F "a" ] extra',
            "Pmax>=1.5 [ F true ]",
            "Tmax>=1 [ F true ]",
            'Pmax=? [ "a" V "b" ]',
            "Pmax=? [ F<= true ]",
            "Pmax=? [ F #x ]",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(ParseError):
            parse_query(bad)


class TestCheckCTMDP:
    @pytest.fixture
    def race(self):
        ctmdp, goal = two_phase_race_ctmdp()
        return ctmdp, {"goal": goal}

    def test_timed_reachability_value(self, race):
        ctmdp, labels = race
        result = check('Pmax=? [ F<=0.5 "goal" ]', ctmdp, labels, epsilon=1e-10)
        from repro.core.reachability import timed_reachability

        expected = timed_reachability(ctmdp, labels["goal"], 0.5, epsilon=1e-10).value(0)
        assert result.value == pytest.approx(expected, abs=1e-12)
        assert result.satisfied is None

    def test_threshold_verdicts(self, race):
        ctmdp, labels = race
        assert check('Pmax>=0.5 [ F<=1.0 "goal" ]', ctmdp, labels).satisfied is True
        assert check('Pmax<=0.5 [ F<=1.0 "goal" ]', ctmdp, labels).satisfied is False

    def test_until_and_reach_agree_with_true_safe_set(self, race):
        ctmdp, labels = race
        reach = check('Pmin=? [ F<=0.7 "goal" ]', ctmdp, labels, epsilon=1e-10)
        until = check('Pmin=? [ true U<=0.7 "goal" ]', ctmdp, labels, epsilon=1e-10)
        assert until.value == pytest.approx(reach.value, abs=1e-12)

    def test_unbounded(self, race):
        ctmdp, labels = race
        result = check('Pmax=? [ F "goal" ]', ctmdp, labels)
        assert result.value == pytest.approx(1.0, abs=1e-9)

    def test_expected_time(self, race):
        ctmdp, labels = race
        best = check('Tmin=? [ F "goal" ]', ctmdp, labels)
        worst = check('Tmax=? [ F "goal" ]', ctmdp, labels)
        assert best.value == pytest.approx(0.2, abs=1e-9)
        assert worst.value == pytest.approx(1.0, abs=1e-9)

    def test_quantifier_required(self, race):
        ctmdp, labels = race
        with pytest.raises(ModelError, match="quantifier"):
            check('P=? [ F<=1 "goal" ]', ctmdp, labels)

    def test_unknown_label(self, race):
        ctmdp, labels = race
        with pytest.raises(ModelError, match="unknown label"):
            check('Pmax=? [ F<=1 "ghost" ]', ctmdp, labels)

    def test_steady_state_rejected_on_ctmdp(self, race):
        ctmdp, labels = race
        with pytest.raises(ModelError, match="CTMC"):
            check('S=? [ "goal" ]', ctmdp, labels)


class TestCheckCTMC:
    @pytest.fixture
    def chain(self):
        ctmc = CTMC.from_transitions(2, [(0, 1, 2.0), (1, 0, 6.0)])
        labels = {"there": np.array([False, True])}
        return ctmc, labels

    def test_timed_reachability(self, chain):
        ctmc, labels = chain
        result = check('P=? [ F<=1.0 "there" ]', ctmc, labels, epsilon=1e-10)
        assert result.value == pytest.approx(1.0 - math.exp(-2.0), abs=1e-9)

    def test_steady_state(self, chain):
        ctmc, labels = chain
        result = check('S=? [ "there" ]', ctmc, labels)
        assert result.value == pytest.approx(0.25)

    def test_expected_time(self, chain):
        ctmc, labels = chain
        result = check('T=? [ F "there" ]', ctmc, labels)
        assert result.value == pytest.approx(0.5)

    def test_unbounded(self, chain):
        ctmc, labels = chain
        assert check('P=? [ F "there" ]', ctmc, labels).value == pytest.approx(1.0)

    def test_quantifier_rejected_on_ctmc(self, chain):
        ctmc, labels = chain
        with pytest.raises(ModelError):
            check('Pmax=? [ F<=1 "there" ]', ctmc, labels)
        with pytest.raises(ModelError):
            check('Tmax=? [ F "there" ]', ctmc, labels)

    def test_custom_state(self, chain):
        ctmc, labels = chain
        result = check('P=? [ F<=1.0 "there" ]', ctmc, labels, state=1)
        assert result.value == 1.0

    def test_state_out_of_range(self, chain):
        ctmc, labels = chain
        with pytest.raises(ModelError):
            check('P=? [ F<=1.0 "there" ]', ctmc, labels, state=9)


class TestPaperProperty:
    def test_the_papers_motivating_query(self):
        """'The probability to hit a safety-critical system configuration
        within a mission time of 3 hours is at most 0.01' -- Section 1,
        here instantiated on the FTWC."""
        from repro.models.ftwc_direct import build_ctmdp

        model = build_ctmdp(2)
        labels = {"unsafe": model.goal_mask}
        result = check('Pmax<=0.01 [ F<=3 "unsafe" ]', model.ctmdp, labels)
        assert result.satisfied is True
        assert 0.0 < result.value < 0.01


class TestIntervalBounds:
    def test_parse_interval(self):
        query = parse_query('P=? [ F[1,5] "goal" ]')
        assert query.path.bound == (1.0, 5.0)
        assert parse_query(str(query)) == query

    def test_bad_interval_rejected(self):
        with pytest.raises(ParseError):
            parse_query('P=? [ F[5,1] "goal" ]')
        with pytest.raises(ParseError):
            parse_query('P=? [ F[1 5] "goal" ]')

    def test_check_interval_on_ctmc(self):
        from repro.ctmc.reachability import interval_reachability

        ctmc = CTMC.from_transitions(3, [(0, 1, 1.0), (1, 2, 2.0), (2, 0, 1.0)])
        labels = {"goal": np.array([False, False, True])}
        result = check('P=? [ F[0.5,2.0] "goal" ]', ctmc, labels, epsilon=1e-10)
        expected = interval_reachability(
            ctmc, labels["goal"], 0.5, 2.0, epsilon=1e-10
        )
        assert result.value == pytest.approx(expected, abs=1e-12)

    def test_interval_rejected_on_ctmdp(self):
        ctmdp, goal = two_phase_race_ctmdp()
        with pytest.raises(ModelError, match="CTMC"):
            check('Pmax=? [ F[1,2] "goal" ]', ctmdp, {"goal": goal})
