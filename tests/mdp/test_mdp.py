"""Tests for the discrete-time MDP/DTMC substrate."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import ModelError
from repro.mdp.model import DTMC, DTMDP
from repro.mdp.value_iteration import bounded_reachability, unbounded_reachability


@pytest.fixture
def coin_mdp() -> DTMDP:
    """Choice between a fair coin into {goal, trap} and a slow sure path."""
    return DTMDP.from_transitions(
        4,
        [
            (0, "gamble", {2: 0.5, 3: 0.5}),
            (0, "walk", {1: 1.0}),
            (1, "walk", {2: 1.0}),
            (2, "stay", {2: 1.0}),
            (3, "stay", {3: 1.0}),
        ],
    )


class TestDTMC:
    def test_distribution_evolution(self):
        chain = DTMC(np.array([[0.0, 1.0], [1.0, 0.0]]))
        np.testing.assert_allclose(chain.distribution_after(0), [1.0, 0.0])
        np.testing.assert_allclose(chain.distribution_after(1), [0.0, 1.0])
        np.testing.assert_allclose(chain.distribution_after(2), [1.0, 0.0])

    def test_bounded_reachability(self):
        chain = DTMC(np.array([[0.5, 0.5], [0.0, 1.0]]))
        values = chain.bounded_reachability([1], 2)
        assert values[0] == pytest.approx(0.75)

    def test_substochastic_rejected(self):
        with pytest.raises(ModelError):
            DTMC(np.array([[0.5, 0.4], [0.0, 1.0]]))

    def test_negative_probability_rejected(self):
        with pytest.raises(ModelError):
            DTMC(np.array([[1.5, -0.5], [0.0, 1.0]]))

    def test_negative_steps_rejected(self):
        chain = DTMC(np.eye(2))
        with pytest.raises(ModelError):
            chain.distribution_after(-1)


class TestDTMDP:
    def test_construction_sorted(self, coin_mdp):
        assert list(coin_mdp.sources) == sorted(coin_mdp.sources)
        assert coin_mdp.num_choices(0) == 2
        assert coin_mdp.num_transitions == 5

    def test_distribution_must_sum_to_one(self):
        with pytest.raises(ModelError):
            DTMDP.from_transitions(2, [(0, "a", {1: 0.5})])

    def test_bounded_max(self, coin_mdp):
        # One step: gamble gives 0.5; walking cannot arrive yet.
        one = bounded_reachability(coin_mdp, [2], 1)
        assert one[0] == pytest.approx(0.5)
        # Two steps: walking arrives surely.
        two = bounded_reachability(coin_mdp, [2], 2)
        assert two[0] == pytest.approx(1.0)

    def test_bounded_min(self, coin_mdp):
        two = bounded_reachability(coin_mdp, [2], 2, objective="min")
        assert two[0] == pytest.approx(0.5)

    def test_unbounded(self, coin_mdp):
        assert unbounded_reachability(coin_mdp, [2])[0] == pytest.approx(1.0)
        assert unbounded_reachability(coin_mdp, [2], objective="min")[0] == pytest.approx(0.5)

    def test_zero_steps(self, coin_mdp):
        values = bounded_reachability(coin_mdp, [2], 0)
        np.testing.assert_allclose(values, [0.0, 0.0, 1.0, 0.0])

    def test_bad_objective(self, coin_mdp):
        with pytest.raises(ModelError):
            bounded_reachability(coin_mdp, [2], 1, objective="x")
        with pytest.raises(ModelError):
            unbounded_reachability(coin_mdp, [2], objective="x")

    def test_negative_steps_rejected(self, coin_mdp):
        with pytest.raises(ModelError):
            bounded_reachability(coin_mdp, [2], -1)
