"""Tests for query records and batch planning."""

import pytest

from repro.engine.plan import Query, plan_queries, query_from_dict
from repro.errors import ModelError

SPEC = {"family": "ftwc", "n": 1}


class TestQuery:
    def test_normalises_model_spec(self):
        query = Query(model=SPEC, t=10)
        assert query.model["params"]["ws_repair"] == 2.0
        assert query.t == 10.0
        assert isinstance(query.t, float)

    def test_as_dict_round_trips(self):
        query = Query(model=SPEC, t=5.0, objective="min", epsilon=1e-4)
        again = query_from_dict(query.as_dict())
        assert again == query

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"t": -1.0},
            {"t": "soon"},
            {"t": 1.0, "objective": "median"},
            {"t": 1.0, "goal": ""},
            {"t": 1.0, "epsilon": 0.0},
            {"t": 1.0, "epsilon": 2.0},
        ],
    )
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ModelError):
            Query(model=SPEC, **kwargs)


class TestQueryFromDict:
    def test_defaults_fill_missing_fields(self):
        query = query_from_dict({"t": 3.0}, defaults={"model": SPEC, "epsilon": 1e-4})
        assert query.t == 3.0
        assert query.epsilon == 1e-4

    def test_inline_fields_beat_defaults(self):
        query = query_from_dict(
            {"t": 3.0, "epsilon": 1e-2}, defaults={"model": SPEC, "epsilon": 1e-4}
        )
        assert query.epsilon == 1e-2

    def test_unknown_fields_rejected(self):
        with pytest.raises(ModelError):
            query_from_dict({"t": 1.0, "model": SPEC, "frequency": 2})

    def test_missing_model_and_t_rejected(self):
        with pytest.raises(ModelError):
            query_from_dict({"t": 1.0})
        with pytest.raises(ModelError):
            query_from_dict({"model": SPEC})


class TestPlanning:
    def test_groups_by_model_goal_objective(self):
        queries = [
            Query(model=SPEC, t=100.0),
            Query(model=SPEC, t=50.0),
            Query(model=SPEC, t=50.0, objective="min"),
            Query(model={"family": "ftwc", "n": 2}, t=50.0),
            Query(model=SPEC, t=50.0, goal="premium"),
        ]
        groups = plan_queries(queries)
        assert len(groups) == 4
        signatures = {(g.spec["n"], g.goal, g.objective) for g in groups}
        assert signatures == {
            (1, "no_premium", "max"),
            (1, "no_premium", "min"),
            (2, "no_premium", "max"),
            (1, "premium", "max"),
        }

    def test_members_sorted_by_time_bound(self):
        queries = [Query(model=SPEC, t=t) for t in (300.0, 10.0, 100.0)]
        (group,) = plan_queries(queries)
        assert group.time_bounds == [10.0, 100.0, 300.0]
        # Batch indices still point at the original positions.
        assert [index for index, _query in group.members] == [1, 2, 0]

    def test_epsilon_does_not_split_groups(self):
        queries = [
            Query(model=SPEC, t=10.0, epsilon=1e-6),
            Query(model=SPEC, t=20.0, epsilon=1e-4),
        ]
        assert len(plan_queries(queries)) == 1

    def test_plan_is_deterministic(self):
        queries = [
            Query(model={"family": "ftwc", "n": n}, t=10.0) for n in (2, 1, 2, 1)
        ]
        first = [g.model_key for g in plan_queries(queries)]
        second = [g.model_key for g in plan_queries(queries)]
        assert first == second == sorted(first)
