"""Tests for the content-addressed model registry."""

import numpy as np
import pytest

from repro.core.reachability import timed_reachability
from repro.engine.registry import ModelRegistry, default_cache_dir
from repro.errors import ModelError
from repro.models import ftwc_direct

SPEC = {"family": "ftwc", "n": 1}


@pytest.fixture
def counted_builds(monkeypatch):
    """Count calls to the direct CTMDP generator."""
    calls = {"ctmdp": 0, "ctmc": 0}
    real_ctmdp, real_ctmc = ftwc_direct.build_ctmdp, ftwc_direct.build_ctmc

    def ctmdp_wrapper(*args, **kwargs):
        calls["ctmdp"] += 1
        return real_ctmdp(*args, **kwargs)

    def ctmc_wrapper(*args, **kwargs):
        calls["ctmc"] += 1
        return real_ctmc(*args, **kwargs)

    monkeypatch.setattr(ftwc_direct, "build_ctmdp", ctmdp_wrapper)
    monkeypatch.setattr(ftwc_direct, "build_ctmc", ctmc_wrapper)
    return calls


class TestMemoryCache:
    def test_second_lookup_is_a_memory_hit(self, counted_builds):
        registry = ModelRegistry()
        first = registry.get(SPEC)
        second = registry.get(SPEC)
        assert second is first
        assert second.source == "memory"
        assert counted_builds["ctmdp"] == 1
        assert registry.metrics.counter("cache_hits_memory") == 1
        assert registry.metrics.counter("cache_misses") == 1

    def test_different_specs_do_not_collide(self, counted_builds):
        registry = ModelRegistry()
        small = registry.get({"family": "ftwc", "n": 1})
        degraded = registry.get({"family": "ftwc", "n": 1, "quality_threshold": 1})
        assert small.key != degraded.key
        assert counted_builds["ctmdp"] == 2
        # The relaxed quality threshold has a smaller goal set.
        assert degraded.goal_mask.sum() <= small.goal_mask.sum()

    def test_built_model_carries_labels_and_stats(self):
        built = ModelRegistry().get(SPEC)
        assert built.kind == "ctmdp"
        assert set(built.labels) == {"no_premium", "premium"}
        np.testing.assert_array_equal(built.labels["premium"], ~built.goal_mask)
        assert built.stats["states"] == built.model.num_states
        assert built.stats["build_seconds"] > 0.0
        assert built.stats["uniform_rate"] == pytest.approx(built.model.uniform_rate())
        with pytest.raises(ModelError):
            built.goal("nonsense")

    def test_ctmc_family_builds_a_chain(self):
        built = ModelRegistry().get({"family": "ftwc-ctmc", "n": 1})
        assert built.kind == "ctmc"
        assert built.goal_mask.any()

    def test_compositional_family_matches_direct_route(self):
        registry = ModelRegistry()
        direct = registry.get(SPEC)
        composed = registry.get({"family": "ftwc-compositional", "n": 1})
        p_direct = timed_reachability(direct.model, direct.goal_mask, 100.0).value(
            direct.model.initial
        )
        p_composed = timed_reachability(composed.model, composed.goal_mask, 100.0).value(
            composed.model.initial
        )
        assert p_composed == pytest.approx(p_direct, rel=1e-9)


class TestDiskCache:
    def test_round_trip_skips_construction(self, tmp_path, counted_builds):
        cold = ModelRegistry(cache_dir=tmp_path)
        built = cold.get(SPEC)
        assert built.source == "build"
        assert counted_builds["ctmdp"] == 1
        assert cold.metrics.counter("disk_writes") == 1

        warm = ModelRegistry(cache_dir=tmp_path)
        loaded = warm.get(SPEC)
        assert loaded.source == "disk"
        assert counted_builds["ctmdp"] == 1  # no rebuild
        assert warm.metrics.counter("cache_hits_disk") == 1
        assert warm.metrics.counter("models_built") == 0

    def test_round_trip_is_bitwise_exact(self, tmp_path):
        cold = ModelRegistry(cache_dir=tmp_path)
        fresh = cold.get(SPEC)
        loaded = ModelRegistry(cache_dir=tmp_path).get(SPEC)
        for t in (10.0, 100.0):
            a = timed_reachability(fresh.model, fresh.goal_mask, t)
            b = timed_reachability(loaded.model, loaded.goal_mask, t)
            np.testing.assert_array_equal(a.values, b.values)
        np.testing.assert_array_equal(fresh.goal_mask, loaded.goal_mask)
        assert loaded.stats["build_seconds"] == fresh.stats["build_seconds"]

    def test_ctmc_round_trip(self, tmp_path, counted_builds):
        spec = {"family": "ftwc-ctmc", "n": 1}
        ModelRegistry(cache_dir=tmp_path).get(spec)
        loaded = ModelRegistry(cache_dir=tmp_path).get(spec)
        assert loaded.source == "disk"
        assert counted_builds["ctmc"] == 1

    def test_corrupt_cache_entry_degrades_to_rebuild(self, tmp_path, counted_builds):
        registry = ModelRegistry(cache_dir=tmp_path)
        built = registry.get(SPEC)
        for path in tmp_path.glob(f"{built.key}*"):
            path.write_text("garbage", encoding="utf-8")
        again = ModelRegistry(cache_dir=tmp_path).get(SPEC)
        assert again.source == "build"
        assert counted_builds["ctmdp"] == 2

    def test_clear_memory_keeps_disk(self, tmp_path, counted_builds):
        registry = ModelRegistry(cache_dir=tmp_path)
        registry.get(SPEC)
        registry.clear_memory()
        assert len(registry) == 0
        assert registry.get(SPEC).source == "disk"
        assert counted_builds["ctmdp"] == 1


class TestDefaultCacheDir:
    def test_env_override_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"

    def test_xdg_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "repro"

    def test_home_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.delenv("XDG_CACHE_HOME", raising=False)
        assert default_cache_dir().name == "repro"
