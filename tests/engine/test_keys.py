"""Tests for content-addressed model keys."""

import json

import pytest

from repro.engine.keys import (
    MODEL_FAMILIES,
    RATE_PARAMETERS,
    canonical_json,
    model_key,
    normalize_spec,
)
from repro.errors import ModelError


class TestNormalization:
    def test_defaults_filled(self):
        spec = normalize_spec({"family": "ftwc", "n": 4})
        assert spec["n"] == 4
        assert spec["quality_threshold"] is None
        assert spec["params"] == RATE_PARAMETERS

    def test_ctmc_gamma_default(self):
        spec = normalize_spec({"family": "ftwc-ctmc", "n": 2})
        assert spec["gamma"] == 10.0

    def test_compositional_minimize_default(self):
        spec = normalize_spec({"family": "ftwc-compositional", "n": 1})
        assert spec["minimize_intermediate"] is True

    def test_explicit_defaults_normalize_identically(self):
        implicit = normalize_spec({"family": "ftwc", "n": 2})
        explicit = normalize_spec(
            {"family": "ftwc", "n": 2, "params": {"ws_fail": 1.0 / 500.0}}
        )
        assert implicit == explicit

    @pytest.mark.parametrize(
        "bad",
        [
            {"family": "nope", "n": 1},
            {"family": "ftwc"},  # missing n
            {"family": "ftwc", "n": 0},
            {"family": "ftwc", "n": True},
            {"family": "ftwc", "n": 1, "bogus": 3},
            {"family": "ftwc", "n": 1, "params": {"warp_drive": 2.0}},
            {"family": "ftwc", "n": 1, "params": {"ws_fail": -1.0}},
            {"family": "ftwc", "n": 1, "quality_threshold": 99},
            {"family": "ftwc-ctmc", "n": 1, "gamma": 0.0},
            {"family": "ftwc-compositional", "n": 1, "quality_threshold": 1},
            "not a mapping",
        ],
    )
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(ModelError):
            normalize_spec(bad)


class TestKeys:
    def test_key_is_sha256_hex(self):
        key = model_key({"family": "ftwc", "n": 1})
        assert len(key) == 64
        assert all(c in "0123456789abcdef" for c in key)

    def test_key_independent_of_spelling(self):
        minimal = model_key({"family": "ftwc", "n": 2})
        spelled = model_key(
            {"family": "ftwc", "n": 2, "params": dict(RATE_PARAMETERS), "quality_threshold": None}
        )
        assert minimal == spelled

    def test_key_distinguishes_parameters(self):
        base = model_key({"family": "ftwc", "n": 2})
        assert model_key({"family": "ftwc", "n": 4}) != base
        assert model_key({"family": "ftwc-ctmc", "n": 2}) != base
        assert model_key({"family": "ftwc", "n": 2, "quality_threshold": 1}) != base
        assert (
            model_key({"family": "ftwc", "n": 2, "params": {"ws_repair": 4.0}}) != base
        )

    def test_every_family_normalizes(self):
        for family in MODEL_FAMILIES:
            assert model_key({"family": family, "n": 1})

    def test_canonical_json_is_sorted_and_parseable(self):
        encoded = canonical_json({"family": "ftwc", "n": 1})
        decoded = json.loads(encoded)
        assert decoded == normalize_spec(decoded)
        assert list(decoded) == sorted(decoded)
