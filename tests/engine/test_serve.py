"""Tests for the JSON-lines query server."""

import io
import json

from repro.engine import QueryEngine
from repro.engine.serve import serve

SPEC = {"family": "ftwc", "n": 1}


def run_session(*requests, engine=None):
    """Feed request lines through ``serve`` and return parsed responses."""
    lines = []
    for request in requests:
        lines.append(request if isinstance(request, str) else json.dumps(request))
    source = io.StringIO("\n".join(lines) + "\n")
    sink = io.StringIO()
    code = serve(engine=engine, input_stream=source, output_stream=sink)
    assert code == 0
    return [json.loads(line) for line in sink.getvalue().splitlines()]


class TestProtocol:
    def test_ping(self):
        (response,) = run_session({"op": "ping"})
        assert response == {"ok": True}

    def test_single_query_is_the_default_op(self):
        (response,) = run_session({"model": SPEC, "t": 10.0})
        assert response["error"] is None
        assert 0.0 < response["value"] < 1.0
        assert response["iterations"] > 0

    def test_batch(self):
        (response,) = run_session(
            {
                "op": "batch",
                "defaults": {"model": SPEC},
                "queries": [{"t": 10.0}, {"t": 100.0}],
            }
        )
        values = [record["value"] for record in response["results"]]
        assert values[0] < values[1]
        assert response["metrics"]["counters"]["models_built"] == 1

    def test_metrics_snapshot_reflects_session(self):
        first, second = run_session(
            {"model": SPEC, "t": 10.0}, {"op": "metrics"}
        )
        assert first["error"] is None
        assert second["metrics"]["counters"]["queries_total"] == 1

    def test_shutdown_stops_the_loop(self):
        responses = run_session({"op": "shutdown"}, {"op": "ping"})
        assert responses == [{"ok": True, "shutdown": True}]

    def test_registry_is_warm_across_requests(self):
        engine = QueryEngine()
        run_session({"model": SPEC, "t": 10.0}, {"model": SPEC, "t": 20.0}, engine=engine)
        assert engine.metrics.counter("models_built") == 1
        assert engine.metrics.counter("cache_hits_memory") == 1


class TestRobustness:
    def test_invalid_json_reports_and_continues(self):
        bad, good = run_session("{not json", {"op": "ping"})
        assert "invalid JSON" in bad["error"]
        assert good == {"ok": True}

    def test_non_object_request(self):
        (response,) = run_session("[1, 2, 3]")
        assert "JSON object" in response["error"]

    def test_unknown_op(self):
        (response,) = run_session({"op": "launch"})
        assert "unknown op" in response["error"]

    def test_bad_query_reports_in_band(self):
        bad, good = run_session({"t": 10.0}, {"model": SPEC, "t": 10.0})
        assert bad["error"] is not None
        assert good["error"] is None

    def test_batch_without_queries_list(self):
        (response,) = run_session({"op": "batch", "queries": "nope"})
        assert "queries" in response["error"]

    def test_blank_lines_are_skipped(self):
        responses = run_session("", {"op": "ping"}, "")
        assert responses == [{"ok": True}]
